//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This vendored stand-in implements the surface
//! the lcosc workspace uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`Strategy`] with [`Strategy::prop_map`], implemented for numeric
//!   ranges (half-open and inclusive) and tuples of strategies,
//! - [`collection::vec`] with fixed or ranged lengths,
//! - [`strategy::Just`] and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is a fixed-seed deterministic
//! stream derived from the test name (every run explores the same cases),
//! there is no shrinking, and failures surface as ordinary panics carrying
//! the generated inputs in the assertion message.

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (FNV-1a hash) so every
    /// property explores a stable, name-specific stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for the
        // small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of generated values.
///
/// This is the stand-in for upstream's `Strategy`; `Value` is the generated
/// type (upstream's `Strategy::Value`).
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start() + u * (self.end() - self.start())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Core strategy combinators (subset of upstream's `proptest::strategy`).
pub mod strategy {
    use super::{Strategy, TestRng};

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (subset of upstream's `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed `usize` or a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Outcome of one generated case: either the body ran to completion or a
/// [`prop_assume!`] rejected the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran (assertions passed).
    Accepted,
    /// A `prop_assume!` condition failed; the case is skipped and retried
    /// with fresh inputs.
    Rejected,
}

/// Skips the current case when `cond` is false (upstream's `prop_assume!`).
///
/// Expands to an early `return` from the case closure generated by
/// [`proptest!`], so it must appear at the top level of the property body,
/// not inside a nested closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseOutcome::Rejected;
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// Maps to a plain `assert!`: without shrinking there is no failure
/// persistence, so an immediate panic with the formatted message is the
/// clearest report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                $(let $arg = $strat;)+
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseOutcome::Accepted
                    }));
                    match result {
                        Ok($crate::CaseOutcome::Accepted) => accepted += 1,
                        Ok($crate::CaseOutcome::Rejected) => {}
                        Err(panic) => {
                            eprintln!(
                                "proptest case {attempts} failed in `{}`",
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&n));
            let m = (0u32..=127).generate(&mut rng);
            assert!(m <= 127);
            let s = (-300i32..300).generate(&mut rng);
            assert!((-300..300).contains(&s));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = crate::TestRng::from_name("ends");
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(0u32..=2).generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn tuple_and_map_compose() {
        let strat = (1.0f64..2.0, 10u32..20).prop_map(|(x, n)| x * f64::from(n));
        let mut rng = crate::TestRng::from_name("compose");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((10.0..40.0).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_follow_spec() {
        let mut rng = crate::TestRng::from_name("lens");
        let fixed = crate::collection::vec(0.0f64..1.0, 4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
        let ranged = crate::collection::vec(0.0f64..1.0, 1..10);
        for _ in 0..200 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..10).contains(&len));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = crate::TestRng::from_name("just");
        assert_eq!(Just(42u32).generate(&mut rng), 42);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind generated values, asserts work.
        #[test]
        fn macro_generates_inputs(x in 0.0f64..1.0, n in 1u32..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n), "n = {n}");
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
