//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This vendored stand-in implements exactly the surface
//! the lcosc workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen`] — on top of a deterministic xoshiro256++ generator.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12);
//! everything in this workspace only relies on seeded reproducibility and
//! reasonable statistical quality, not on a specific stream.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the stand-in for
/// upstream's `Standard` distribution).
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (same construction as
    /// upstream `rand`'s `Standard` for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors — avoids correlated low-entropy states.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn u32_and_bool_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u32 = rng.gen();
        let heads = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((350..650).contains(&heads), "heads {heads}");
    }
}
