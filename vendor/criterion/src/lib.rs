//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This vendored stand-in implements the surface
//! the lcosc benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `throughput` and
//! `finish`), [`black_box`], [`criterion_group!`] and [`criterion_main!`] —
//! with simple wall-clock timing and a plain-text report on stdout.
//!
//! There is no statistical analysis, HTML report or command-line filtering;
//! each benchmark is timed over a few batches and the per-iteration mean is
//! printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed with the timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let iters = b.iterations.max(1);
    let per_iter = b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * iters as f64 / b.elapsed.as_secs_f64().max(1e-12);
            println!("bench {name:<40} {per_iter:>12.2?}/iter {rate:>14.3e} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * iters as f64 / b.elapsed.as_secs_f64().max(1e-12);
            println!("bench {name:<40} {per_iter:>12.2?}/iter {rate:>14.3e} B/s");
        }
        None => println!("bench {name:<40} {per_iter:>12.2?}/iter"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small default: these benches print figure data as a side effect
        // and run in CI, so favour turnaround over statistics.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for this
    /// stand-in).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // 1 warm-up + sample_size timed calls.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 4);
    }

    criterion_group!(test_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }
}
