//! EMC emission report (the abstract's "low EMC emissions" claim): the LC
//! tank filters the clipped driver current into a clean pin voltage, and
//! the window comparator freezes steady-state code changes.
//!
//! ```text
//! cargo run --release --example emc_report
//! ```

use lcosc::core::emc::analyze_emissions;
use lcosc::core::gm_driver::{DriverShape, GmDriver};
use lcosc::core::measure::steady_state_activity;
use lcosc::core::tank::LcTank;
use lcosc::core::{ClosedLoopSim, OscillatorConfig};
use lcosc::num::units::{Farads, Henries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== harmonic content vs tank quality ==");
    println!(
        "{:>6} {:>13} {:>13} {:>10}",
        "Q", "current THD", "voltage THD", "cleanup"
    );
    for q in [5.0, 15.0, 50.0] {
        let tank = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), q)?;
        let r = analyze_emissions(
            tank,
            GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 0.5e-3),
            1.65,
        );
        println!(
            "{q:>6.0} {:>12.1}% {:>12.2}% {:>9.0}x",
            100.0 * r.current_thd,
            100.0 * r.voltage_thd,
            r.filtering_gain
        );
    }
    println!("\nthe cable only sees the pin voltage: its harmonics stay ~100x below");
    println!("the internal clipped drive — the tank is the EMC filter.");

    println!("\n== steady-state current-limitation activity ==");
    let mut sim = ClosedLoopSim::new(OscillatorConfig::datasheet_3mhz())?;
    sim.run_ticks(100);
    let activity = steady_state_activity(&sim.trace().codes);
    println!("code changes per tick in steady state: {activity:.3}");
    println!("(the window comparator holds the code, avoiding periodic amplitude");
    println!("steps that would spread spectral skirts — paper §4)");
    assert!(activity < 0.05);
    Ok(())
}
