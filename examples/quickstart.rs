//! Quickstart: regulate the paper's nominal sensor tank to 2.7 Vpp.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lcosc::core::{ClosedLoopSim, OscillatorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's nominal operating point: 4.7 µH excitation coil with
    // 1.5 nF on each pin (f0 ≈ 2.7 MHz), quality factor 50.
    let config = OscillatorConfig::datasheet_3mhz();
    println!("tank:            {}", config.tank);
    println!("target:          {:.2} Vpp differential", config.target_vpp);
    println!("nvm preset code: {}", config.nvm_code);

    let mut sim = ClosedLoopSim::new(config)?;
    let report = sim.run_until_settled()?;

    println!();
    println!("settled:         {}", report.settled);
    println!("ticks (1 ms):    {}", report.ticks);
    println!("final code:      {}", report.final_code);
    println!("amplitude:       {:.3} Vpp", report.final_vpp);
    println!("supply current:  {:.1} µA", report.supply_current * 1e6);

    // The regulated code must stay above 16 — the paper's design guarantee
    // that keeps the relative amplitude step inside the 3.23–6.25 % band.
    assert!(report.settled);
    assert!(report.final_code.value() > 16);
    println!("\nregulation code is above 16, inside the fine-step region — OK");
    Ok(())
}
