//! Static safety proving: discharge the `A0xx` obligations for the
//! paper's datasheet operating point — for *every* die in the mismatch
//! box and *every* input sequence, not one sampled run.
//!
//! ```text
//! cargo run --release --example prove_safety
//! ```

use lcosc::core::{CheckLevel, ClosedLoopSim, OscillatorConfig};
use lcosc::proving;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The same configuration the dual_redundant example regulates.
    let config = OscillatorConfig::datasheet_3mhz();
    println!("proving preset datasheet_3mhz ({})", config.tank);
    println!();

    // Engine 1 + 2: abstract DAC interpretation over the whole mismatch
    // box, oscillation condition over Q ∈ [0.5, 50] with ±10 % element
    // tolerances, and exhaustive reachability of the regulation ×
    // detector × safe-state product automaton.
    let outcome = proving::prove_config(&config);
    print!("{}", outcome.render_human());
    assert!(outcome.proved(), "datasheet point must prove");

    println!();
    println!(
        "worst DAC step over the box: {:.2} % at code {} (window {:.1} %)",
        100.0 * outcome.worst_step.rel_step.hi,
        outcome.worst_step.code,
        100.0 * config.window_rel_width,
    );
    println!(
        "reachable product-automaton states: {} ({} transitions)",
        outcome.reach.states, outcome.reach.transitions,
    );

    // The proved configuration also constructs at the Prove check level —
    // the closed loop refuses to build from refutable facts.
    let mut sim = ClosedLoopSim::new_with_level(config.clone(), CheckLevel::Prove)?;
    let report = sim.run_until_settled()?;
    println!("closed loop settled at code {}", report.final_code);

    // Refutation demo: an 8 % window passes every concrete check (the
    // ideal max step is 6.25 %) but is narrower than the ≈11 % worst-case
    // step over the mismatch box — only the prover sees the gap.
    let mut narrow = config;
    narrow.window_rel_width = 0.08;
    let refuted = proving::prove_config(&narrow);
    println!();
    println!("with an 8 % window instead:");
    print!("{}", refuted.render_human());
    assert!(!refuted.proved(), "the 8 % window must be refuted");
    Ok(())
}
