//! FMEA matrix (paper §7): inject every cataloged fault, report which
//! on-chip detector catches it and whether the system stays safe.
//!
//! ```text
//! cargo run --release --example fmea_report
//! ```

use lcosc::core::config::Fidelity;
use lcosc::core::OscillatorConfig;
use lcosc::safety::FmeaReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OscillatorConfig::datasheet_3mhz();
    println!("FMEA on the datasheet operating point ({})\n", config.tank);

    // The paper's sign-off table is a describing-function (envelope)
    // analysis, so this reproduction pins that fidelity explicitly.
    // Cycle-accurate simulation disagrees on the datasheet tank: a pin
    // leak fools the single-pin amplitude detector and the loop pumps
    // the differential amplitude ~65 % over target, undetected — run
    // with `LCOSC_FIDELITY=cycle` (or `multirate`, which reproduces the
    // cycle verdicts; see DESIGN.md §14) to see that finding.
    let report = FmeaReport::run_at(&config, Fidelity::Envelope)?;
    println!("{report}");

    if report.unsafe_entries().is_empty() {
        println!("all cataloged faults leave the system safe — sign-off OK");
    } else {
        println!("UNSAFE FAULTS PRESENT — design not releasable");
        std::process::exit(1);
    }
    Ok(())
}
