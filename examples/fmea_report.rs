//! FMEA matrix (paper §7): inject every cataloged fault, report which
//! on-chip detector catches it and whether the system stays safe.
//!
//! ```text
//! cargo run --release --example fmea_report
//! ```

use lcosc::core::OscillatorConfig;
use lcosc::safety::FmeaReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OscillatorConfig::datasheet_3mhz();
    println!("FMEA on the datasheet operating point ({})\n", config.tank);

    let report = FmeaReport::run(&config)?;
    println!("{report}");

    if report.unsafe_entries().is_empty() {
        println!("all cataloged faults leave the system safe — sign-off OK");
    } else {
        println!("UNSAFE FAULTS PRESENT — design not releasable");
        std::process::exit(1);
    }
    Ok(())
}
