//! Redundant dual system (paper §8, Fig 9): two coupled oscillators, one
//! loses its supply — compare the three pad topologies of Fig 10/11.
//!
//! ```text
//! cargo run --release --example dual_redundant
//! ```

use lcosc::core::OscillatorConfig;
use lcosc::pad::PadTopology;
use lcosc::safety::DualSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = OscillatorConfig::datasheet_3mhz();
    config.target_vpp = 2.7; // the paper's maximum operating amplitude
    config.nvm_code = config.recommended_nvm_code();

    println!("partner loses its supply while coupled with k = 0.8\n");
    println!(
        "{:<26} {:>10} {:>10} {:>8} {:>8} {:>12} {:>9}",
        "partner pad topology",
        "vpp before",
        "vpp after",
        "code",
        "code'",
        "reflected G",
        "verdict"
    );

    for topology in PadTopology::ALL {
        let mut dual = DualSystem::new(config.clone(), topology, 0.8)?;
        let o = dual.run_supply_loss()?;
        let verdict = if o.survivor_settled && o.influence() < 0.1 {
            "OK"
        } else {
            "DISTURBED"
        };
        println!(
            "{:<26} {:>9.3}V {:>9.3}V {:>8} {:>8} {:>10.2e}S {:>9}",
            topology.to_string(),
            o.vpp_before,
            o.vpp_after,
            o.code_before,
            o.code_after,
            o.reflected_conductance,
            verdict
        );
    }

    println!();
    println!("the Fig 11 bulk-switched stage keeps the survivor inside its window;");
    println!("the plain CMOS stage of Fig 10a reflects orders of magnitude more load.");
    Ok(())
}
