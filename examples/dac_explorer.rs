//! Explore the exponential PWL DAC: Table 1 control coding, the transfer
//! staircase (Fig 3), relative steps (Fig 4) and the reference die's
//! measured-style linearity (Fig 13/14).
//!
//! ```text
//! cargo run --release --example dac_explorer
//! ```

use lcosc::dac::{
    equivalent_delta, equivalent_linear_bits, multiplication_factor, relative_step, Code,
    ControlWord, LinearityReport, MismatchedDac, SEGMENTS,
};

fn main() {
    println!("== Table 1: control signal coding ==");
    println!(
        "{:>7} {:>9} {:>8} {:>6} {:>9} {:>9}  {:>7} {:>7} {:>9}",
        "segment", "prescale", "gm", "step", "min", "max", "OscD", "OscE", "OscF shift"
    );
    for s in &SEGMENTS {
        println!(
            "{:>7} {:>9} {:>8} {:>6} {:>9} {:>9}  {:>7} {:>7} {:>9}",
            s.index,
            s.prescale,
            s.gm_weight,
            s.step,
            s.range_min,
            s.range_max,
            format!("{:03b}", s.osc_d),
            format!("{:04b}", s.osc_e),
            s.oscf_shift
        );
    }

    println!("\n== Fig 3: multiplication factor (every 8th code) ==");
    for code in Code::all().step_by(8) {
        let m = multiplication_factor(code);
        let bar = "#".repeat((m as f64 / 32.0).ceil() as usize);
        println!("{:>4} {:>6} {}", code, m, bar);
    }
    println!(
        "full scale {} units = {} equivalent linear bits, per-code delta {:.2} %",
        multiplication_factor(Code::MAX),
        equivalent_linear_bits(),
        100.0 * equivalent_delta()
    );

    println!("\n== Fig 4: relative step band above code 16 ==");
    let steps: Vec<f64> = (16..127u32)
        .filter_map(|n| relative_step(Code::new(n).expect("in range")))
        .collect();
    let min = steps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = steps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "step range: {:.2} % .. {:.2} % (paper: 3.23 % .. 6.25 %)",
        100.0 * min,
        100.0 * max
    );

    println!("\n== Fig 13/14: reference die (measured-style) ==");
    let die = MismatchedDac::reference_die();
    let report = LinearityReport::analyze(&die);
    println!(
        "full scale {:.3} mA (1 LSB = {:.1} µA)",
        die.current(Code::MAX).value() * 1e3,
        die.lsb() * 1e6
    );
    println!(
        "worst DNL {:.2} local LSB at code {}",
        report.dnl_worst, report.dnl_worst_code
    );
    println!(
        "worst INL {:+.2} % of nominal",
        100.0 * report.inl_worst_rel
    );
    println!("non-monotonic steps at codes: {:?}", report.non_monotonic);
    println!(
        "steps above code 16: {:.2} % .. {:.2} % (argmin at {})",
        100.0 * report.steps_above_16.min,
        100.0 * report.steps_above_16.max,
        report.steps_above_16.argmin
    );
    println!(
        "regulation compatible with the 15 % window: {}",
        report.regulation_compatible(0.15)
    );

    println!("\n== control word for the POR preset ==");
    let w = ControlWord::encode(Code::POR_PRESET);
    println!(
        "code 105 -> {w} -> {} units ({:.0} % of full scale)",
        w.output_units(),
        100.0 * w.output_units() as f64 / multiplication_factor(Code::MAX) as f64
    );
}
