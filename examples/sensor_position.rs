//! The application from the paper's introduction: an inductive position
//! sensor. The regulated excitation coil couples into two receiving coils
//! whose coupling varies with rotor angle; synchronous demodulation and an
//! amplitude-ratio decode recover the position. Receiving-side diagnostics
//! (paper §7, system level) catch opens and shorts to the excitation coil.
//!
//! ```text
//! cargo run --release --example sensor_position
//! ```

use lcosc::core::OscillatorConfig;
use lcosc::sensor::decoder::angle_difference;
use lcosc::sensor::{PositionSensor, RotorCoupling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sensor =
        PositionSensor::new(OscillatorConfig::datasheet_3mhz(), RotorCoupling::typical())?;
    println!(
        "excitation settled at {:.3} Vpp (code {})\n",
        sensor.excitation().amplitude_vpp(),
        sensor.excitation().code()
    );

    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>7}",
        "angle", "decoded", "magnitude", "error", "valid"
    );
    let coupling = RotorCoupling::typical();
    let mut worst = 0.0f64;
    for step in 0..12 {
        let theta = -3.0 + step as f64 * 0.5;
        let m = sensor.measure(theta, 300);
        let expect = coupling.electrical_angle(theta);
        let err = angle_difference(m.position.angle, expect).abs();
        worst = worst.max(err);
        println!(
            "{:>9.2}° {:>11.2}° {:>9.1} mV {:>10.2e} {:>7}",
            theta.to_degrees(),
            m.position.angle.to_degrees(),
            m.position.magnitude * 1e3,
            err,
            m.valid
        );
    }
    println!("\nworst-case decode error: {worst:.2e} rad");
    assert!(worst < 0.01, "ratiometric decode should be accurate");

    // Receiving-side diagnostics (paper §7: "detection of a short between
    // the oscillator coil and receiving coils").
    println!("\n== injected receiving-coil faults ==");
    let mut open =
        PositionSensor::new(OscillatorConfig::datasheet_3mhz(), RotorCoupling::typical())?;
    open.inject_open_coil(0);
    let m = open.measure(0.8, 300);
    println!(
        "open sine coil   -> valid: {:>5}, faults: {:?}",
        m.valid, m.faults
    );
    assert!(!m.valid);

    let mut shorted =
        PositionSensor::new(OscillatorConfig::datasheet_3mhz(), RotorCoupling::typical())?;
    shorted.inject_short_to_excitation(100.0);
    let m = shorted.measure(0.3, 300);
    println!(
        "short to excite  -> valid: {:>5}, faults: {:?}",
        m.valid, m.faults
    );
    assert!(!m.valid);

    println!("\nboth faults are caught before a wrong position can be reported");
    Ok(())
}
