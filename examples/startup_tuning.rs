//! Startup tuning study: how the NVM preset and the window width trade
//! settling time against regulation stability (paper §4's design choices).
//!
//! ```text
//! cargo run --release --example startup_tuning
//! ```

use lcosc::core::measure::{settling_tick, steady_state_activity};
use lcosc::core::{ClosedLoopSim, OscillatorConfig};
use lcosc::dac::Code;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = OscillatorConfig::datasheet_3mhz();
    let ideal = base.recommended_nvm_code();
    println!("ideal nvm code for this tank: {ideal}\n");

    println!("== NVM preset sweep (window 15 %) ==");
    println!(
        "{:>9} {:>14} {:>12}",
        "nvm code", "settling tick", "final code"
    );
    for offset in [-40i32, -20, -5, 0, 5, 20, 40] {
        let mut cfg = base.clone();
        cfg.nvm_code = Code::saturating(ideal.value() as i32 + offset);
        let mut sim = ClosedLoopSim::new(cfg)?;
        sim.run_ticks(120);
        let codes = &sim.trace().codes;
        let settle = settling_tick(codes)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".to_string());
        println!(
            "{:>9} {:>14} {:>12}",
            sim.config().nvm_code,
            settle,
            sim.code()
        );
    }
    println!("a preset near the operating point settles almost immediately —");
    println!("the reason the chip reads the NVM a few µs after startup.\n");

    println!("== window width sweep (nvm at ideal) ==");
    println!(
        "{:>9} {:>14} {:>16}",
        "window", "settling tick", "code activity"
    );
    for window in [0.07, 0.10, 0.15, 0.25, 0.40] {
        let mut cfg = base.clone();
        cfg.window_rel_width = window;
        let mut sim = ClosedLoopSim::new(cfg)?;
        sim.run_ticks(120);
        let codes = &sim.trace().codes;
        let settle = settling_tick(codes)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".to_string());
        println!(
            "{:>8.0}% {:>14} {:>16.3}",
            window * 100.0,
            settle,
            steady_state_activity(codes)
        );
    }
    println!("wider windows reduce steady-state code activity (fewer current-");
    println!("limit changes, less EMC) but tolerate a larger amplitude error;");
    println!("the paper picks the window just above the 6.25 % maximum step.");
    Ok(())
}
