//! Frequency-domain view of the sensor tank: build the paper's Fig 1
//! network in the MNA simulator and sweep it with the AC analysis —
//! the resonance peak and bandwidth must match the analytic `LcTank`.
//!
//! ```text
//! cargo run --release --example ac_tank_analysis
//! ```

use lcosc::circuit::analysis::ac::{ac_sweep, logspace};
use lcosc::circuit::netlist::{Netlist, Waveform};
use lcosc::core::tank::LcTank;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tank = LcTank::datasheet_3mhz();
    println!("analytic: {tank}\n");

    // Fig 1's passive network, driven through a weak source so the tank's
    // own impedance shapes the response.
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    let drv = nl.node("drv");
    let src = nl.voltage_source(drv, Netlist::GROUND, Waveform::Dc(0.0));
    nl.resistor(drv, lc1, 100e3);
    nl.capacitor(lc1, Netlist::GROUND, tank.c1().value());
    nl.capacitor(lc2, Netlist::GROUND, tank.c2().value());
    nl.inductor(lc1, mid, tank.l().value());
    nl.resistor(mid, lc2, tank.rs().value());

    println!("netlist:\n{}", nl.listing());

    let f0 = tank.f0().value();
    let freqs = logspace(f0 / 4.0, f0 * 4.0, 41);
    let pts = ac_sweep(&nl, src, &freqs)?;

    println!("{:>12} {:>10} {:>10}", "f [Hz]", "|V(lc1)|dB", "phase");
    let mut peak = (0.0f64, 0.0f64);
    for p in &pts {
        let mag = p.magnitude_db(lc1);
        if p.voltage(lc1).abs() > peak.1 {
            peak = (p.frequency, p.voltage(lc1).abs());
        }
        let bar = "#".repeat(((mag + 75.0).max(0.0) / 2.0) as usize);
        println!(
            "{:>12.0} {:>9.2} {:>9.1}°  {}",
            p.frequency,
            mag,
            p.phase(lc1).to_degrees(),
            bar
        );
    }

    println!(
        "\nMNA resonance at {:.3} MHz vs analytic f0 {:.3} MHz ({:+.2} %)",
        peak.0 / 1e6,
        f0 / 1e6,
        100.0 * (peak.0 / f0 - 1.0)
    );
    assert!((peak.0 / f0 - 1.0).abs() < 0.1);

    // Q from the -3 dB bandwidth on a finer sweep.
    let fine = ac_sweep(&nl, src, &logspace(f0 * 0.8, f0 * 1.25, 801))?;
    let m_peak = fine
        .iter()
        .map(|p| p.voltage(lc1).abs())
        .fold(0.0f64, f64::max);
    let half = m_peak / std::f64::consts::SQRT_2;
    let in_band: Vec<f64> = fine
        .iter()
        .filter(|p| p.voltage(lc1).abs() >= half)
        .map(|p| p.frequency)
        .collect();
    let bw = in_band.last().unwrap_or(&f0) - in_band.first().unwrap_or(&f0);
    println!("MNA Q = {:.1} vs analytic Q = {:.1}", peak.0 / bw, tank.q());
    Ok(())
}
