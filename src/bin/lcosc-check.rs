//! `lcosc-check` — command-line linter for netlists and oscillator
//! configurations.
//!
//! ```text
//! lcosc-check [--json] netlist <deck.cir>   lint a SPICE-style deck
//! lcosc-check [--json] config <preset>      lint a configuration preset
//! lcosc-check list-codes                    print the diagnostic registry
//! lcosc-check explain <CODE>                describe one diagnostic code
//! ```
//!
//! Exit status: 0 when clean (warnings allowed), 1 when any error-severity
//! diagnostic was found, 2 on usage or parse failures.

use lcosc::check::{describe, parse_deck, Report, ALL_CODES};
use lcosc::core::OscillatorConfig;
use lcosc::safety::scenario::check_scenario;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lcosc-check [--json] netlist <deck.cir>
       lcosc-check [--json] config <datasheet_3mhz|low_q|fast_test>
       lcosc-check list-codes
       lcosc-check explain <CODE>";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        true
    } else {
        false
    };

    match args.first().map(String::as_str) {
        Some("list-codes") => {
            for (code, text) in ALL_CODES {
                println!("{code}  {text}");
            }
            ExitCode::SUCCESS
        }
        Some("explain") => match args.get(1).map(|c| (c, describe(c))) {
            Some((code, Some(text))) => {
                println!("{code}: {text}");
                ExitCode::SUCCESS
            }
            Some((code, None)) => {
                eprintln!("unknown diagnostic code {code:?} (see lcosc-check list-codes)");
                ExitCode::from(2)
            }
            None => usage(),
        },
        Some("netlist") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_deck(&text) {
                Ok(nl) => finish(&lcosc::check::check_netlist(&nl), json),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("config") => {
            let Some(preset) = args.get(1) else {
                return usage();
            };
            let cfg = match preset.as_str() {
                "datasheet_3mhz" | "datasheet" => OscillatorConfig::datasheet_3mhz(),
                "low_q" => OscillatorConfig::low_q(),
                "fast_test" => OscillatorConfig::fast_test(),
                other => {
                    eprintln!("unknown preset {other:?} (datasheet_3mhz, low_q, fast_test)");
                    return ExitCode::from(2);
                }
            };
            finish(&check_scenario(&cfg), json)
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn finish(report: &Report, json: bool) -> ExitCode {
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
