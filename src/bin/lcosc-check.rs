//! `lcosc-check` — command-line linter for netlists and oscillator
//! configurations.
//!
//! ```text
//! lcosc-check [--json] netlist <deck.cir|deck.sp> lint a SPICE-style deck
//! lcosc-check [--json] [--prove] config <preset> lint (and prove) a preset
//! lcosc-check [--json] prove-faults <preset>     prove the 11-fault fitments
//! lcosc-check list-codes                         print the diagnostic registry
//! lcosc-check explain <CODE>                     describe one diagnostic code
//! ```
//!
//! `.sp` files go through the `lcosc-spice` front end (`P0xx` parse
//! diagnostics plus the netlist lint); any other extension uses the
//! legacy line-oriented deck reader.
//!
//! `--prove` runs the `A0xx` static safety prover on top of the concrete
//! lint: interval abstract interpretation of the DAC over its whole
//! mismatch box plus exhaustive reachability of the regulation/safety
//! automaton. `prove-faults` re-proves safe-state reachability once per
//! catalog fault with only that fault's fitted detectors enabled.
//!
//! Exit status: 0 when clean (warnings allowed), 1 when any error-severity
//! diagnostic was found or a proof obligation was refuted, 2 on usage or
//! parse failures.

use lcosc::check::{describe, parse_deck, Report, ALL_CODES};
use lcosc::core::OscillatorConfig;
use lcosc::proving;
use lcosc::safety::scenario::check_scenario;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lcosc-check [--json] netlist <deck.cir|deck.sp>
       lcosc-check [--json] [--prove] config <datasheet_3mhz|low_q|fast_test>
       lcosc-check [--json] prove-faults <datasheet_3mhz|low_q|fast_test>
       lcosc-check list-codes
       lcosc-check explain <CODE>";

fn preset_config(preset: &str) -> Option<OscillatorConfig> {
    match preset {
        "datasheet_3mhz" | "datasheet" => Some(OscillatorConfig::datasheet_3mhz()),
        "low_q" => Some(OscillatorConfig::low_q()),
        "fast_test" => Some(OscillatorConfig::fast_test()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        true
    } else {
        false
    };
    let prove = if let Some(pos) = args.iter().position(|a| a == "--prove") {
        args.remove(pos);
        true
    } else {
        false
    };

    match args.first().map(String::as_str) {
        Some("list-codes") => {
            for (code, text) in ALL_CODES {
                println!("{code}  {text}");
            }
            ExitCode::SUCCESS
        }
        Some("explain") => match args.get(1).map(|c| (c, describe(c))) {
            Some((code, Some(text))) => {
                println!("{code}: {text}");
                ExitCode::SUCCESS
            }
            Some((code, None)) => {
                eprintln!("unknown diagnostic code {code:?} (see lcosc-check list-codes)");
                ExitCode::from(2)
            }
            None => usage(),
        },
        Some("netlist") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if path.ends_with(".sp") {
                // SPICE dialect: the deck's check() folds the parser's
                // P0xx warnings into the netlist lint.
                match lcosc::spice::parse_spice(&text) {
                    Ok(deck) => finish(&deck.check(), json),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        ExitCode::from(2)
                    }
                }
            } else {
                match parse_deck(&text) {
                    Ok(nl) => finish(&lcosc::check::check_netlist(&nl), json),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        ExitCode::from(2)
                    }
                }
            }
        }
        Some("config") => {
            let Some(preset) = args.get(1) else {
                return usage();
            };
            let Some(cfg) = preset_config(preset) else {
                eprintln!("unknown preset {preset:?} (datasheet_3mhz, low_q, fast_test)");
                return ExitCode::from(2);
            };
            if prove {
                let outcome = proving::prove_config(&cfg);
                if json {
                    println!("{}", outcome.render_json());
                } else {
                    let concrete = check_scenario(&cfg);
                    print!("{}", concrete.render_human());
                    print!("{}", outcome.render_human());
                }
                if outcome.proved() && !check_scenario(&cfg).has_errors() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            } else {
                finish(&check_scenario(&cfg), json)
            }
        }
        Some("prove-faults") => {
            let Some(preset) = args.get(1) else {
                return usage();
            };
            let Some(cfg) = preset_config(preset) else {
                eprintln!("unknown preset {preset:?} (datasheet_3mhz, low_q, fast_test)");
                return ExitCode::from(2);
            };
            let proofs = proving::prove_fault_responses(&cfg);
            if json {
                println!(
                    "{}",
                    proving::fault_responses_to_json(preset, &proofs).render()
                );
            } else {
                print!("{}", proving::fault_responses_to_human(preset, &proofs));
            }
            if proofs.iter().all(|p| p.outcome.proved()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn finish(report: &Report, json: bool) -> ExitCode {
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
