//! Chip-level composition of the `lcosc-check` static safety prover:
//! glue shared by the `lcosc-check` CLI and the golden-fixture tests.
//!
//! The check crate proves properties of *facts* — a mismatch box, a
//! window, a detector fitment. This module decides which facts the chip
//! presents: the full prover run for a configuration preset
//! ([`prove_config`]), and the per-fault fitment proof
//! ([`prove_fault_responses`]) that walks the 11-fault FMEA catalog and
//! proves, for each fault, that the detectors fitted to catch it still
//! reach the safe state with a bounded trip latency — the static
//! counterpart of the dynamic FMEA campaign in `lcosc-safety`.

use lcosc_campaign::Json;
use lcosc_check::{prove, ProveFacts, ProveOutcome};
use lcosc_core::OscillatorConfig;
use lcosc_safety::Fault;
use lcosc_serve::protocol::fault_token;

/// Which of the three detectors (missing-oscillation, low-amplitude,
/// asymmetry) are fitted to catch `fault` — the paper's §5 detector
/// assignment. A fault's proof obligation only credits these detectors:
/// the safe state must be reachable *through them*, not through a
/// detector the failure mode does not excite.
pub fn fault_detectors(fault: Fault) -> [bool; 3] {
    match fault {
        // The tank stops oscillating outright: the missing-oscillation
        // comparator is the primary witness.
        Fault::OpenCoil | Fault::CoilShort | Fault::SupplyLoss | Fault::DriverDead => {
            [true, false, false]
        }
        // A shorted pin kills the oscillation and unbalances LC1/LC2:
        // both the missing-oscillation and asymmetry detectors see it.
        Fault::PinShortToGround { .. } | Fault::PinShortToSupply { .. } => [true, false, true],
        // One missing capacitor detunes a single pin: only the
        // asymmetry comparison catches it.
        Fault::MissingCapacitor { .. } => [false, false, true],
        // Drifting series resistance starves the amplitude while the
        // loop saturates high: the low-amplitude detector's case.
        Fault::RsDrift { .. } => [false, true, false],
    }
}

/// Proves the full obligation set for a configuration (all detectors
/// fitted). Equivalent to [`OscillatorConfig::prove`], re-exported here
/// so CLI and tests share one entry point.
pub fn prove_config(cfg: &OscillatorConfig) -> ProveOutcome {
    prove(&cfg.prove_facts())
}

/// One fault's fitment proof.
#[derive(Debug, Clone)]
pub struct FaultProof {
    /// The fault, by stable protocol token.
    pub fault: &'static str,
    /// The fitted-detector mask the proof ran with.
    pub detectors: [bool; 3],
    /// The prover outcome under that fitment.
    pub outcome: ProveOutcome,
}

/// Walks the 11-fault catalog and proves each fault's detector fitment
/// on `cfg`: with only [`fault_detectors`] enabled, the safe state must
/// stay reachable, livelock-free, latency-bounded and latch-preserving.
pub fn prove_fault_responses(cfg: &OscillatorConfig) -> Vec<FaultProof> {
    let base = cfg.prove_facts();
    Fault::catalog()
        .into_iter()
        .map(|fault| {
            let facts = ProveFacts {
                detectors_enabled: fault_detectors(fault),
                ..base.clone()
            };
            FaultProof {
                fault: fault_token(fault),
                detectors: fault_detectors(fault),
                outcome: prove(&facts),
            }
        })
        .collect()
}

const DETECTOR_NAMES: [&str; 3] = ["missing_oscillation", "low_amplitude", "asymmetry"];

/// Byte-stable JSON document for a [`prove_fault_responses`] run.
pub fn fault_responses_to_json(preset: &str, proofs: &[FaultProof]) -> Json {
    let rows: Vec<Json> = proofs
        .iter()
        .map(|p| {
            let fitted: Vec<Json> = DETECTOR_NAMES
                .iter()
                .zip(p.detectors)
                .filter(|&(_, on)| on)
                .map(|(name, _)| Json::from(*name))
                .collect();
            Json::obj([
                ("fault", Json::from(p.fault)),
                ("detectors", Json::Array(fitted)),
                ("proved", Json::from(p.outcome.proved())),
                ("prove", p.outcome.to_json()),
            ])
        })
        .collect();
    Json::obj([
        ("preset", Json::from(preset.to_string())),
        ("faults", Json::Array(rows)),
        (
            "all_proved",
            Json::from(proofs.iter().all(|p| p.outcome.proved())),
        ),
    ])
}

/// Human-readable rendering of a [`prove_fault_responses`] run.
pub fn fault_responses_to_human(preset: &str, proofs: &[FaultProof]) -> String {
    let mut s = String::new();
    s.push_str(&format!("fault fitment proofs for preset {preset}\n"));
    for p in proofs {
        let fitted: Vec<&str> = DETECTOR_NAMES
            .iter()
            .zip(p.detectors)
            .filter(|&(_, on)| on)
            .map(|(name, _)| *name)
            .collect();
        s.push_str(&format!(
            "{} {:16} via {}\n",
            if p.outcome.proved() {
                "proved "
            } else {
                "REFUTED"
            },
            p.fault,
            fitted.join("+"),
        ));
    }
    let failed = proofs.iter().filter(|p| !p.outcome.proved()).count();
    if failed == 0 {
        s.push_str(&format!("all {} fault fitments proved\n", proofs.len()));
    } else {
        s.push_str(&format!(
            "{failed} of {} fault fitments REFUTED\n",
            proofs.len()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_fault_has_at_least_one_detector() {
        for fault in Fault::catalog() {
            let mask = fault_detectors(fault);
            assert!(mask.iter().any(|&d| d), "{fault:?} has no fitted detector");
        }
    }

    #[test]
    fn fast_test_fault_fitments_all_prove() {
        let cfg = OscillatorConfig::fast_test();
        let proofs = prove_fault_responses(&cfg);
        assert_eq!(proofs.len(), 11);
        for p in &proofs {
            assert!(
                p.outcome.proved(),
                "{}:\n{}",
                p.fault,
                p.outcome.render_human()
            );
        }
        let doc = fault_responses_to_json("fast_test", &proofs);
        assert_eq!(doc.get("all_proved"), Some(&Json::Bool(true)));
        // Round-trip: the rendering is parseable and canonical-stable.
        let rendered = doc.render();
        let reparsed = Json::parse(&rendered).expect("fault doc parses");
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn human_rendering_names_every_fault() {
        let cfg = OscillatorConfig::fast_test();
        let proofs = prove_fault_responses(&cfg);
        let text = fault_responses_to_human("fast_test", &proofs);
        for p in &proofs {
            assert!(text.contains(p.fault), "{}", p.fault);
        }
        assert!(text.contains("all 11 fault fitments proved"));
    }
}
