//! # lcosc — LC oscillator driver for safety-critical applications
//!
//! Facade crate for the `lcosc` workspace, a from-scratch Rust reproduction
//! of *P. Horsky, "LC Oscillator Driver for Safety Critical Applications",
//! DATE 2005*.
//!
//! The workspace models a CMOS harmonic LC oscillator driver for automotive
//! inductive position sensors: an exponential piece-wise-linear DAC limits
//! the driver current, a 1 ms digital loop regulates oscillation amplitude
//! through a window comparator, and dedicated detectors cover the paper's
//! safety-critical failure modes (missing oscillation, low amplitude, pin
//! asymmetry, partner-supply loss in redundant dual systems).
//!
//! This crate simply re-exports each member crate under a stable path:
//!
//! - [`num`] — numerical substrate (linear algebra, ODE, filters, FFT).
//! - [`trace`] — deterministic observability layer (typed events,
//!   counters/histograms, ring-buffer and byte-stable JSONL sinks).
//! - [`campaign`] — deterministic parallel campaign engine (seeded job
//!   fan-out, order-stable reduction, byte-stable JSON reports).
//! - [`circuit`] — netlist MNA simulator (DC, sweep, transient).
//! - [`check`] — static ERC/DRC verification pass (netlist, config and
//!   safety-invariant lints with stable diagnostic codes).
//! - [`device`] — behavioral device models (MOSFET, diode, mirrors, ...).
//! - [`dac`] — the exponential PWL current-limitation DAC (Table 1).
//! - [`core`] — LC tank, limited Gm driver, amplitude regulation loop.
//! - [`pad`] — output pad driver topologies and unsupplied-pin analysis.
//! - [`safety`] — fault injection, FMEA matrix, redundant dual system.
//! - [`sensor`] — the inductive position sensor application layer.
//! - [`spice`] — `.sp` netlist front end (lexer, parser, renderer) and
//!   the deterministic input-surface fuzzing harness.
//! - [`serve`] — the deterministic batch simulation service.
//!
//! On top of the re-exports, [`proving`] composes `check`'s static
//! safety prover with the chip's presets and fault catalog (the
//! `lcosc-check --prove` and `prove-faults` CLI paths).
//!
//! ## Quickstart
//!
//! ```
//! use lcosc::core::{ClosedLoopSim, OscillatorConfig};
//!
//! # fn main() -> Result<(), lcosc::core::CoreError> {
//! let config = OscillatorConfig::datasheet_3mhz();
//! let mut sim = ClosedLoopSim::new(config)?;
//! let report = sim.run_until_settled()?;
//! assert!(report.settled);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod proving;

pub use lcosc_campaign as campaign;
pub use lcosc_check as check;
pub use lcosc_circuit as circuit;
pub use lcosc_core as core;
pub use lcosc_dac as dac;
pub use lcosc_device as device;
pub use lcosc_num as num;
pub use lcosc_pad as pad;
pub use lcosc_safety as safety;
pub use lcosc_sensor as sensor;
pub use lcosc_serve as serve;
pub use lcosc_spice as spice;
pub use lcosc_trace as trace;
