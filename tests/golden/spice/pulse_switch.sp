* PULSE-driven gate charging a tank through a switch
V1 drive 0 pulse(0 3.3 1u 10n 10n 4u 10u)
S1 drive tank on ron=2 roff=1e9
L1 tank 0 10u
C1 tank 0 2.2n
R1 tank 0 10k ; tank loss
.tran 1e-8 2e-5 uic
.end
