* anti-parallel diode clamp across the tank (ESD-style limiter)
.model clamp d is=5e-15 n=1.05
L1 tank 0 10u ic=1m
C1 tank 0 2.2n
D1 tank 0 clamp
D2 0 tank clamp
R1 tank 0 2.2k
.tran 1e-7 1e-5 uic
.end
