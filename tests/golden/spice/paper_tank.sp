* paper LC tank ring-down (Horsky DATE'05, fig. 2 topology)
.title paper tank ring-down
L1 tank 0 10u ic=0
C1 tank 0 2.2n ic=3.3
R1 tank 0 1k
.tran 1e-7 1e-5 uic
.end
