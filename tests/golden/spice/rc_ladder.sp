* four-stage RC ladder; values via .param, engineering suffixes
.param rstage=4.7k cstage=100n
V1 in 0 dc 3.3
R1 in n1 rstage
C1 n1 0 cstage
R2 n1 n2 rstage
C2 n2 0 cstage
R3 n2 n3 rstage
C3 n3 0 cstage
R4 n3 out rstage
C4 out 0 cstage
.tran 1u 5m
.end
