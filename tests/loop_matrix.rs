//! Configuration-matrix test: the regulation loop must settle across the
//! cross product of driver shapes, DAC dies and tanks — one flaky
//! combination is a design bug, not bad luck.

use lcosc::core::config::OscillatorConfig;
use lcosc::core::gm_driver::DriverShape;
use lcosc::core::sim::ClosedLoopSim;
use lcosc::core::tank::LcTank;
use lcosc::dac::{DacMismatchParams, MismatchedDac};
use lcosc::num::units::{Farads, Henries};

fn tanks() -> Vec<LcTank> {
    vec![
        LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), 10.0)
            .expect("tank constants are valid"),
        LcTank::with_q(Henries::from_micro(10.0), Farads::from_nano(1.0), 30.0)
            .expect("tank constants are valid"),
    ]
}

fn dies() -> Vec<(&'static str, MismatchedDac)> {
    vec![
        ("ideal", MismatchedDac::ideal(12.5e-6)),
        ("reference", MismatchedDac::reference_die()),
        (
            "sampled#9",
            MismatchedDac::sampled(&DacMismatchParams::default(), 9),
        ),
    ]
}

fn shapes() -> Vec<(&'static str, DriverShape)> {
    vec![
        ("hard-limit", DriverShape::HardLimit),
        ("linear", DriverShape::LinearSaturate { gm: 10e-3 }),
        ("tanh", DriverShape::Tanh { gm: 10e-3 }),
    ]
}

#[test]
fn loop_settles_across_the_full_matrix() {
    for tank in tanks() {
        for (die_name, die) in dies() {
            for (shape_name, shape) in shapes() {
                let mut cfg = OscillatorConfig::for_tank(tank);
                cfg.target_vpp = 2.0;
                cfg.driver_shape = shape;
                cfg.dac = die.clone();
                cfg.nvm_code = cfg.recommended_nvm_code();
                let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
                let report = sim.run_until_settled().expect("infallible");
                assert!(
                    report.settled,
                    "never settled: tank {tank}, die {die_name}, shape {shape_name}"
                );
                assert!(
                    (report.final_vpp / 2.0 - 1.0).abs() < 0.2,
                    "vpp {} off target: tank {tank}, die {die_name}, shape {shape_name}",
                    report.final_vpp
                );
            }
        }
    }
}

#[test]
fn steady_state_is_quiet_across_the_matrix() {
    use lcosc::core::measure::steady_state_activity;
    for tank in tanks() {
        for (die_name, die) in dies() {
            let mut cfg = OscillatorConfig::for_tank(tank);
            cfg.target_vpp = 2.0;
            cfg.dac = die.clone();
            cfg.nvm_code = cfg.recommended_nvm_code();
            let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
            sim.run_ticks(80);
            let activity = steady_state_activity(&sim.trace().codes);
            assert!(
                activity < 0.1,
                "hunting on tank {tank}, die {die_name}: activity {activity}"
            );
        }
    }
}
