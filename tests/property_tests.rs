//! Whole-system property tests: the closed loop must behave for *any*
//! supported tank/target combination, not just the presets.

use lcosc::core::condition::OscillationCondition;
use lcosc::core::config::OscillatorConfig;
use lcosc::core::sim::ClosedLoopSim;
use lcosc::core::tank::LcTank;
use lcosc::num::units::{Farads, Henries, Volts};
use proptest::prelude::*;

fn supported_tank() -> impl Strategy<Value = LcTank> {
    // L and C around the datasheet values, Q within the supported band
    // (codes stay in 17..=127 for a 2.7 Vpp target — see EXPERIMENTS.md).
    (2.0f64..50.0, 0.5f64..5.0, 1.0f64..50.0).prop_map(|(l_uh, c_nf, q)| {
        LcTank::with_q(Henries::from_micro(l_uh), Farads::from_nano(c_nf), q)
            .expect("generated constants are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any supported tank the loop settles inside the window at a code
    /// above 16, and the amplitude holds the target within the window.
    #[test]
    fn loop_settles_for_any_supported_tank(tank in supported_tank()) {
        let needed = OscillationCondition::new(tank)
            .i_max_for_amplitude(Volts(2.0))
            .value();
        // Only test combinations the DAC can serve with margin.
        prop_assume!(needed < 0.8 * 1984.0 * 12.5e-6);
        prop_assume!(needed > 17.0 * 12.5e-6);

        let mut cfg = OscillatorConfig::for_tank(tank);
        cfg.target_vpp = 2.0;
        cfg.nvm_code = cfg.recommended_nvm_code();
        let mut sim = ClosedLoopSim::new(cfg.clone()).expect("valid config");
        let report = sim.run_until_settled().expect("infallible");
        prop_assert!(report.settled, "never settled on {tank}");
        prop_assert!(report.final_code.value() > 16, "code {}", report.final_code);
        prop_assert!(
            (report.final_vpp / 2.0 - 1.0).abs() < cfg.window_rel_width,
            "vpp {} on {tank}",
            report.final_vpp
        );
    }

    /// The settled code matches the analytic prediction within ±2 counts
    /// for any supported tank — the amplitude law and the DAC staircase
    /// compose correctly.
    #[test]
    fn settled_code_matches_analytic_prediction(tank in supported_tank()) {
        let needed = OscillationCondition::new(tank)
            .i_max_for_amplitude(Volts(2.0))
            .value();
        prop_assume!(needed < 0.8 * 1984.0 * 12.5e-6);
        prop_assume!(needed > 17.0 * 12.5e-6);

        let mut cfg = OscillatorConfig::for_tank(tank);
        cfg.target_vpp = 2.0;
        cfg.nvm_code = cfg.recommended_nvm_code();
        let predicted = cfg.recommended_nvm_code().value() as i32;
        let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
        let report = sim.run_until_settled().expect("infallible");
        let got = report.final_code.value() as i32;
        prop_assert!((got - predicted).abs() <= 2, "code {got} vs predicted {predicted}");
    }

    /// Doubling the series loss raises the settled code, never lowers it
    /// (monotone compensation).
    #[test]
    fn loss_increase_never_lowers_code(tank in supported_tank(), factor in 1.3f64..2.5) {
        let needed_hi = OscillationCondition::new(tank)
            .i_max_for_amplitude(Volts(2.0))
            .value() * factor;
        prop_assume!(needed_hi < 0.8 * 1984.0 * 12.5e-6);
        prop_assume!(needed_hi > 17.0 * 12.5e-6 * factor);

        let settle = |t: LcTank| {
            let mut cfg = OscillatorConfig::for_tank(t);
            cfg.target_vpp = 2.0;
            cfg.nvm_code = cfg.recommended_nvm_code();
            let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
            sim.run_until_settled().expect("infallible").final_code.value()
        };
        let base = settle(tank);
        let lossy = settle(tank.with_rs(lcosc::num::units::Ohms(
            tank.rs().value() * factor,
        )));
        prop_assert!(lossy >= base, "{base} -> {lossy}");
    }
}
