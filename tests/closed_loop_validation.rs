//! Cross-crate validation: the analytic oscillation condition (paper §2),
//! the averaged envelope model and the cycle-accurate ODE must agree.

use lcosc::core::condition::OscillationCondition;
use lcosc::core::config::{Fidelity, OscillatorConfig};
use lcosc::core::envelope::EnvelopeModel;
use lcosc::core::gm_driver::{DriverShape, GmDriver};
use lcosc::core::measure::frequency_of;
use lcosc::core::oscillator::{OscillatorModel, OscillatorState};
use lcosc::core::sim::ClosedLoopSim;
use lcosc::core::tank::LcTank;
use lcosc::num::units::{Amps, Farads, Henries};

fn test_tank() -> LcTank {
    LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), 10.0)
        .expect("tank constants are valid")
}

#[test]
fn eq1_eq4_analytic_vs_ode_amplitude() {
    // Paper eq 4: steady amplitude proportional to the current limit; our
    // derived constant (DESIGN.md §8) must match the full ODE within the
    // describing-function accuracy.
    let tank = test_tank();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 0.8e-3);
    let model = OscillatorModel::new(tank, driver, 1.65);
    let dt = 1.0 / tank.f0().value() / 80.0;
    let wf = model.run(
        OscillatorState::at_rest(1.65),
        250.0 / tank.f0().value(),
        dt,
        1,
    );
    let vd = wf.v_diff();
    let measured_peak = vd[4 * vd.len() / 5..]
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()));
    let predicted_pp = OscillationCondition::new(tank)
        .steady_amplitude_pp(Amps(0.8e-3))
        .value();
    assert!(
        (2.0 * measured_peak / predicted_pp - 1.0).abs() < 0.15,
        "ode {} vs analytic {}",
        2.0 * measured_peak,
        predicted_pp
    );
}

#[test]
fn envelope_model_tracks_ode_transient() {
    // The averaged model must reproduce the ODE's growth envelope, not just
    // its fixed point.
    let tank = test_tank();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 3e-3 }, 1e-3);
    let model = OscillatorModel::new(tank, driver, 1.65);
    let envelope = EnvelopeModel::new(tank, driver);

    let dt = 1.0 / tank.f0().value() / 80.0;
    let span = 120.0 / tank.f0().value();
    let wf = model.run(OscillatorState::at_rest(1.65), span, dt, 1);
    let vd = wf.v_diff();

    // Compare per-pin envelope at two checkpoints (1/2 and end of run).
    let mut a_env = 0.5e-3;
    let half_steps = vd.len() / 2;
    a_env = envelope.advance(a_env, half_steps as f64 * dt, half_steps.max(1));
    let ode_half = vd[half_steps.saturating_sub(200)..half_steps]
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        / 2.0;
    assert!(
        (a_env / ode_half - 1.0).abs() < 0.25,
        "halfway: envelope {a_env} vs ode {ode_half}"
    );
}

#[test]
fn oscillation_frequency_stays_at_tank_resonance() {
    let tank = test_tank();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
    let model = OscillatorModel::new(tank, driver, 1.65);
    let dt = 1.0 / tank.f0().value() / 80.0;
    let wf = model.run(
        OscillatorState::at_rest(1.65),
        200.0 / tank.f0().value(),
        dt,
        1,
    );
    let f = frequency_of(&wf.v_diff(), dt).expect("oscillation present");
    assert!(
        (f / tank.f0().value() - 1.0).abs() < 0.02,
        "f {} vs f0 {}",
        f,
        tank.f0().value()
    );
}

#[test]
fn spectral_purity_of_regulated_oscillation() {
    // The tank filters the limited driver current: THD of the pin voltage
    // must be low even though the drive is a clipped waveform.
    let tank = test_tank();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
    let model = OscillatorModel::new(tank, driver, 1.65);
    let dt = 1.0 / tank.f0().value() / 80.0;
    let wf = model.run(
        OscillatorState::at_rest(1.65),
        300.0 / tank.f0().value(),
        dt,
        1,
    );
    let vd = wf.v_diff();
    let tail = &vd[vd.len() / 2..];
    let fs = 1.0 / dt;
    let thd = lcosc::num::fft::thd(tail, fs, 5).expect("fundamental found");
    assert!(thd < 0.05, "thd {thd}");
}

#[test]
fn both_fidelities_settle_to_same_code() {
    let mut env_cfg = OscillatorConfig::fast_test();
    env_cfg.tick_period = 0.2e-3;
    env_cfg.detector_tau = 15e-6;
    let mut cyc_cfg = env_cfg.clone();
    cyc_cfg.fidelity = Fidelity::Cycle;

    let mut env = ClosedLoopSim::new(env_cfg).expect("valid config");
    let mut cyc = ClosedLoopSim::new(cyc_cfg).expect("valid config");
    env.run_ticks(15);
    cyc.run_ticks(15);
    let d = (env.code().value() as i32 - cyc.code().value() as i32).abs();
    assert!(d <= 2, "envelope {} vs cycle {}", env.code(), cyc.code());
}

#[test]
fn regulated_amplitude_holds_across_q_spread() {
    // The same loop regulates tanks a decade apart in quality factor to the
    // same amplitude — the paper's core wide-range claim.
    for q in [3.0, 10.0, 60.0] {
        let tank = LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), q)
            .expect("tank constants are valid");
        let mut cfg = OscillatorConfig::for_tank(tank);
        cfg.target_vpp = 2.0;
        cfg.nvm_code = cfg.recommended_nvm_code();
        let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
        let report = sim.run_until_settled().expect("infallible");
        assert!(report.settled, "q {q} never settled");
        assert!(
            (report.final_vpp / 2.0 - 1.0).abs() < 0.15,
            "q {q}: vpp {}",
            report.final_vpp
        );
    }
}
