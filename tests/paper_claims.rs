//! The paper's headline numeric claims, checked end-to-end against the
//! reproduction (see EXPERIMENTS.md for the full paper-vs-measured table).

use lcosc::core::condition::OscillationCondition;
use lcosc::core::config::OscillatorConfig;
use lcosc::core::sim::ClosedLoopSim;
use lcosc::core::tank::LcTank;
use lcosc::dac::{
    equivalent_linear_bits, multiplication_factor, relative_step, Code, MismatchedDac,
};
use lcosc::num::units::{Farads, Henries, Volts};

#[test]
fn abstract_claim_two_decades_of_quality_factor() {
    // "Quality factor of the external LC network can vary two decades":
    // both ends must be regulable by the chip's code/gm range. The usable
    // code span 16..=127 covers a 124:1 current ratio — two decades — and
    // the required current scales as 1/Q, so a single coil supports
    // Q ≈ 0.65 … 65 at full amplitude.
    let lo = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 0.65)
        .expect("tank constants are valid");
    let hi = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 65.0)
        .expect("tank constants are valid");
    assert!((hi.q() / lo.q() - 100.0).abs() < 1e-9);

    for tank in [lo, hi] {
        // Startable: nine Gm stages of 10 mS each.
        let crit = OscillationCondition::new(tank).critical_gm();
        assert!(crit < 9.0 * 10e-3, "q {}: critical gm {crit}", tank.q());
        // Regulable: the needed current fits the DAC range and the code
        // stays above 16 (the fine-step region).
        let i = OscillationCondition::new(tank)
            .i_max_for_amplitude(Volts(2.7))
            .value();
        let units = i / 12.5e-6;
        assert!(units <= 1984.0, "q {}: needs {units} units", tank.q());
        let code = Code::all()
            .find(|&c| multiplication_factor(c) as f64 >= units)
            .expect("within range");
        assert!(code.value() > 16, "q {}: code {code}", tank.q());
    }
}

#[test]
fn section9_consumption_250ua_to_30ma() {
    let hi_q = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 65.0)
        .expect("tank constants are valid");
    let lo_q = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 0.65)
        .expect("tank constants are valid");
    let i_min = OscillationCondition::new(hi_q)
        .supply_current(OscillationCondition::new(hi_q).i_max_for_amplitude(Volts(2.7)))
        .value();
    let i_max = OscillationCondition::new(lo_q)
        .supply_current(OscillationCondition::new(lo_q).i_max_for_amplitude(Volts(2.7)))
        .value();
    // Shape: two orders of magnitude between best and worst case, in the
    // paper's 250 µA .. 30 mA ballpark.
    assert!((100e-6..600e-6).contains(&i_min), "min {i_min}");
    assert!((5e-3..40e-3).contains(&i_max), "max {i_max}");
    assert!(i_max / i_min > 30.0, "span {}", i_max / i_min);
}

#[test]
fn section3_dac_is_11_bit_linear_equivalent() {
    assert_eq!(equivalent_linear_bits(), 11);
    assert_eq!(multiplication_factor(Code::MAX), 1984);
}

#[test]
fn section3_step_band_3_23_to_6_25_percent() {
    let steps: Vec<f64> = (16..127u32)
        .filter_map(|n| relative_step(Code::new(n).expect("in range")))
        .collect();
    let min = steps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = steps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!((min - 0.0323).abs() < 5e-4, "min {min}");
    assert!((max - 0.0625).abs() < 1e-9, "max {max}");
}

#[test]
fn section4_window_wider_than_max_step_prevents_jumping() {
    // With the 15 % window and 6.25 % max step, a single regulation step
    // can never jump across the window: stepping from just below the low
    // threshold lands below the high threshold.
    let cfg = OscillatorConfig::datasheet_3mhz();
    let max_step = 0.0625;
    assert!(cfg.window_rel_width > max_step);
    let low = 1.0 - cfg.window_rel_width / 2.0;
    let high = 1.0 + cfg.window_rel_width / 2.0;
    assert!(low * (1.0 + max_step) < high, "step jumps the window");
}

#[test]
fn section4_por_preset_is_40_percent_of_max() {
    let ratio =
        multiplication_factor(Code::POR_PRESET) as f64 / multiplication_factor(Code::MAX) as f64;
    assert!((ratio - 0.40).abs() < 0.05, "ratio {ratio}");
}

#[test]
fn section5_dynamic_range_0_to_1984() {
    assert_eq!(multiplication_factor(Code::MIN), 0);
    assert_eq!(multiplication_factor(Code::MAX), 1984);
    // Fig 13: 1 LSB = 12.5 µA → full scale 24.8 mA.
    let die = MismatchedDac::ideal(12.5e-6);
    assert!((die.current(Code::MAX).value() - 24.8e-3).abs() < 1e-9);
}

#[test]
fn section9_frequency_band_2_to_5_mhz() {
    // The datasheet tank sits inside the paper's operating band.
    let f = OscillatorConfig::datasheet_3mhz().tank.f0().value();
    assert!((2e6..5e6).contains(&f), "f0 {f}");
}

#[test]
fn section9_non_monotonic_dac_is_harmless() {
    // The reference die is non-monotonic at code 96 (like the measured
    // chip), yet the regulation loop settles normally.
    let mut cfg = OscillatorConfig::datasheet_3mhz();
    cfg.dac = MismatchedDac::reference_die();
    cfg.nvm_code = cfg.recommended_nvm_code();
    let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
    let report = sim.run_until_settled().expect("infallible");
    assert!(report.settled);
    assert!(
        (report.final_vpp / 2.7 - 1.0).abs() < 0.15,
        "vpp {}",
        report.final_vpp
    );
}

#[test]
fn regulated_code_stays_above_16_on_supported_tanks() {
    // Paper §3: "the amplitude regulation code remains above code 16".
    for cfg in [
        OscillatorConfig::datasheet_3mhz(),
        OscillatorConfig::low_q(),
    ] {
        let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
        let report = sim.run_until_settled().expect("infallible");
        assert!(report.settled);
        assert!(report.final_code.value() > 16, "code {}", report.final_code);
    }
}
