//! Cross-substrate validation: the MNA circuit simulator and the behavioral
//! oscillator core are independent implementations — where they overlap
//! they must agree.

use lcosc::circuit::analysis::ac::{ac_sweep, logspace};
use lcosc::circuit::analysis::transient::{run_transient, Integrator, TransientOptions};
use lcosc::circuit::netlist::{Netlist, Waveform};
use lcosc::core::condition::OscillationCondition;
use lcosc::core::envelope::EnvelopeModel;
use lcosc::core::gm_driver::{DriverShape, GmDriver};
use lcosc::core::tank::LcTank;
use lcosc::num::units::{Farads, Henries, Ohms};

fn tank() -> LcTank {
    LcTank::new(
        Henries::from_micro(25.0),
        Farads::from_nano(2.0),
        Farads::from_nano(2.0),
        Ohms(15.0),
    )
    .expect("tank constants are valid")
}

/// Builds the paper's Fig 1 passive network as a netlist: C1 and C2 to
/// ground, L in series with Rs between the pins.
fn tank_netlist(
    t: &LcTank,
) -> (
    Netlist,
    lcosc::circuit::netlist::NodeId,
    lcosc::circuit::netlist::ElementId,
) {
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    // Drive LC1 differentially through a large resistor (current-source-ish)
    // so the tank's own impedance shapes the response.
    let drv = nl.node("drv");
    let src = nl.voltage_source(drv, Netlist::GROUND, Waveform::Dc(0.0));
    nl.resistor(drv, lc1, 100e3);
    nl.capacitor(lc1, Netlist::GROUND, t.c1().value());
    nl.capacitor(lc2, Netlist::GROUND, t.c2().value());
    nl.inductor(lc1, mid, t.l().value());
    nl.resistor(mid, lc2, t.rs().value());
    (nl, lc1, src)
}

#[test]
fn mna_ac_resonance_matches_analytic_f0() {
    let t = tank();
    let (nl, lc1, src) = tank_netlist(&t);
    let f0 = t.f0().value();
    let pts = ac_sweep(&nl, src, &logspace(f0 / 3.0, f0 * 3.0, 301)).expect("ac converges");
    let peak = pts
        .iter()
        .max_by(|a, b| a.voltage(lc1).abs().total_cmp(&b.voltage(lc1).abs()))
        .expect("non-empty");
    assert!(
        (peak.frequency / f0 - 1.0).abs() < 0.02,
        "mna peak {} vs analytic f0 {}",
        peak.frequency,
        f0
    );
}

#[test]
fn mna_ac_bandwidth_matches_analytic_q() {
    let t = tank();
    let (nl, lc1, src) = tank_netlist(&t);
    let f0 = t.f0().value();
    let pts = ac_sweep(&nl, src, &logspace(f0 * 0.5, f0 * 2.0, 2001)).expect("ac converges");
    let mags: Vec<(f64, f64)> = pts
        .iter()
        .map(|p| (p.frequency, p.voltage(lc1).abs()))
        .collect();
    let (f_peak, m_peak) = mags
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    // −3 dB points around the peak.
    let half = m_peak / std::f64::consts::SQRT_2;
    let lo = mags
        .iter()
        .filter(|(f, m)| *f < f_peak && *m >= half)
        .map(|(f, _)| *f)
        .fold(f64::INFINITY, f64::min);
    let hi = mags
        .iter()
        .filter(|(f, m)| *f > f_peak && *m >= half)
        .map(|(f, _)| *f)
        .fold(f64::NEG_INFINITY, f64::max);
    let q_measured = f_peak / (hi - lo);
    assert!(
        (q_measured / t.q() - 1.0).abs() < 0.1,
        "mna q {} vs analytic {}",
        q_measured,
        t.q()
    );
}

#[test]
fn mna_transient_ringdown_matches_q_envelope() {
    // Kick the passive tank in the MNA simulator and compare the ring-down
    // envelope decay with the analytic exp(−π f t / Q).
    let t = tank();
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, t.c1().value(), 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, t.c2().value(), -1.0);
    nl.inductor(lc1, mid, t.l().value());
    nl.resistor(mid, lc2, t.rs().value());
    let f0 = t.f0().value();
    let cycles = 30.0;
    let mut opts = TransientOptions::new(1.0 / (f0 * 200.0), cycles / f0);
    opts.integrator = Integrator::Trapezoidal;
    let res = run_transient(&nl, &opts).expect("transient converges");
    let v1 = res.voltage_trace(lc1);
    let v2 = res.voltage_trace(lc2);
    let vd: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a - b).collect();
    let peak_end = vd[vd.len() - vd.len() / 10..]
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()));
    // The peak of the decaying tail sits at the start of the window
    // (~90 % through the run): compare against the analytic envelope there.
    let expect = 2.0 * (-std::f64::consts::PI * (0.9 * cycles) / t.q()).exp();
    assert!(
        (peak_end / expect - 1.0).abs() < 0.25,
        "mna ringdown {} vs analytic {}",
        peak_end,
        expect
    );
}

#[test]
fn envelope_model_decay_matches_mna_transient_within_1_percent() {
    // Differential test: the behavioral envelope model and the MNA
    // transient integrator are independent implementations of the same
    // ring-down physics. With a dead driver (I_M = 0) the envelope model
    // predicts a pure exponential decay λ = −Gm₀/(2·C_avg); the MNA
    // simulator integrates the raw RLC equations. The amplitude decay over
    // 10 cycles must agree within 1 %.
    let t = tank();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 0.0);
    let lambda_env = EnvelopeModel::new(t, driver).lambda(1.0);
    assert!(lambda_env < 0.0, "dead driver must decay: {lambda_env}");

    // Kicked passive tank in the MNA simulator, trapezoidal rule (no
    // numerical damping on oscillatory modes at this step size).
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, t.c1().value(), 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, t.c2().value(), -1.0);
    let ind = nl.inductor(lc1, mid, t.l().value());
    nl.resistor(mid, lc2, t.rs().value());
    let f0 = t.f0().value();
    let mut opts = TransientOptions::new(1.0 / (f0 * 500.0), 14.0 / f0);
    opts.integrator = Integrator::Trapezoidal;
    let res = run_transient(&nl, &opts).expect("transient converges");

    // The instantaneous amplitude is ripple-free through the total stored
    // energy: a(t) ∝ √E(t) with E = ½C₁v₁² + ½C₂v₂² + ½L·i_L².
    let v1 = res.voltage_trace(lc1);
    let v2 = res.voltage_trace(lc2);
    let il = res.current_trace(ind);
    let energy = |k: usize| {
        0.5 * t.c1().value() * v1[k] * v1[k]
            + 0.5 * t.c2().value() * v2[k] * v2[k]
            + 0.5 * t.l().value() * il[k] * il[k]
    };
    // Fit λ over exactly 10 cycles, skipping the first 2 (start-up
    // transient of the discretized initial condition): least-squares slope
    // of ln a(t) = ½·ln E(t) averages out the 2·f₀ energy ripple.
    let times = res.times();
    let (t_a, t_b) = (2.0 / f0, 12.0 / f0);
    let pts: Vec<(f64, f64)> = times
        .iter()
        .enumerate()
        .filter(|(_, &tt)| (t_a..=t_b).contains(&tt))
        .map(|(k, &tt)| (tt, 0.5 * energy(k).ln()))
        .collect();
    let n = pts.len() as f64;
    let (sx, sy) = pts.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
    let (sxx, sxy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), p| (a + p.0 * p.0, b + p.0 * p.1));
    let lambda_mna = (n * sxy - sx * sy) / (n * sxx - sx * sx);

    // Decay *rates* agree…
    assert!(
        (lambda_mna / lambda_env - 1.0).abs() < 0.01,
        "mna λ {lambda_mna} vs envelope λ {lambda_env}"
    );
    // …so the amplitude decay factors over the 10 cycles do too.
    let decay_env = (lambda_env * 10.0 / f0).exp();
    let decay_mna = (lambda_mna * 10.0 / f0).exp();
    assert!(
        (decay_mna / decay_env - 1.0).abs() < 0.01,
        "mna decay {decay_mna} vs envelope {decay_env} over 10 cycles"
    );
}

#[test]
fn vccs_pair_in_mna_reproduces_negative_resistance_startup() {
    // Build the oscillator linearly in the MNA simulator: two cross-coupled
    // VCCS stages with gm above critical make the poles unstable — the
    // transient grows (linear model: no limiting).
    let t = tank();
    let gm_crit = OscillationCondition::new(t).critical_gm();
    let build = |gm: f64| {
        let mut nl = Netlist::new();
        let lc1 = nl.node("lc1");
        let lc2 = nl.node("lc2");
        let mid = nl.node("mid");
        nl.capacitor_ic(lc1, Netlist::GROUND, t.c1().value(), 1e-3);
        nl.capacitor_ic(lc2, Netlist::GROUND, t.c2().value(), -1e-3);
        nl.inductor(lc1, mid, t.l().value());
        nl.resistor(mid, lc2, t.rs().value());
        // Inverting cross-coupled stages: i(out) = −gm·v(other).
        nl.vccs(lc1, Netlist::GROUND, lc2, Netlist::GROUND, gm);
        nl.vccs(lc2, Netlist::GROUND, lc1, Netlist::GROUND, gm);
        let f0 = t.f0().value();
        let mut opts = TransientOptions::new(1.0 / (f0 * 200.0), 20.0 / f0);
        opts.integrator = Integrator::Trapezoidal;
        let res = run_transient(&nl, &opts).expect("transient converges");
        let v1 = res.voltage_trace(lc1);
        let v2 = res.voltage_trace(lc2);
        let vd: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a - b).collect();
        vd[vd.len() - 200..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
    };
    let growing = build(3.0 * gm_crit);
    let decaying = build(0.3 * gm_crit);
    assert!(
        growing > 20.0 * decaying,
        "supercritical {growing} vs subcritical {decaying}"
    );
    assert!(growing > 2e-3, "supercritical should grow: {growing}");
}
