//! The campaign engine's central contract, tested end-to-end: reduced
//! results are a pure function of `(campaign_seed, jobs)` — independent of
//! thread count, scheduling order and per-job runtime.

use lcosc::campaign::{job_seed, Campaign};
use lcosc::core::config::OscillatorConfig;
use lcosc::dac::{yield_analysis_campaign, DacMismatchParams};
use lcosc::safety::FmeaReport;
use proptest::prelude::*;
use std::time::Duration;

/// A job whose result depends on every bit of its seed: a few rounds of a
/// splitmix-style scramble feeding a float accumulation.
fn scrambled_sum(seed: u64) -> f64 {
    let mut x = seed;
    let mut acc = 0.0f64;
    for _ in 0..16 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) ^ 0xb549_7a3f;
        acc += (x >> 11) as f64 / (1u64 << 53) as f64;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any campaign seed: threads 1, 2 and 8 reduce to bit-identical
    /// output, even though the reduction (float sum + string concat) is
    /// non-commutative under reordering.
    #[test]
    fn reduction_is_thread_count_invariant(seed in 0u64..u64::MAX) {
        let jobs: Vec<u32> = (0..64).collect();
        let run = |threads: usize| {
            Campaign::new("prop", jobs.clone())
                .seed(seed)
                .threads(threads)
                .run_reduce(
                    |ctx, &job| (scrambled_sum(ctx.seed), format!("{job}:{:x};", ctx.seed)),
                    (0.0f64, String::new()),
                    |(sum, mut log), (x, entry)| {
                        log.push_str(&entry);
                        (sum + x, log)
                    },
                )
                .0
        };
        let serial = run(1);
        prop_assert_eq!(&run(2), &serial);
        prop_assert_eq!(&run(8), &serial);
    }

    /// Per-job seeds depend only on (campaign_seed, index): shuffling which
    /// *worker* claims a job cannot change what the job computes.
    #[test]
    fn job_seeds_are_schedule_free(seed in 0u64..u64::MAX, index in 0u64..10_000) {
        prop_assert_eq!(job_seed(seed, index), job_seed(seed, index));
        prop_assert_ne!(job_seed(seed, index), job_seed(seed.wrapping_add(1), index));
    }
}

/// Jobs that deliberately finish out of index order (early indices sleep
/// longest) still reduce in index order.
#[test]
fn scheduling_order_does_not_leak_into_results() {
    let jobs: Vec<usize> = (0..24).collect();
    let run = |threads: usize| {
        Campaign::new("scramble", jobs.clone())
            .seed(7)
            .threads(threads)
            .run(|ctx, &job| {
                // Invert completion order vs index order under parallelism.
                std::thread::sleep(Duration::from_micros(((24 - job) * 200) as u64));
                (job, ctx.seed)
            })
            .results
    };
    let serial = run(1);
    assert_eq!(run(4), serial);
    assert_eq!(run(8), serial);
    // Results arrive in index order regardless of completion order.
    for (i, (job, _)) in serial.iter().enumerate() {
        assert_eq!(*job, i);
    }
}

/// The acceptance criterion verbatim: FMEA and yield campaigns produce
/// byte-identical JSON for `--threads 1` and `--threads 8`.
#[test]
fn fmea_and_yield_json_byte_identical_threads_1_vs_8() {
    let cfg = OscillatorConfig::fast_test();
    let fmea1 = FmeaReport::run_with_threads(&cfg, 1).expect("valid config");
    let fmea8 = FmeaReport::run_with_threads(&cfg, 8).expect("valid config");
    assert_eq!(
        fmea1.report.to_json().render(),
        fmea8.report.to_json().render()
    );

    let params = DacMismatchParams::default();
    let y1 = yield_analysis_campaign(&params, 150, 42, 0.15, 1);
    let y8 = yield_analysis_campaign(&params, 150, 42, 0.15, 8);
    assert_eq!(y1.report.to_json().render(), y8.report.to_json().render());
}
