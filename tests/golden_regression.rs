//! Golden-file regression harness: key reports are rendered to byte-stable
//! JSON and compared against fixtures under `tests/golden/`. Regenerate a
//! fixture after an intentional model change with
//!
//! ```text
//! LCOSC_BLESS=1 cargo test -q --test golden_regression
//! ```
//!
//! and review the fixture diff like any other code change. Byte stability
//! comes from the [`lcosc::campaign::Json`] renderer: ordered keys and
//! shortest-roundtrip float formatting, so any byte difference is a real
//! behavioural difference.

use lcosc::campaign::Json;
use lcosc::circuit::{run_transient, Netlist, TransientOptions};
use lcosc::core::config::OscillatorConfig;
use lcosc::dac::{multiplication_factor, relative_step, Code, DacMismatchParams};
use lcosc::safety::FmeaReport;
use std::path::PathBuf;

/// Compares `rendered` against `tests/golden/<name>`, or rewrites the
/// fixture when `LCOSC_BLESS=1` is set.
fn golden(name: &str, rendered: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("LCOSC_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {}: {e}\n(regenerate with LCOSC_BLESS=1 cargo test --test golden_regression)",
            path.display()
        )
    });
    if expected != rendered {
        // Point at the first differing line to keep the failure readable.
        let diff_line = expected
            .lines()
            .zip(rendered.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(rendered.lines().count()));
        panic!(
            "golden mismatch for {name} at line {}:\n  expected: {}\n  actual:   {}\n\
             (regenerate with LCOSC_BLESS=1 if the change is intentional)",
            diff_line + 1,
            expected.lines().nth(diff_line).unwrap_or("<eof>"),
            rendered.lines().nth(diff_line).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn fmea_fast_test_matrix_is_stable() {
    let report =
        FmeaReport::run(&OscillatorConfig::fast_test()).expect("fast_test preset is valid");
    golden("fmea_fast_test.json", &report.to_json().render_pretty(2));
}

#[test]
fn yield_analysis_summary_is_stable() {
    // Same campaign the repro binary tracks: 200 dies, seed 1, ±15 % window.
    let run = lcosc::dac::yield_analysis_campaign(&DacMismatchParams::default(), 200, 1, 0.15, 1);
    golden("yield_default.json", &run.report.to_json().render_pretty(2));
}

#[test]
fn tank_ring_down_waveform_is_stable() {
    // Cycle-fidelity fixture for the paper's series tank (L = 25 µH,
    // C1 = C2 = 2 nF, Rs = 15 Ω, f0 ≈ 1.007 MHz): ten ring-down cycles at
    // 64 points/cycle, sampled every 8th step. The waveform is pinned
    // bit-for-bit, so it holds under both `SolverPath`s (which are
    // required to be bit-identical) and trips on any arithmetic change
    // in stamping, integration, or the linear solver.
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, 2e-9, 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    nl.inductor(lc1, mid, 25e-6);
    nl.resistor(mid, lc2, 15.0);

    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (25e-6_f64 * 1e-9).sqrt());
    let mut opts = TransientOptions::new(1.0 / (f0 * 64.0), 10.0 / f0);
    opts.record_stride = 8;
    let res = run_transient(&nl, &opts).expect("ring-down converges");

    let vdiff: Vec<Json> = (0..res.len())
        .map(|k| {
            let v = res.voltages_at(k);
            Json::from(v[lc1.index() - 1] - v[lc2.index() - 1])
        })
        .collect();
    let times: Vec<Json> = res.times().iter().map(|&t| Json::from(t)).collect();
    golden(
        "tank_ring_down.json",
        &Json::obj([
            ("f0_hz", Json::from(f0)),
            ("samples", Json::from(res.len())),
            ("times", Json::Array(times)),
            ("vdiff", Json::Array(vdiff)),
        ])
        .render_pretty(2),
    );
}

#[test]
fn dac_transfer_staircase_is_stable() {
    // Fig 3/Fig 4 + Table 1: the full 128-code staircase with relative
    // steps (null where the step is undefined).
    let rows: Vec<Json> = Code::all()
        .map(|c| {
            Json::obj([
                ("code", Json::from(c.value())),
                ("units", Json::from(multiplication_factor(c))),
                ("relative_step", Json::from(relative_step(c))),
            ])
        })
        .collect();
    golden(
        "dac_transfer.json",
        &Json::obj([("codes", Json::Array(rows))]).render_pretty(2),
    );
}

/// The prover fixtures hold exactly what `lcosc-check --json --prove
/// config <preset>` prints (compact JSON plus trailing newline), so the
/// CI smoke job can `cmp` the CLI output against them directly.
#[test]
fn prover_verdicts_are_stable_for_every_preset() {
    for (name, cfg) in [
        ("prove_fast_test.json", OscillatorConfig::fast_test()),
        (
            "prove_datasheet_3mhz.json",
            OscillatorConfig::datasheet_3mhz(),
        ),
        ("prove_low_q.json", OscillatorConfig::low_q()),
    ] {
        let outcome = lcosc::proving::prove_config(&cfg);
        assert!(outcome.proved(), "{name}:\n{}", outcome.render_human());
        golden(name, &format!("{}\n", outcome.render_json()));
    }
}

/// Mirrors `lcosc-check --json prove-faults fast_test`: the 11-fault
/// fitment proof document, byte-compared.
#[test]
fn fault_fitment_proofs_are_stable() {
    let proofs = lcosc::proving::prove_fault_responses(&OscillatorConfig::fast_test());
    let doc = lcosc::proving::fault_responses_to_json("fast_test", &proofs);
    golden(
        "prove_faults_fast_test.json",
        &format!("{}\n", doc.render()),
    );
}

/// A seeded failing configuration: the pre-quirk-fix regulation FSM
/// cleared the saturation latches on an in-window hold, which silently
/// disarms the low-amplitude detector. The prover refutes A007 and
/// renders the offending tick sequence as an `lcosc-trace` event stream.
#[test]
fn legacy_hold_quirk_is_refuted_with_a_counterexample_trace() {
    let mut facts = OscillatorConfig::fast_test().prove_facts();
    facts.legacy_hold_clears_saturation = true;
    let outcome = lcosc::check::prove(&facts);
    assert!(!outcome.proved());
    assert!(
        outcome.report.contains("A007"),
        "{}",
        outcome.render_human()
    );
    let cex = outcome
        .counterexamples
        .iter()
        .find(|c| c.obligation == "A007")
        .expect("A007 carries a counterexample");
    assert!(!cex.events.is_empty());
    // The counterexample is a valid trace stream: every event renders to
    // one parseable JSONL line.
    for ev in &cex.events {
        let line = ev.to_jsonl();
        Json::parse(line.trim_end()).expect("counterexample event is valid JSON");
    }
    golden(
        "prove_refuted_legacy_hold.json",
        &format!("{}\n", outcome.render_json()),
    );
}

/// Pins the batch scheduler's structural-digest grouping: a mixed deck
/// set (five tank value-variants interleaved with two RC ladders and one
/// switch deck) must always produce the same ordered `BatchPlan` — same
/// unit boundaries, same hex group keys, same solo/batched split. Any
/// change to the digest, the grouping policy, or the odd-lot fallback
/// shows up as a fixture diff.
#[test]
fn batch_grouping_of_mixed_decks_is_stable() {
    use lcosc::campaign::CampaignBatch;

    fn tank(scale: f64) -> Netlist {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        nl.capacitor_ic(top, Netlist::GROUND, 2e-9 * scale, 1.0);
        nl.inductor(top, Netlist::GROUND, 25e-6 * scale);
        nl.resistor(top, Netlist::GROUND, 5.0e3);
        nl
    }
    fn ladder(ohms: f64) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, ohms);
        nl.capacitor_ic(b, Netlist::GROUND, 1e-9, 0.0);
        nl.voltage_source(a, Netlist::GROUND, lcosc::circuit::Waveform::Dc(1.0));
        nl
    }
    fn switch_deck() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor(a, Netlist::GROUND, 100.0);
        nl.switch(a, Netlist::GROUND, true);
        nl
    }

    // Interleaved on purpose: grouping must be by digest, not adjacency.
    let decks = vec![
        tank(1.00),
        ladder(50.0),
        tank(1.05),
        switch_deck(),
        tank(1.10),
        ladder(75.0),
        tank(1.15),
        tank(1.20),
    ];
    let plan = CampaignBatch::new("grouping", decks)
        .max_width(4)
        .min_batch(2)
        .plan(Netlist::structural_digest);
    golden("batch_grouping.json", &plan.to_json().render_pretty(2));
}

/// Pins the satellite render-order contract: diagnostics render sorted
/// by (code, location) regardless of emission order.
#[test]
fn report_rendering_orders_by_code_and_location() {
    use lcosc::check::{Provenance, Report};
    let mut report = Report::new();
    // Emit deliberately out of order.
    report.warning(
        "S001",
        "window vs step (emitted first)".to_string(),
        Some(Provenance::Field("window_rel_width")),
    );
    report.error(
        "A001",
        "abstract step exceeds window".to_string(),
        Some(Provenance::Field("window_rel_width")),
    );
    report.error(
        "C001",
        "bad supply rail".to_string(),
        Some(Provenance::Field("vdd")),
    );
    golden("report_render_order.json", &report.render_json());
    let human = report.render_human();
    let a = human.find("A001").expect("A001 rendered");
    let c = human.find("C001").expect("C001 rendered");
    let s = human.find("S001").expect("S001 rendered");
    assert!(a < c && c < s, "{human}");
}
