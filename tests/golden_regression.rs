//! Golden-file regression harness: key reports are rendered to byte-stable
//! JSON and compared against fixtures under `tests/golden/`. Regenerate a
//! fixture after an intentional model change with
//!
//! ```text
//! LCOSC_BLESS=1 cargo test -q --test golden_regression
//! ```
//!
//! and review the fixture diff like any other code change. Byte stability
//! comes from the [`lcosc::campaign::Json`] renderer: ordered keys and
//! shortest-roundtrip float formatting, so any byte difference is a real
//! behavioural difference.

use lcosc::campaign::Json;
use lcosc::core::config::OscillatorConfig;
use lcosc::dac::{multiplication_factor, relative_step, Code, DacMismatchParams};
use lcosc::safety::FmeaReport;
use std::path::PathBuf;

/// Compares `rendered` against `tests/golden/<name>`, or rewrites the
/// fixture when `LCOSC_BLESS=1` is set.
fn golden(name: &str, rendered: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("LCOSC_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {}: {e}\n(regenerate with LCOSC_BLESS=1 cargo test --test golden_regression)",
            path.display()
        )
    });
    if expected != rendered {
        // Point at the first differing line to keep the failure readable.
        let diff_line = expected
            .lines()
            .zip(rendered.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(rendered.lines().count()));
        panic!(
            "golden mismatch for {name} at line {}:\n  expected: {}\n  actual:   {}\n\
             (regenerate with LCOSC_BLESS=1 if the change is intentional)",
            diff_line + 1,
            expected.lines().nth(diff_line).unwrap_or("<eof>"),
            rendered.lines().nth(diff_line).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn fmea_fast_test_matrix_is_stable() {
    let report =
        FmeaReport::run(&OscillatorConfig::fast_test()).expect("fast_test preset is valid");
    golden("fmea_fast_test.json", &report.to_json().render_pretty(2));
}

#[test]
fn yield_analysis_summary_is_stable() {
    // Same campaign the repro binary tracks: 200 dies, seed 1, ±15 % window.
    let run = lcosc::dac::yield_analysis_campaign(&DacMismatchParams::default(), 200, 1, 0.15, 1);
    golden("yield_default.json", &run.report.to_json().render_pretty(2));
}

#[test]
fn dac_transfer_staircase_is_stable() {
    // Fig 3/Fig 4 + Table 1: the full 128-code staircase with relative
    // steps (null where the step is undefined).
    let rows: Vec<Json> = Code::all()
        .map(|c| {
            Json::obj([
                ("code", Json::from(c.value())),
                ("units", Json::from(multiplication_factor(c))),
                ("relative_step", Json::from(relative_step(c))),
            ])
        })
        .collect();
    golden(
        "dac_transfer.json",
        &Json::obj([("codes", Json::Array(rows))]).render_pretty(2),
    );
}
