//! End-to-end safety stories: fault → on-chip detection → safe-state
//! reaction → sensor-level consequence, across four crates.

use lcosc::core::config::OscillatorConfig;
use lcosc::core::sim::ClosedLoopSim;
use lcosc::dac::Code;
use lcosc::safety::{
    run_scenario, DetectorKind, Fault, FmeaReport, SafeStateController, SystemOutputs,
};
use lcosc::sensor::{PositionSensor, RotorCoupling};

#[test]
fn open_coil_story_ends_in_safe_state() {
    // 1. The oscillator regulates normally.
    let cfg = OscillatorConfig::fast_test();
    let mut sim = ClosedLoopSim::new(cfg.clone()).expect("valid config");
    let healthy = sim.run_until_settled().expect("infallible");
    assert!(healthy.settled);

    // 2. The coil connection breaks; detectors fire.
    let result = run_scenario(Fault::OpenCoil, &cfg).expect("scenario runs");
    assert!(result.detected);

    // 3. The controller latches the safe state and forces maximum current
    //    (paper §9's reaction).
    let mut ctl = SafeStateController::new();
    let outputs = ctl.react(&result.triggered, &mut sim);
    assert_eq!(outputs, SystemOutputs::safe());
    assert_eq!(sim.code(), Code::MAX);
    assert!(!outputs.position_valid);

    // 4. The latch survives even if the detectors momentarily clear.
    let outputs = ctl.react(&[], &mut sim);
    assert_eq!(outputs, SystemOutputs::safe());
}

#[test]
fn every_detected_fault_forces_safe_outputs() {
    let cfg = OscillatorConfig::fast_test();
    let report = FmeaReport::run(&cfg).expect("fmea runs");
    for entry in report.entries() {
        if !entry.result.detected {
            continue;
        }
        let mut sim = ClosedLoopSim::new(cfg.clone()).expect("valid config");
        let mut ctl = SafeStateController::new();
        let outputs = ctl.react(&entry.result.triggered, &mut sim);
        assert_eq!(
            outputs,
            SystemOutputs::safe(),
            "fault {} must end safe",
            entry.result.fault
        );
        assert_eq!(sim.code(), Code::MAX, "fault {}", entry.result.fault);
    }
}

#[test]
fn excitation_fault_invalidates_position_at_the_sensor_level() {
    // The sensor's validity gate depends on the demodulated magnitude,
    // which scales with the excitation amplitude: a collapsed excitation
    // (any hard oscillator fault) makes every measurement invalid.
    let mut sensor = PositionSensor::new(OscillatorConfig::fast_test(), RotorCoupling::typical())
        .expect("sensor builds");
    let good = sensor.measure(0.7, 300);
    assert!(good.valid);

    // Simulate the excitation dying: the receiving coils see (almost)
    // nothing; the magnitude gate rejects the decode.
    let mut dead = PositionSensor::new(OscillatorConfig::fast_test(), RotorCoupling::typical())
        .expect("sensor builds");
    dead.inject_open_coil(0);
    dead.inject_open_coil(1);
    let m = dead.measure(0.7, 300);
    assert!(!m.valid, "{m:?}");
    assert!(m.position.magnitude < 0.05 * good.position.magnitude);
}

#[test]
fn asymmetry_detector_is_the_only_path_for_cap_faults() {
    // Missing capacitors keep the amplitude regulated (the loop compensates)
    // — without the asymmetry detector they would be invisible. Verify the
    // detector matrix shows asymmetry as the *only* trigger for them.
    let report = FmeaReport::run(&OscillatorConfig::fast_test()).expect("fmea runs");
    for entry in report.entries() {
        if let Fault::MissingCapacitor { .. } = entry.result.fault {
            assert_eq!(
                entry.result.triggered,
                vec![DetectorKind::Asymmetry],
                "fault {}",
                entry.result.fault
            );
        }
    }
}

#[test]
fn reference_die_chip_passes_the_full_fmea() {
    // The paper's actual chip (non-monotonic DAC at code 96) must pass the
    // same sign-off as an ideal die.
    let mut cfg = OscillatorConfig::fast_test();
    cfg.dac = lcosc::dac::MismatchedDac::reference_die();
    cfg.nvm_code = cfg.recommended_nvm_code();
    let report = FmeaReport::run(&cfg).expect("fmea runs");
    assert!(report.unsafe_entries().is_empty());
    assert_eq!(report.detection_coverage(), 1.0);
}
