//! The failure-mode-and-effects matrix (paper §7: "Deep failure mode effect
//! analysis (FMEA) on design and system levels ... for every external error
//! condition the application must remain safe").

use crate::detectors::DetectorKind;
use crate::fault::Fault;
use crate::scenario::{run_scenario_mission, ScenarioResult, SCENARIO_POST_FAULT_TICKS};
use lcosc_campaign::{CampaignBatch, CampaignStats, Json};
use lcosc_core::config::{Fidelity, OscillatorConfig};
use lcosc_core::Result;

/// One row of the FMEA matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FmeaEntry {
    /// Scenario outcome (fault, triggered detectors, amplitudes).
    pub result: ScenarioResult,
    /// Whether the system remains safe (detected, or regulation fully
    /// compensates).
    pub safe: bool,
}

/// The complete fault × detector matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FmeaReport {
    entries: Vec<FmeaEntry>,
}

/// An FMEA matrix paired with the execution statistics of the campaign
/// that produced it. The report itself is deterministic; only
/// [`CampaignStats::wall`] depends on the machine and thread count.
#[derive(Debug, Clone)]
pub struct FmeaRun {
    /// The (thread-count-invariant) fault × detector matrix.
    pub report: FmeaReport,
    /// Wall-clock / job-count statistics of the campaign run.
    pub stats: CampaignStats,
}

impl FmeaReport {
    /// Runs every cataloged fault against the base configuration, serially
    /// (equivalent to [`FmeaReport::run_with_threads`] with 1 thread).
    ///
    /// # Errors
    ///
    /// Propagates simulation setup errors.
    pub fn run(base: &OscillatorConfig) -> Result<Self> {
        Self::run_with_threads(base, 1).map(|run| run.report)
    }

    /// [`FmeaReport::run`] with the analysis fidelity pinned explicitly
    /// instead of the multi-rate scenario default. The paper's sign-off
    /// table is a describing-function result — [`Fidelity::Envelope`]
    /// reproduces it — while [`Fidelity::Cycle`] / [`Fidelity::MultiRate`]
    /// report cycle-truth verdicts, which differ on some operating points
    /// (see `DESIGN.md` §14). The `LCOSC_FIDELITY` env hatch still
    /// overrides whatever is passed here.
    ///
    /// # Errors
    ///
    /// Propagates simulation setup errors.
    pub fn run_at(base: &OscillatorConfig, fidelity: Fidelity) -> Result<Self> {
        Self::run_campaign(base, 1, &lcosc_trace::Trace::off(), fidelity).map(|run| run.report)
    }

    /// Runs the full fault catalog as a parallel campaign on `threads`
    /// worker threads (`1` = serial in-line execution, `0` = all cores).
    ///
    /// Each fault scenario is one independent job; the assembled matrix is
    /// bit-identical for every thread count because the campaign engine
    /// collects results in catalog order.
    ///
    /// # Errors
    ///
    /// Propagates the simulation setup error of the lowest-indexed failing
    /// scenario.
    pub fn run_with_threads(base: &OscillatorConfig, threads: usize) -> Result<FmeaRun> {
        Self::run_with_threads_traced(base, threads, &lcosc_trace::Trace::off())
    }

    /// [`FmeaReport::run_with_threads`] with campaign-level observability:
    /// the engine emits one `CampaignJob` (golden) and one
    /// `CampaignJobTiming` (machine-dependent) event per fault scenario,
    /// always in catalog order from the coordinator thread.
    ///
    /// The per-tick simulation streams of the worker scenarios are *not*
    /// attached to `tracer` here: workers run concurrently, and their
    /// interleaved events would break the golden stream's thread-count
    /// invariance. Use [`crate::scenario::run_scenario_with_trace`]
    /// serially for full per-scenario detail.
    ///
    /// # Errors
    ///
    /// Propagates the simulation setup error of the lowest-indexed failing
    /// scenario.
    pub fn run_with_threads_traced(
        base: &OscillatorConfig,
        threads: usize,
        tracer: &lcosc_trace::Trace,
    ) -> Result<FmeaRun> {
        Self::run_campaign(base, threads, tracer, Fidelity::MultiRate)
    }

    /// The campaign body shared by every entry point: `fidelity` selects
    /// the analysis level each fault scenario runs at.
    fn run_campaign(
        base: &OscillatorConfig,
        threads: usize,
        tracer: &lcosc_trace::Trace,
        fidelity: Fidelity,
    ) -> Result<FmeaRun> {
        // One precheck for the whole matrix: every fault scenario shares
        // `base`, so this is equivalent to the per-scenario check the
        // serial `run_scenario` path performs.
        let report = crate::scenario::check_scenario(base);
        if report.has_errors() {
            return Err(lcosc_core::CoreError::CheckFailed(report));
        }
        // Scheduled through the batched campaign layer with a uniform
        // group key: every fault scenario shares the catalog's structure,
        // so the whole matrix forms one batch (chunked at the width cap).
        // Workers still score one scenario per job, so the matrix and the
        // golden `CampaignJob` stream are byte-identical to the per-job
        // engine for every thread count and unit width.
        let outcome = CampaignBatch::new("fmea", Fault::catalog())
            .threads(threads)
            .trace(tracer.clone())
            .try_run(
                |_| 0,
                |_ctxs, faults| {
                    faults
                        .iter()
                        .map(|&&fault| {
                            run_scenario_mission(
                                fault,
                                base,
                                &lcosc_trace::Trace::off(),
                                fidelity,
                                SCENARIO_POST_FAULT_TICKS,
                            )
                            .map(|result| FmeaEntry {
                                safe: result.is_safe(),
                                result,
                            })
                        })
                        .collect()
                },
            )?;
        Ok(FmeaRun {
            report: FmeaReport {
                entries: outcome.results,
            },
            stats: outcome.stats,
        })
    }

    /// All rows.
    pub fn entries(&self) -> &[FmeaEntry] {
        &self.entries
    }

    /// Fraction of faults that leave the system safe.
    pub fn safety_coverage(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        self.entries.iter().filter(|e| e.safe).count() as f64 / self.entries.len() as f64
    }

    /// Fraction of *hard* faults (those that break regulation) that are
    /// detected by at least one on-chip detector.
    pub fn detection_coverage(&self) -> f64 {
        let hard: Vec<&FmeaEntry> = self
            .entries
            .iter()
            .filter(|e| {
                (e.result.final_vpp / e.result.vpp_before - 1.0).abs() >= 0.2
                    || e.result.code_saturated
            })
            .collect();
        if hard.is_empty() {
            return 1.0;
        }
        hard.iter().filter(|e| e.result.detected).count() as f64 / hard.len() as f64
    }

    /// Rows where the system is unsafe (must be empty for sign-off).
    pub fn unsafe_entries(&self) -> Vec<&FmeaEntry> {
        self.entries.iter().filter(|e| !e.safe).collect()
    }

    /// Faults detected by a particular detector.
    pub fn detected_by(&self, kind: DetectorKind) -> Vec<Fault> {
        self.entries
            .iter()
            .filter(|e| e.result.triggered.contains(&kind))
            .map(|e| e.result.fault)
            .collect()
    }

    /// Serializes the matrix as an ordered [`Json`] tree with byte-stable
    /// float formatting — the payload of the golden-file regression tests
    /// and of the `repro` campaign report.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("fault", Json::from(e.result.fault.to_string())),
                    (
                        "detectors",
                        Json::Array(
                            e.result
                                .triggered
                                .iter()
                                .map(|k| Json::from(k.to_string()))
                                .collect(),
                        ),
                    ),
                    ("detected", Json::from(e.result.detected)),
                    ("code_saturated", Json::from(e.result.code_saturated)),
                    ("vpp_before", Json::from(e.result.vpp_before)),
                    ("final_vpp", Json::from(e.result.final_vpp)),
                    ("safe", Json::from(e.safe)),
                ])
            })
            .collect();
        Json::obj([
            ("faults", Json::from(self.entries.len())),
            ("safety_coverage", Json::from(self.safety_coverage())),
            ("detection_coverage", Json::from(self.detection_coverage())),
            ("entries", Json::Array(rows)),
        ])
    }
}

impl std::fmt::Display for FmeaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<28} {:>9} {:>9} {:>10}  detectors",
            "fault", "vpp", "saturated", "safe"
        )?;
        for e in &self.entries {
            let detectors: Vec<String> =
                e.result.triggered.iter().map(ToString::to_string).collect();
            writeln!(
                f,
                "{:<28} {:>8.3}V {:>9} {:>10}  {}",
                e.result.fault.to_string(),
                e.result.final_vpp,
                if e.result.code_saturated { "yes" } else { "no" },
                if e.safe { "SAFE" } else { "UNSAFE" },
                if detectors.is_empty() {
                    "-".to_string()
                } else {
                    detectors.join(", ")
                }
            )?;
        }
        writeln!(
            f,
            "safety coverage {:.0}%, hard-fault detection {:.0}%",
            100.0 * self.safety_coverage(),
            100.0 * self.detection_coverage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FmeaReport {
        FmeaReport::run(&OscillatorConfig::fast_test()).unwrap()
    }

    #[test]
    fn full_safety_coverage() {
        // The paper's headline safety claim: every external error condition
        // leaves the application safe.
        let r = report();
        assert!(
            r.unsafe_entries().is_empty(),
            "unsafe faults: {:?}",
            r.unsafe_entries()
                .iter()
                .map(|e| e.result.fault.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(r.safety_coverage(), 1.0);
    }

    #[test]
    fn all_hard_faults_are_detected() {
        let r = report();
        assert_eq!(
            r.detection_coverage(),
            1.0,
            "undetected hard faults exist:\n{r}"
        );
    }

    #[test]
    fn every_detector_earns_its_keep() {
        // Each of the three detectors must be the one catching *something*
        // (otherwise the paper would not have built it).
        let r = report();
        for kind in [
            DetectorKind::MissingOscillation,
            DetectorKind::LowAmplitude,
            DetectorKind::Asymmetry,
        ] {
            assert!(
                !r.detected_by(kind).is_empty(),
                "{kind} detector never fires"
            );
        }
    }

    #[test]
    fn report_covers_full_catalog() {
        let r = report();
        assert_eq!(r.entries().len(), Fault::catalog().len());
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let base = OscillatorConfig::fast_test();
        let serial = FmeaReport::run(&base).unwrap();
        for threads in [2, 8] {
            let par = FmeaReport::run_with_threads(&base, threads).unwrap();
            assert_eq!(par.report, serial, "threads = {threads}");
            assert_eq!(par.stats.jobs, Fault::catalog().len());
            // JSON payloads must be byte-identical, not just structurally
            // equal — the golden regression layer compares bytes.
            assert_eq!(
                par.report.to_json().render(),
                serial.to_json().render(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn json_has_summary_and_all_rows() {
        let j = report().to_json().render();
        assert!(j.contains("\"safety_coverage\":1.0"), "{j}");
        assert!(j.contains("open coil connection"));
        assert_eq!(j.matches("\"fault\":").count(), Fault::catalog().len());
    }

    #[test]
    fn display_renders_table() {
        let s = report().to_string();
        assert!(s.contains("open coil connection"));
        assert!(s.contains("safety coverage 100%"));
        assert!(s.lines().count() >= Fault::catalog().len() + 2);
    }
}
