//! The safe-state reaction (paper §9: "If low amplitude or missing
//! oscillations are detected, the oscillator driver is set to maximum
//! output current and outputs of the complete system are set to safe
//! values").

use crate::detectors::DetectorKind;
use crate::scenario::detector_id;
use lcosc_core::sim::ClosedLoopSim;
use lcosc_dac::Code;
use lcosc_trace::{Trace, TraceEvent};

/// System-level outputs after the reaction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemOutputs {
    /// Whether the system is in its safe mode (position output replaced by
    /// the safe value).
    pub safe_mode: bool,
    /// Whether the position measurement is valid.
    pub position_valid: bool,
}

impl SystemOutputs {
    /// Normal operation.
    pub fn normal() -> Self {
        SystemOutputs {
            safe_mode: false,
            position_valid: true,
        }
    }

    /// Safe mode: position invalid, outputs at the safe value.
    pub fn safe() -> Self {
        SystemOutputs {
            safe_mode: true,
            position_valid: false,
        }
    }
}

/// Latching safe-state controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SafeStateController {
    latched: Option<DetectorKind>,
}

impl SafeStateController {
    /// Creates a controller in normal mode.
    pub fn new() -> Self {
        SafeStateController::default()
    }

    /// The first detector that latched the safe state, if any.
    pub fn latched(&self) -> Option<DetectorKind> {
        self.latched
    }

    /// Applies the reaction policy: on any detection, force the driver to
    /// maximum output current (a last-ditch attempt to keep/restart the
    /// oscillation for diagnosis) and put the outputs in safe mode. The
    /// state latches until [`SafeStateController::reset`].
    pub fn react(&mut self, triggered: &[DetectorKind], sim: &mut ClosedLoopSim) -> SystemOutputs {
        self.react_traced(triggered, sim, &Trace::off())
    }

    /// [`SafeStateController::react`] with observability: the tick the
    /// latch closes emits one [`TraceEvent::SafeStateEntry`] naming the
    /// winning detector. Repeated calls while latched emit nothing — the
    /// event marks the entry edge, mirroring the latch semantics.
    pub fn react_traced(
        &mut self,
        triggered: &[DetectorKind],
        sim: &mut ClosedLoopSim,
        tracer: &Trace,
    ) -> SystemOutputs {
        if self.latched.is_none() {
            if let Some(&first) = triggered.first() {
                self.latched = Some(first);
                sim.force_code(Code::MAX);
                let tick = sim.ticks();
                tracer.emit(|| TraceEvent::SafeStateEntry {
                    tick,
                    detector: detector_id(first),
                });
            }
        }
        if self.latched.is_some() {
            SystemOutputs::safe()
        } else {
            SystemOutputs::normal()
        }
    }

    /// Clears the latch (power cycle / diagnostic reset).
    pub fn reset(&mut self) {
        self.latched = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_core::config::OscillatorConfig;

    fn sim() -> ClosedLoopSim {
        ClosedLoopSim::new(OscillatorConfig::fast_test()).unwrap()
    }

    #[test]
    fn no_detection_keeps_normal_outputs() {
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        let out = ctl.react(&[], &mut s);
        assert_eq!(out, SystemOutputs::normal());
        assert!(ctl.latched().is_none());
    }

    #[test]
    fn detection_forces_max_code_and_safe_outputs() {
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        s.run_until_settled().unwrap();
        assert_ne!(s.code(), Code::MAX);
        let out = ctl.react(&[DetectorKind::LowAmplitude], &mut s);
        assert_eq!(out, SystemOutputs::safe());
        assert_eq!(s.code(), Code::MAX);
        assert_eq!(ctl.latched(), Some(DetectorKind::LowAmplitude));
    }

    #[test]
    fn latch_holds_after_trigger_clears() {
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        ctl.react(&[DetectorKind::MissingOscillation], &mut s);
        let out = ctl.react(&[], &mut s);
        assert_eq!(out, SystemOutputs::safe(), "safe state must latch");
    }

    #[test]
    fn first_detector_wins_the_latch() {
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        ctl.react(
            &[DetectorKind::Asymmetry, DetectorKind::LowAmplitude],
            &mut s,
        );
        assert_eq!(ctl.latched(), Some(DetectorKind::Asymmetry));
        ctl.react(&[DetectorKind::MissingOscillation], &mut s);
        assert_eq!(ctl.latched(), Some(DetectorKind::Asymmetry));
    }

    #[test]
    fn traced_reaction_emits_entry_edge_once() {
        use lcosc_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tracer = Trace::new(sink.clone());
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        ctl.react_traced(&[DetectorKind::LowAmplitude], &mut s, &tracer);
        ctl.react_traced(&[DetectorKind::LowAmplitude], &mut s, &tracer);
        ctl.react_traced(&[], &mut s, &tracer);
        let entries: Vec<_> = sink
            .snapshot()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::SafeStateEntry { .. }))
            .collect();
        assert_eq!(entries.len(), 1, "entry edge, not level: {entries:?}");
        assert!(matches!(
            entries[0],
            TraceEvent::SafeStateEntry {
                detector: lcosc_trace::DetectorId::LowAmplitude,
                ..
            }
        ));
    }

    #[test]
    fn reset_returns_to_normal() {
        let mut ctl = SafeStateController::new();
        let mut s = sim();
        ctl.react(&[DetectorKind::LowAmplitude], &mut s);
        ctl.reset();
        let out = ctl.react(&[], &mut s);
        assert_eq!(out, SystemOutputs::normal());
    }
}
