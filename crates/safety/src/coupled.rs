//! Cycle-accurate coupled dual-oscillator model (paper §8, Fig 9).
//!
//! The envelope-level [`crate::dual::DualSystem`] reflects the dead
//! partner's load through a secant conductance; this module is the
//! waveform-level ground truth: two complete tanks with mutual inductance
//! `M = k·√(La·Lb)`, each with its own cross-coupled limited driver, and a
//! piecewise pin load standing in for the dead chip's pad behavior.
//!
//! States: `[v1a, v2a, iLa, v1b, v2b, iLb]`. The coupled coil equations
//!
//! ```text
//! [La M; M Lb] · [diLa/dt; diLb/dt] = [vda − Rsa·iLa; vdb − Rsb·iLb]
//! ```
//!
//! are solved in closed form each evaluation.

use lcosc_core::gm_driver::GmDriver;
use lcosc_core::oscillator::OscillatorState;
use lcosc_core::tank::LcTank;
use lcosc_num::ode::{rk4_step, OdeSystem};

/// Pin load presented by an unsupplied partner chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnsuppliedLoad {
    /// Fig 11 pad: no conduction inside the operating range.
    Isolated,
    /// Fig 10a pad: junction/channel clamp conducting `g` siemens beyond
    /// `v_knee` volts from ground in either direction.
    DiodeClamp {
        /// Knee voltage, volts.
        v_knee: f64,
        /// Conductance beyond the knee, siemens.
        g: f64,
    },
}

impl UnsuppliedLoad {
    /// Pin current drawn by the load at pin voltage `v` (positive current
    /// leaves the pin).
    pub fn current(&self, v: f64) -> f64 {
        match *self {
            UnsuppliedLoad::Isolated => 0.0,
            UnsuppliedLoad::DiodeClamp { v_knee, g } => {
                if v > v_knee {
                    g * (v - v_knee)
                } else if v < -v_knee {
                    g * (v + v_knee)
                } else {
                    0.0
                }
            }
        }
    }
}

/// Two mutually coupled oscillator systems.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledOscillators {
    tank_a: LcTank,
    tank_b: LcTank,
    mutual: f64,
    driver_a: GmDriver,
    driver_b: GmDriver,
    vref_a: f64,
    vref_b: f64,
    b_supplied: bool,
    b_load: UnsuppliedLoad,
}

impl CoupledOscillators {
    /// Creates the pair with coupling factor `k` (mutual inductance
    /// `M = k·√(La·Lb)`); both systems biased at `vref` and supplied.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= k < 1` (k = 1 makes the inductance matrix
    /// singular).
    pub fn new(tank_a: LcTank, tank_b: LcTank, k: f64, driver: GmDriver, vref: f64) -> Self {
        assert!((0.0..1.0).contains(&k), "coupling must be in [0, 1)");
        let mutual = k * (tank_a.l().value() * tank_b.l().value()).sqrt();
        CoupledOscillators {
            tank_a,
            tank_b,
            mutual,
            driver_a: driver,
            driver_b: driver,
            vref_a: vref,
            vref_b: vref,
            b_supplied: true,
            b_load: UnsuppliedLoad::Isolated,
        }
    }

    /// Removes system B's supply: its drivers die, its DC bias collapses to
    /// ground and its pads present `load`.
    pub fn kill_supply_b(&mut self, load: UnsuppliedLoad) {
        self.b_supplied = false;
        self.vref_b = 0.0;
        self.b_load = load;
    }

    /// Runs for `duration` seconds with RK4 steps `dt`; returns the
    /// differential waveforms of both systems.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0` and `duration > dt`.
    pub fn run(&self, duration: f64, dt: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(dt > 0.0 && duration > dt, "need duration > dt > 0");
        let steps = (duration / dt).ceil() as usize;
        let a0 = OscillatorState::at_rest(self.vref_a);
        let b0 = OscillatorState::at_rest(self.vref_b);
        let mut x = [a0.v1, a0.v2, a0.il, b0.v1, b0.v2, b0.il];
        let mut scratch = vec![0.0; 5 * 6];
        let mut vd_a = Vec::with_capacity(steps);
        let mut vd_b = Vec::with_capacity(steps);
        for k in 0..steps {
            rk4_step(self, k as f64 * dt, dt, &mut x, &mut scratch);
            vd_a.push(x[0] - x[1]);
            vd_b.push(x[3] - x[4]);
        }
        (vd_a, vd_b)
    }

    /// Steady-state differential amplitude of system A (peak, from the
    /// trailing fifth of a run).
    pub fn survivor_amplitude(&self, duration: f64, dt: f64) -> f64 {
        let (vd_a, _) = self.run(duration, dt);
        vd_a[4 * vd_a.len() / 5..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl OdeSystem for CoupledOscillators {
    fn dim(&self) -> usize {
        6
    }

    fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        let (v1a, v2a, ila, v1b, v2b, ilb) = (x[0], x[1], x[2], x[3], x[4], x[5]);

        // Driver currents (cross-coupled inverting stages).
        let (i1a, i2a) = (
            -self.driver_a.current(v2a - self.vref_a),
            -self.driver_a.current(v1a - self.vref_a),
        );
        let (i1b, i2b) = if self.b_supplied {
            (
                -self.driver_b.current(v2b - self.vref_b),
                -self.driver_b.current(v1b - self.vref_b),
            )
        } else {
            (-self.b_load.current(v1b), -self.b_load.current(v2b))
        };

        let (c1a, c2a) = (self.tank_a.c1().value(), self.tank_a.c2().value());
        let (c1b, c2b) = (self.tank_b.c1().value(), self.tank_b.c2().value());
        dx[0] = (i1a - ila) / c1a;
        dx[1] = (i2a + ila) / c2a;
        dx[3] = (i1b - ilb) / c1b;
        dx[4] = (i2b + ilb) / c2b;

        // Coupled inductors: solve the 2x2 system for the current slopes.
        let la = self.tank_a.l().value();
        let lb = self.tank_b.l().value();
        let m = self.mutual;
        let ea = (v1a - v2a) - self.tank_a.rs().value() * ila;
        let eb = (v1b - v2b) - self.tank_b.rs().value() * ilb;
        let det = la * lb - m * m;
        dx[2] = (lb * ea - m * eb) / det;
        dx[5] = (la * eb - m * ea) / det;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_core::gm_driver::DriverShape;
    use lcosc_num::ode::frequency_from_crossings;
    use lcosc_num::units::{Farads, Henries};

    fn tank() -> LcTank {
        LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), 10.0)
            .expect("tank constants are valid")
    }

    fn driver(i_max: f64) -> GmDriver {
        GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, i_max)
    }

    fn dt() -> f64 {
        1.0 / tank().f0().value() / 100.0
    }

    #[test]
    fn both_systems_lock_to_a_common_frequency() {
        let sys = CoupledOscillators::new(tank(), tank(), 0.3, driver(1e-3), 1.65);
        let span = 300.0 / tank().f0().value();
        let (vd_a, vd_b) = sys.run(span, dt());
        let fa = frequency_from_crossings(0.0, dt(), &vd_a[vd_a.len() / 2..])
            .expect("system A oscillates");
        let fb = frequency_from_crossings(0.0, dt(), &vd_b[vd_b.len() / 2..])
            .expect("system B oscillates");
        // Paper: "the two systems are running at the same frequency".
        assert!((fa / fb - 1.0).abs() < 0.01, "fa {fa} vs fb {fb}");
    }

    #[test]
    fn passive_dead_partner_keeps_survivor_running() {
        // The dead partner's *passive* tank loss always reflects into the
        // survivor (the coils are coupled by design); the §8 claim is that
        // the chip adds nothing beyond it. The survivor must keep a robust
        // oscillation — the regulation loop (not modeled here; i_max fixed)
        // would then restore the amplitude.
        let span = 400.0 / tank().f0().value();
        let solo = CoupledOscillators::new(tank(), tank(), 0.0, driver(1e-3), 1.65)
            .survivor_amplitude(span, dt());
        let mut pair = CoupledOscillators::new(tank(), tank(), 0.5, driver(1e-3), 1.65);
        pair.kill_supply_b(UnsuppliedLoad::Isolated);
        let with_dead = pair.survivor_amplitude(span, dt());
        assert!(
            with_dead > 0.6 * solo,
            "solo {solo} vs with dead partner {with_dead}"
        );
        // And raising the current limit recovers the amplitude — the loop's
        // compensation path exists.
        let mut compensated = CoupledOscillators::new(tank(), tank(), 0.5, driver(1.5e-3), 1.65);
        compensated.kill_supply_b(UnsuppliedLoad::Isolated);
        let recovered = compensated.survivor_amplitude(span, dt());
        assert!(
            recovered > 0.95 * solo,
            "recovered {recovered} vs solo {solo}"
        );
    }

    #[test]
    fn clamping_dead_partner_loads_survivor() {
        let span = 400.0 / tank().f0().value();
        let mut isolated = CoupledOscillators::new(tank(), tank(), 0.5, driver(1e-3), 1.65);
        isolated.kill_supply_b(UnsuppliedLoad::Isolated);
        let a_isolated = isolated.survivor_amplitude(span, dt());

        let mut clamped = CoupledOscillators::new(tank(), tank(), 0.5, driver(1e-3), 1.65);
        clamped.kill_supply_b(UnsuppliedLoad::DiodeClamp {
            v_knee: 0.6,
            g: 20e-3,
        });
        let a_clamped = clamped.survivor_amplitude(span, dt());
        assert!(
            a_clamped < 0.9 * a_isolated,
            "isolated {a_isolated} vs clamped {a_clamped}"
        );
    }

    #[test]
    fn dead_partner_pins_stay_bounded_when_isolated() {
        let mut sys = CoupledOscillators::new(tank(), tank(), 0.5, driver(1e-3), 1.65);
        sys.kill_supply_b(UnsuppliedLoad::Isolated);
        let (_, vd_b) = sys.run(300.0 / tank().f0().value(), dt());
        let peak_b = vd_b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // The passive tank rings with the coupled energy but stays within
        // the same order as the survivor's swing.
        assert!(peak_b > 0.05, "coupling should induce a swing: {peak_b}");
        assert!(peak_b < 10.0, "unphysical swing {peak_b}");
    }

    #[test]
    fn load_current_shape() {
        let clamp = UnsuppliedLoad::DiodeClamp {
            v_knee: 0.6,
            g: 0.02,
        };
        assert_eq!(clamp.current(0.3), 0.0);
        assert_eq!(clamp.current(-0.3), 0.0);
        assert!((clamp.current(1.6) - 0.02).abs() < 1e-12);
        assert!((clamp.current(-1.6) + 0.02).abs() < 1e-12);
        assert_eq!(UnsuppliedLoad::Isolated.current(5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn rejects_unity_coupling() {
        let _ = CoupledOscillators::new(tank(), tank(), 1.0, driver(1e-3), 1.65);
    }
}
