//! # lcosc-safety — safety-critical failure analysis (paper §7, §8)
//!
//! The oscillator driver ships in automotive products with hard safety
//! requirements: *for every external error condition the application must
//! remain safe* — the system has to detect the failure and set its outputs
//! accordingly, and in redundant dual systems the failure of one oscillator
//! must not disturb the other.
//!
//! This crate provides:
//!
//! - [`fault::Fault`] — the external/internal fault taxonomy the paper's
//!   FMEA covers (open coil, coil short, pin shorts, missing capacitors,
//!   loss drift, supply loss, dead driver),
//! - [`detectors`] — behavioral models of the three on-chip detectors:
//!   missing-oscillation time-out, low amplitude, and LC1/LC2 asymmetry by
//!   synchronous rectification of the mid-point,
//! - [`scenario`] — fault injection into a [`lcosc_core::ClosedLoopSim`]
//!   and evaluation of which detectors fire,
//! - [`fmea::FmeaReport`] — the full fault × detector matrix with coverage
//!   accounting,
//! - [`dual::DualSystem`] — two coupled oscillators, one losing its supply,
//!   with the partner loading computed from the pad topology
//!   ([`lcosc_pad::UnsuppliedBench`]),
//! - [`safe_state::SafeStateController`] — the reaction policy (maximum
//!   output current, outputs to safe values).

#![warn(missing_docs)]

pub mod coupled;
pub mod detectors;
pub mod dual;
pub mod fault;
pub mod fmea;
pub mod safe_state;
pub mod scenario;

pub use coupled::{CoupledOscillators, UnsuppliedLoad};
pub use detectors::{AsymmetryDetector, DetectorKind, LowAmplitudeDetector, MissingClockDetector};
pub use dual::{DualOutcome, DualSystem};
pub use fault::Fault;
pub use fmea::{FmeaEntry, FmeaReport, FmeaRun};
pub use safe_state::{SafeStateController, SystemOutputs};
pub use scenario::{
    check_scenario, detector_id, run_scenario, run_scenario_mission, run_scenario_unchecked,
    run_scenario_with_trace, safety_facts, ScenarioResult, SCENARIO_POST_FAULT_TICKS,
};

/// Errors produced by this crate — wraps the oscillator-core and
/// circuit-simulator errors the analyses are built on.
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyError {
    /// Invalid analysis input (coupling factor, thresholds, ...).
    InvalidInput(&'static str),
    /// Error from the closed-loop oscillator simulation.
    Core(lcosc_core::CoreError),
    /// Error from the pad-level circuit analysis.
    Circuit(lcosc_circuit::CircuitError),
}

impl std::fmt::Display for SafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SafetyError::Core(e) => write!(f, "oscillator simulation failed: {e}"),
            SafetyError::Circuit(e) => write!(f, "circuit analysis failed: {e}"),
        }
    }
}

impl std::error::Error for SafetyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SafetyError::InvalidInput(_) => None,
            SafetyError::Core(e) => Some(e),
            SafetyError::Circuit(e) => Some(e),
        }
    }
}

impl From<lcosc_core::CoreError> for SafetyError {
    fn from(e: lcosc_core::CoreError) -> Self {
        SafetyError::Core(e)
    }
}

impl From<lcosc_circuit::CircuitError> for SafetyError {
    fn from(e: lcosc_circuit::CircuitError) -> Self {
        SafetyError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = SafetyError::from(lcosc_core::CoreError::InvalidConfig("bad"));
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_some());
        assert!(SafetyError::InvalidInput("x").source().is_none());
    }
}
