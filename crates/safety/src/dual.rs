//! Redundant dual-system simulation (paper §8, Fig 9).
//!
//! Two oscillator systems run at the same frequency with mutually coupled
//! excitation coils. When one system loses its supply, its pad drivers
//! present a non-linear load to the coil; through the coupling this load
//! reflects into the survivor's tank as extra loss. The survivor's
//! regulation loop must absorb that loss without leaving its amplitude
//! window — which it only can if the dead chip uses the Fig 11 output
//! stage.
//!
//! The partner's load conductance is computed from the pad-level DC sweep
//! ([`lcosc_pad::UnsuppliedBench`]) as the secant at the survivor's
//! operating swing, then reflected with `k²` (transformer coupling) and
//! injected into the survivor's model as a pin leak.

use crate::SafetyError;
use lcosc_core::config::OscillatorConfig;
use lcosc_core::sim::ClosedLoopSim;
use lcosc_pad::topology::PadTopology;
use lcosc_pad::unsupplied::UnsuppliedBench;

/// Outcome of the partner-supply-loss experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualOutcome {
    /// Pad topology of the (dead) partner.
    pub partner_topology: PadTopology,
    /// Survivor amplitude before the partner died, volts pp.
    pub vpp_before: f64,
    /// Survivor amplitude after re-settling, volts pp.
    pub vpp_after: f64,
    /// Survivor code before.
    pub code_before: u8,
    /// Survivor code after.
    pub code_after: u8,
    /// Whether the survivor re-settled inside its window.
    pub survivor_settled: bool,
    /// Reflected load conductance injected into the survivor, siemens.
    pub reflected_conductance: f64,
}

impl DualOutcome {
    /// Relative amplitude disturbance caused by the dead partner.
    pub fn influence(&self) -> f64 {
        (self.vpp_after / self.vpp_before - 1.0).abs()
    }
}

/// Two coupled oscillator systems; system B loses its supply.
#[derive(Debug, Clone)]
pub struct DualSystem {
    survivor: ClosedLoopSim,
    coupling_k: f64,
    partner_topology: PadTopology,
}

impl DualSystem {
    /// Creates the pair: both systems use `config`; the partner's pad
    /// topology decides its unsupplied behavior. `coupling_k` is the coil
    /// coupling factor (≈0.8 for coils on the same rotor).
    ///
    /// # Errors
    ///
    /// Returns [`SafetyError`] for invalid configurations or coupling.
    pub fn new(
        config: OscillatorConfig,
        partner_topology: PadTopology,
        coupling_k: f64,
    ) -> Result<Self, SafetyError> {
        if !(0.0..=1.0).contains(&coupling_k) {
            return Err(SafetyError::InvalidInput("coupling k must be in [0, 1]"));
        }
        let survivor = ClosedLoopSim::new(config)?;
        Ok(DualSystem {
            survivor,
            coupling_k,
            partner_topology,
        })
    }

    /// Access to the surviving system's simulation.
    pub fn survivor(&self) -> &ClosedLoopSim {
        &self.survivor
    }

    /// Runs the full experiment: settle both systems, kill the partner's
    /// supply, let the survivor re-regulate.
    ///
    /// # Errors
    ///
    /// Returns [`SafetyError`] when either the oscillator simulation or the
    /// pad-level DC sweep fails.
    pub fn run_supply_loss(&mut self) -> Result<DualOutcome, SafetyError> {
        let before = self.survivor.run_until_settled()?;

        // Secant load conductance of the dead partner at the survivor's
        // differential peak swing.
        let v_peak = (before.final_vpp / 2.0).max(0.1);
        let bench = UnsuppliedBench::new(self.partner_topology);
        let pts = bench.sweep(&[v_peak])?;
        let g_load = pts[0].i_loop / v_peak;

        // Reflect through the coupling and inject as a pin leak (the sim
        // folds it into equivalent series loss for the envelope model).
        let g_reflected = self.coupling_k * self.coupling_k * g_load;
        self.survivor.inject_pin_leak(0, 2.0 * g_reflected.max(0.0));

        let after = self.survivor.run_until_settled()?;

        Ok(DualOutcome {
            partner_topology: self.partner_topology,
            vpp_before: before.final_vpp,
            vpp_after: after.final_vpp,
            code_before: before.final_code.value(),
            code_after: after.final_code.value(),
            survivor_settled: after.settled,
            reflected_conductance: g_reflected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast-test tank regulated to the paper's 2.7 Vpp operating amplitude
    /// (±0.675 V per pin, where the partner's pad knees start to matter).
    fn cfg() -> OscillatorConfig {
        let mut c = OscillatorConfig::fast_test();
        c.target_vpp = 2.7;
        c.nvm_code = c.recommended_nvm_code();
        c
    }

    fn run(topology: PadTopology) -> DualOutcome {
        DualSystem::new(cfg(), topology, 0.8)
            .unwrap()
            .run_supply_loss()
            .unwrap()
    }

    #[test]
    fn bulk_switched_partner_does_not_disturb_survivor() {
        // The paper's §8 claim: the unsupplied system does not
        // significantly influence the other one.
        let o = run(PadTopology::BulkSwitched);
        assert!(o.survivor_settled, "{o:?}");
        assert!(o.influence() < 0.1, "influence {}", o.influence());
    }

    #[test]
    fn plain_cmos_partner_loads_survivor_more() {
        let plain = run(PadTopology::PlainCmos);
        let bulk = run(PadTopology::BulkSwitched);
        assert!(
            plain.reflected_conductance > 5.0 * bulk.reflected_conductance,
            "plain {} vs bulk {}",
            plain.reflected_conductance,
            bulk.reflected_conductance
        );
        // The survivor has to burn more current to stay in the window.
        assert!(
            plain.code_after >= bulk.code_after,
            "plain code {} vs bulk code {}",
            plain.code_after,
            bulk.code_after
        );
    }

    #[test]
    fn survivor_code_rises_to_cover_reflected_loss() {
        let o = run(PadTopology::PlainCmos);
        assert!(
            o.code_after > o.code_before,
            "code {} -> {}",
            o.code_before,
            o.code_after
        );
    }

    #[test]
    fn zero_coupling_means_zero_influence() {
        let o = DualSystem::new(cfg(), PadTopology::PlainCmos, 0.0)
            .unwrap()
            .run_supply_loss()
            .unwrap();
        assert!(o.influence() < 0.05, "influence {}", o.influence());
        assert_eq!(o.reflected_conductance, 0.0);
    }

    #[test]
    fn invalid_coupling_rejected() {
        assert!(matches!(
            DualSystem::new(cfg(), PadTopology::BulkSwitched, 1.5),
            Err(SafetyError::InvalidInput(_))
        ));
    }
}
