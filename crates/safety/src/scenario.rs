//! Fault injection scenarios: apply one [`Fault`] to a settled closed-loop
//! simulation and evaluate which on-chip detectors fire.

use crate::detectors::{
    AsymmetryDetector, DetectorKind, LowAmplitudeDetector, MissingClockDetector,
    CHIP_ASYMMETRY_THRESHOLD, CHIP_LOW_AMPLITUDE_FRACTION, CHIP_MISSING_CLOCK_TIMEOUT,
};
use crate::fault::Fault;
use lcosc_core::config::{Fidelity, OscillatorConfig};
use lcosc_core::detector::RECTIFIER_GAIN;
use lcosc_core::sim::{ClosedLoopSim, SimEvent};
use lcosc_core::Result;
use lcosc_trace::{DetectorId, Trace, TraceEvent};

/// Maps the safety crate's detector enumeration onto the trace layer's
/// stable identifiers.
pub fn detector_id(kind: DetectorKind) -> DetectorId {
    match kind {
        DetectorKind::MissingOscillation => DetectorId::MissingOscillation,
        DetectorKind::LowAmplitude => DetectorId::LowAmplitude,
        DetectorKind::Asymmetry => DetectorId::Asymmetry,
    }
}

/// Conductance of a hard pin short (≈50 Ω solder bridge).
const SHORT_CONDUCTANCE: f64 = 0.02;

/// Outcome of one injected-fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The injected fault.
    pub fault: Fault,
    /// Detectors that fired after the fault.
    pub triggered: Vec<DetectorKind>,
    /// Whether at least one detector fired.
    pub detected: bool,
    /// Whether the regulation code was pinned at maximum after the fault.
    pub code_saturated: bool,
    /// Differential amplitude after the fault settled, volts.
    pub final_vpp: f64,
    /// Amplitude before the fault, volts.
    pub vpp_before: f64,
}

impl ScenarioResult {
    /// The safety verdict: a fault scenario is *safe* when it was detected
    /// (the system can then force its outputs to safe values). Undetected
    /// faults that still regulate to the correct amplitude are also safe —
    /// but the paper's FMEA demands detection for every external fault, so
    /// [`crate::fmea::FmeaReport`] tracks detection separately.
    pub fn is_safe(&self) -> bool {
        self.detected || (self.final_vpp / self.vpp_before - 1.0).abs() < 0.2
    }
}

/// Builds the `S0xx` facts snapshot for a configuration paired with the
/// chip-default detectors this module injects faults against.
pub fn safety_facts(cfg: &OscillatorConfig) -> lcosc_check::SafetyFacts {
    let vdc_target = RECTIFIER_GAIN * cfg.target_peak();
    lcosc_check::SafetyFacts {
        window_rel_width: cfg.window_rel_width,
        max_rel_step: lcosc_check::ideal_max_rel_step_above_16(),
        window_low: vdc_target * (1.0 - cfg.window_rel_width / 2.0),
        window_high: vdc_target * (1.0 + cfg.window_rel_width / 2.0),
        missing_clock_timeout: CHIP_MISSING_CLOCK_TIMEOUT,
        lc_period: 1.0 / cfg.tank.f0().value(),
        low_amplitude_fraction: CHIP_LOW_AMPLITUDE_FRACTION,
        asymmetry_threshold: CHIP_ASYMMETRY_THRESHOLD,
        detector_noise_rms: cfg.detector_noise_rms,
    }
}

/// Runs the full static verification pass a scenario depends on: the
/// configuration's `C0xx` rules plus the `S0xx` safety invariants of the
/// chip-default detectors.
pub fn check_scenario(cfg: &OscillatorConfig) -> lcosc_check::Report {
    let mut report = cfg.check();
    report.merge(lcosc_check::check_safety_facts(&safety_facts(cfg)));
    report
}

/// Runs one fault scenario on the given base configuration (multi-rate
/// fidelity is forced for speed — envelope dynamics between events, cycle
/// fidelity in guard windows around them; the `multirate_differential`
/// integration test proves the discrete outcomes match full-fidelity
/// runs), after pre-checking the configuration and safety invariants.
///
/// # Errors
///
/// Returns [`lcosc_core::CoreError::CheckFailed`] when the static pass
/// rejects the configuration, and propagates simulation-setup errors.
pub fn run_scenario(fault: Fault, base: &OscillatorConfig) -> Result<ScenarioResult> {
    let report = check_scenario(base);
    if report.has_errors() {
        return Err(lcosc_core::CoreError::CheckFailed(report));
    }
    run_scenario_unchecked(fault, base)
}

/// [`run_scenario`] without the static verification pass — the escape
/// hatch for FMEA studies that intentionally inject out-of-spec
/// parameters. Basic configuration validation still applies.
///
/// # Errors
///
/// Propagates configuration errors from the simulation setup.
pub fn run_scenario_unchecked(fault: Fault, base: &OscillatorConfig) -> Result<ScenarioResult> {
    run_scenario_with_trace(fault, base, &Trace::off())
}

/// Regulation ticks a scenario observes after the fault injection (the
/// missing-clock time-out is ~100 µs, the regulation saturation takes
/// tens of ticks).
pub const SCENARIO_POST_FAULT_TICKS: usize = 150;

/// [`run_scenario_unchecked`] with full observability: the simulation's
/// regulation loop emits its per-tick event stream into `tracer`, and each
/// detector that fires adds a [`TraceEvent::DetectorTrip`] whose
/// `latency_ticks` counts regulation ticks from the fault injection to the
/// evaluation. All emitted events are deterministic (golden stream).
///
/// # Errors
///
/// Propagates configuration errors from the simulation setup.
pub fn run_scenario_with_trace(
    fault: Fault,
    base: &OscillatorConfig,
    tracer: &Trace,
) -> Result<ScenarioResult> {
    // Multi-rate by default: envelope fidelity between events, cycle
    // fidelity inside guard windows around fault injection, detector
    // threshold crossings and segment-boundary code steps. The
    // `LCOSC_FIDELITY` hatch (resolved inside the sim constructor) pins
    // the run to a single fidelity for divergence triage.
    run_scenario_mission(
        fault,
        base,
        tracer,
        Fidelity::MultiRate,
        SCENARIO_POST_FAULT_TICKS,
    )
}

/// The fully explicit scenario runner: `fidelity` selects the simulation
/// engine (the `LCOSC_FIDELITY` hatch still wins, as everywhere) and
/// `post_fault_ticks` sets the observation horizon after the injection —
/// the multi-rate benchmark stretches it into a long mission profile and
/// runs the same fault once per fidelity to compare wall-clock at pinned
/// discrete outcomes.
///
/// # Errors
///
/// Propagates configuration errors from the simulation setup.
pub fn run_scenario_mission(
    fault: Fault,
    base: &OscillatorConfig,
    tracer: &Trace,
    fidelity: Fidelity,
    post_fault_ticks: usize,
) -> Result<ScenarioResult> {
    let mut cfg = base.clone();
    cfg.fidelity = fidelity;
    let mut sim = ClosedLoopSim::new_unchecked(cfg.clone())?.with_trace(tracer.clone());

    // Settle at the healthy operating point.
    let healthy = sim.run_until_settled()?;
    let vpp_before = healthy.final_vpp;
    let t_fault = sim.time();
    let tick_fault = sim.ticks();

    // Inject.
    match fault {
        Fault::OpenCoil | Fault::SupplyLoss | Fault::DriverDead => {
            // No resonance path / no supply / no stages: the driver cannot
            // deliver energy and the clock disappears.
            sim.inject_driver_failure();
        }
        Fault::PinShortToGround { pin } | Fault::PinShortToSupply { pin } => {
            sim.inject_pin_leak(pin, SHORT_CONDUCTANCE);
        }
        Fault::CoilShort | Fault::MissingCapacitor { .. } | Fault::RsDrift { .. } => {
            let tank = fault
                .faulted_tank(&cfg.tank)
                .expect("tank fault provides a faulted tank");
            sim.inject_tank(tank);
        }
    }

    // Let the loop react over the requested observation horizon.
    sim.run_ticks(post_fault_ticks);

    // Evaluate the three on-chip detectors on the post-fault state.
    let vpp = sim.amplitude_vpp();
    let elapsed = sim.time() - t_fault;

    let mut clock = MissingClockDetector::chip_default();
    let clock_tripped = clock.update(vpp / 2.0, elapsed);

    let code_saturated = sim
        .trace()
        .events
        .iter()
        .any(|e| matches!(e, SimEvent::SaturatedHigh { t } if *t >= t_fault));
    let low = LowAmplitudeDetector::chip_default(cfg.target_vpp).evaluate(vpp, code_saturated);

    // Per-pin amplitudes from the capacitor ratio (charge balance through
    // the series loop: a1·C1 = a2·C2).
    let tank = sim.config().tank;
    let (c1, c2) = (tank.c1().value(), tank.c2().value());
    let a = sim.amplitude_peak();
    let a1 = 2.0 * a * c2 / (c1 + c2);
    let a2 = 2.0 * a * c1 / (c1 + c2);
    let asym = AsymmetryDetector::new(cfg.vref, 20e-6, 1e-8, CHIP_ASYMMETRY_THRESHOLD)
        .evaluate_amplitudes(a1, a2);

    let mut triggered = Vec::new();
    if clock_tripped {
        triggered.push(DetectorKind::MissingOscillation);
    }
    if low {
        triggered.push(DetectorKind::LowAmplitude);
    }
    if asym {
        triggered.push(DetectorKind::Asymmetry);
    }

    // Detector trips, stamped in the regulation loop's discrete time: the
    // scenario evaluates detectors once after the post-fault window, so
    // the latency is the injection-to-evaluation distance in ticks.
    let tick = sim.ticks();
    let latency_ticks = tick - tick_fault;
    for &kind in &triggered {
        tracer.emit(|| TraceEvent::DetectorTrip {
            tick,
            detector: detector_id(kind),
            latency_ticks,
        });
    }

    Ok(ScenarioResult {
        fault,
        detected: !triggered.is_empty(),
        triggered,
        code_saturated,
        final_vpp: vpp,
        vpp_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> OscillatorConfig {
        OscillatorConfig::fast_test()
    }

    #[test]
    fn open_coil_detected_as_missing_oscillation() {
        let r = run_scenario(Fault::OpenCoil, &base()).unwrap();
        assert!(
            r.triggered.contains(&DetectorKind::MissingOscillation),
            "{r:?}"
        );
        assert!(r.detected);
        assert!(r.final_vpp < 0.05);
    }

    #[test]
    fn driver_failure_detected() {
        let r = run_scenario(Fault::DriverDead, &base()).unwrap();
        assert!(r.detected);
        assert!(r.code_saturated, "loop should hit the top code");
    }

    #[test]
    fn pin_short_kills_oscillation_and_is_detected() {
        for pin in 0..2 {
            let r = run_scenario(Fault::PinShortToGround { pin }, &base()).unwrap();
            assert!(r.detected, "pin {pin}: {r:?}");
            assert!(
                r.triggered.contains(&DetectorKind::MissingOscillation)
                    || r.triggered.contains(&DetectorKind::LowAmplitude),
                "pin {pin}: {:?}",
                r.triggered
            );
        }
    }

    #[test]
    fn missing_cap_detected_as_asymmetry() {
        let r = run_scenario(Fault::MissingCapacitor { pin: 1 }, &base()).unwrap();
        assert!(r.triggered.contains(&DetectorKind::Asymmetry), "{r:?}");
    }

    #[test]
    fn rs_drift_is_compensated_or_detected() {
        // A 4x loss drift on the fast-test tank can still be regulated
        // (code rises); that is a safe outcome. A detection is also
        // acceptable if the code saturates.
        let r = run_scenario(Fault::RsDrift { factor: 4.0 }, &base()).unwrap();
        assert!(r.is_safe(), "{r:?}");
    }

    #[test]
    fn coil_short_compensated_or_detected() {
        // Collapsed inductance multiplies the critical gm ~12x. Under the
        // envelope (describing-function) approximation the loop saturates
        // and amplitude collapses; full cycle fidelity shows the
        // current-limited driver instead sustains a relaxation-style
        // oscillation on the overdamped tank that the loop regulates back
        // into the amplitude window. Both outcomes are safe: a detection,
        // or regulation within authority. The multi-rate runner is required
        // to reproduce whichever the cycle-accurate model produces (see
        // tests/multirate_differential.rs), so this test accepts either.
        let r = run_scenario(Fault::CoilShort, &base()).unwrap();
        assert!(r.is_safe(), "{r:?}");
    }

    #[test]
    fn scenario_precheck_is_clean_for_presets() {
        for cfg in [
            OscillatorConfig::fast_test(),
            OscillatorConfig::datasheet_3mhz(),
            OscillatorConfig::low_q(),
        ] {
            let r = check_scenario(&cfg);
            assert!(!r.has_errors(), "{}", r.render_human());
        }
    }

    #[test]
    fn slow_tank_fails_the_safety_precheck() {
        use lcosc_core::tank::LcTank;
        use lcosc_num::units::{Farads, Henries};
        // A ~1 kHz tank: the 100 µs missing-clock time-out spans a fraction
        // of one LC period, so the detector would trip on a healthy clock.
        let tank = LcTank::with_q(
            Henries::from_micro(25_000.0),
            Farads::from_nano(2_000.0),
            10.0,
        )
        .expect("constants are valid");
        let cfg = OscillatorConfig::for_tank(tank);
        let report = check_scenario(&cfg);
        assert!(report.contains("S003"), "{}", report.render_human());
        match run_scenario(Fault::OpenCoil, &cfg) {
            Err(lcosc_core::CoreError::CheckFailed(r)) => assert!(r.contains("S003")),
            other => panic!("expected CheckFailed, got {other:?}"),
        }
    }

    #[test]
    fn traced_scenario_emits_fault_and_detector_events() {
        use lcosc_trace::MemorySink;
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let r =
            run_scenario_with_trace(Fault::DriverDead, &base(), &Trace::new(sink.clone())).unwrap();
        assert!(r.detected);
        let evs = sink.snapshot();
        let fault_tick = evs
            .iter()
            .find_map(|e| match e {
                TraceEvent::FaultInjected { tick } => Some(*tick),
                _ => None,
            })
            .expect("fault injection is traced");
        let trips: Vec<(u64, u64)> = evs
            .iter()
            .filter_map(|e| match e {
                TraceEvent::DetectorTrip {
                    tick,
                    latency_ticks,
                    ..
                } => Some((*tick, *latency_ticks)),
                _ => None,
            })
            .collect();
        assert!(!trips.is_empty(), "detected scenario must record trips");
        for (tick, latency) in trips {
            assert_eq!(tick - latency, fault_tick, "latency anchored at the fault");
        }
        // The regulation loop's per-tick stream rides along, and nothing
        // in a scenario trace is machine-dependent.
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::CodeStep { .. })));
        assert!(evs.iter().all(TraceEvent::is_golden));
    }

    #[test]
    fn traced_scenario_matches_untraced_result() {
        use lcosc_trace::MemorySink;
        use std::sync::Arc;
        // Observability must not perturb the physics: the traced run's
        // outcome is identical to the plain one.
        let plain = run_scenario_unchecked(Fault::CoilShort, &base()).unwrap();
        let sink = Arc::new(MemorySink::new());
        let traced = run_scenario_with_trace(Fault::CoilShort, &base(), &Trace::new(sink)).unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn healthy_system_triggers_nothing() {
        // Sanity: run the scenario machinery with a null fault (Rs x1).
        let r = run_scenario(Fault::RsDrift { factor: 1.0 }, &base()).unwrap();
        assert!(!r.detected, "{r:?}");
        assert!(r.is_safe());
        assert!((r.final_vpp / r.vpp_before - 1.0).abs() < 0.1);
    }
}
