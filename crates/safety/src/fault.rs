//! Fault taxonomy for the FMEA (paper §7).

use lcosc_core::tank::LcTank;
use lcosc_num::units::{Farads, Ohms};

/// Residual capacitance left on a pin when its external capacitor is
/// missing (bond pad + trace parasitics).
pub const PARASITIC_CAP: f64 = 20e-12;

/// External and internal failure modes covered by the paper's FMEA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Open connection to the excitation coil: no resonance path at all.
    OpenCoil,
    /// Shorted turns in the coil: inductance collapses, losses rise.
    CoilShort,
    /// LCx pin shorted to ground through a low resistance.
    PinShortToGround {
        /// 0 = LC1, 1 = LC2.
        pin: usize,
    },
    /// LCx pin shorted to the supply through a low resistance.
    PinShortToSupply {
        /// 0 = LC1, 1 = LC2.
        pin: usize,
    },
    /// External capacitor missing or broken: only parasitics remain.
    MissingCapacitor {
        /// 0 = Cosc1, 1 = Cosc2.
        pin: usize,
    },
    /// Series loss resistance drifted by a factor (corrosion, bad solder).
    RsDrift {
        /// Multiplier on the nominal Rs (> 1 = more loss).
        factor: f64,
    },
    /// Chip supply lost (the dual-system scenario of §8).
    SupplyLoss,
    /// Hard internal failure of both driver stages.
    DriverDead,
}

impl Fault {
    /// Every fault, for exhaustive FMEA sweeps.
    pub fn catalog() -> Vec<Fault> {
        vec![
            Fault::OpenCoil,
            Fault::CoilShort,
            Fault::PinShortToGround { pin: 0 },
            Fault::PinShortToGround { pin: 1 },
            Fault::PinShortToSupply { pin: 0 },
            Fault::PinShortToSupply { pin: 1 },
            Fault::MissingCapacitor { pin: 0 },
            Fault::MissingCapacitor { pin: 1 },
            Fault::RsDrift { factor: 4.0 },
            Fault::SupplyLoss,
            Fault::DriverDead,
        ]
    }

    /// Whether this fault is external to the chip (the paper's FMEA scope
    /// for "every external error condition").
    pub fn is_external(&self) -> bool {
        !matches!(self, Fault::DriverDead)
    }

    /// The faulted tank, when the fault acts on the external network.
    /// Returns `None` for faults that do not modify the tank itself.
    pub fn faulted_tank(&self, nominal: &LcTank) -> Option<LcTank> {
        match self {
            // A hard turn-to-turn short collapses the inductance and the
            // shorted loop dissipates heavily: the critical transconductance
            // rises ~100×, beyond what even all nine Gm stages can deliver
            // on a good tank — the loop saturates and amplitude collapses.
            Fault::CoilShort => Some(
                LcTank::new(
                    nominal.l() * 0.1,
                    nominal.c1(),
                    nominal.c2(),
                    nominal.rs() * 10.0,
                )
                .expect("scaled tank is valid"),
            ),
            Fault::MissingCapacitor { pin } => {
                let (c1, c2) = if *pin == 0 {
                    (Farads(PARASITIC_CAP), nominal.c2())
                } else {
                    (nominal.c1(), Farads(PARASITIC_CAP))
                };
                Some(LcTank::new(nominal.l(), c1, c2, nominal.rs()).expect("tank is valid"))
            }
            Fault::RsDrift { factor } => Some(nominal.with_rs(Ohms(nominal.rs().value() * factor))),
            _ => None,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::OpenCoil => write!(f, "open coil connection"),
            Fault::CoilShort => write!(f, "shorted coil turns"),
            Fault::PinShortToGround { pin } => write!(f, "LC{} short to ground", pin + 1),
            Fault::PinShortToSupply { pin } => write!(f, "LC{} short to supply", pin + 1),
            Fault::MissingCapacitor { pin } => write!(f, "missing Cosc{}", pin + 1),
            Fault::RsDrift { factor } => write!(f, "series loss drift x{factor}"),
            Fault::SupplyLoss => write!(f, "supply voltage lost"),
            Fault::DriverDead => write!(f, "internal driver failure"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_eleven_faults() {
        assert_eq!(Fault::catalog().len(), 11);
    }

    #[test]
    fn only_driver_failure_is_internal() {
        let internals: Vec<Fault> = Fault::catalog()
            .into_iter()
            .filter(|f| !f.is_external())
            .collect();
        assert_eq!(internals, vec![Fault::DriverDead]);
    }

    #[test]
    fn coil_short_raises_losses_and_frequency() {
        let nominal = LcTank::datasheet_3mhz();
        let faulted = Fault::CoilShort.faulted_tank(&nominal).unwrap();
        assert!(faulted.rs().value() > nominal.rs().value());
        assert!(faulted.f0().value() > nominal.f0().value());
        assert!(faulted.q() < nominal.q());
    }

    #[test]
    fn missing_cap_destroys_symmetry() {
        let nominal = LcTank::datasheet_3mhz();
        let faulted = Fault::MissingCapacitor { pin: 1 }
            .faulted_tank(&nominal)
            .unwrap();
        assert!(!faulted.is_symmetric(0.5));
        assert!(faulted.f0().value() > 2.0 * nominal.f0().value());
    }

    #[test]
    fn rs_drift_scales_rs_only() {
        let nominal = LcTank::datasheet_3mhz();
        let faulted = Fault::RsDrift { factor: 4.0 }
            .faulted_tank(&nominal)
            .unwrap();
        assert!((faulted.rs().value() / nominal.rs().value() - 4.0).abs() < 1e-12);
        assert_eq!(faulted.l(), nominal.l());
    }

    #[test]
    fn non_tank_faults_return_none() {
        let nominal = LcTank::datasheet_3mhz();
        for fault in [
            Fault::OpenCoil,
            Fault::PinShortToGround { pin: 0 },
            Fault::SupplyLoss,
            Fault::DriverDead,
        ] {
            assert!(fault.faulted_tank(&nominal).is_none(), "{fault}");
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: Vec<String> = Fault::catalog().iter().map(Fault::to_string).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
