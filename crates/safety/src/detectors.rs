//! The three on-chip failure detectors (paper §6/§7, Fig 8).

use lcosc_num::filter::OnePoleLowPass;

/// Chip-default missing-clock comparator sensitivity, volts.
pub const CHIP_CLOCK_SENSITIVITY: f64 = 0.05;
/// Chip-default missing-clock time-out, seconds (hundreds of missing
/// cycles at 2–5 MHz).
pub const CHIP_MISSING_CLOCK_TIMEOUT: f64 = 100e-6;
/// Chip-default low-amplitude threshold as a fraction of the target.
pub const CHIP_LOW_AMPLITUDE_FRACTION: f64 = 0.6;
/// Chip-default asymmetry trip threshold, volts.
pub const CHIP_ASYMMETRY_THRESHOLD: f64 = 0.05;

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Fast comparator clock missing for longer than the time-out.
    MissingOscillation,
    /// Rectified amplitude below the safety threshold (or the regulation
    /// code pinned at maximum while still below the window).
    LowAmplitude,
    /// LC1/LC2 amplitude asymmetry via synchronous rectification of the
    /// mid-point VR0.
    Asymmetry,
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::MissingOscillation => write!(f, "missing oscillations"),
            DetectorKind::LowAmplitude => write!(f, "low amplitude"),
            DetectorKind::Asymmetry => write!(f, "LC1/LC2 asymmetry"),
        }
    }
}

/// Missing-oscillation detector: a fast comparator between LC1 and LC2
/// recovers the clock; a time-out circuit flags when no edge arrives.
///
/// Behavioral contract: feed the current differential amplitude every
/// update — an amplitude below the comparator sensitivity produces no
/// edges, and the time-out accumulates.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingClockDetector {
    sensitivity: f64,
    timeout: f64,
    quiet_time: f64,
    tripped: bool,
}

impl MissingClockDetector {
    /// Creates a detector: the comparator needs at least `sensitivity`
    /// volts of differential amplitude to slice a clock; `timeout` seconds
    /// without edges trips the flag.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(sensitivity: f64, timeout: f64) -> Self {
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(timeout > 0.0, "timeout must be positive");
        MissingClockDetector {
            sensitivity,
            timeout,
            quiet_time: 0.0,
            tripped: false,
        }
    }

    /// Chip-like defaults: 50 mV comparator sensitivity, 100 µs time-out
    /// (hundreds of missing cycles at 2–5 MHz).
    pub fn chip_default() -> Self {
        MissingClockDetector::new(CHIP_CLOCK_SENSITIVITY, CHIP_MISSING_CLOCK_TIMEOUT)
    }

    /// Relative tolerance for the time-out comparison. Repeated
    /// `quiet_time += dt` accumulates rounding error: e.g. eleven steps of
    /// `timeout / 11` sum to `9.999999999999998e-5 < 1e-4`, so an exact
    /// `>=` misses a trip that mathematically lands on the boundary. One
    /// part in 10⁹ is orders of magnitude above f64 accumulation error for
    /// any realistic step count and far below any physical margin.
    const TIMEOUT_REL_TOL: f64 = 1e-9;

    /// Advances by `dt` with the present differential amplitude.
    /// Returns `true` while the time-out is tripped.
    ///
    /// Boundary semantics (pinned by tests):
    ///
    /// - the detector trips on the update where the accumulated quiet time
    ///   **reaches** the time-out (within [`Self::TIMEOUT_REL_TOL`] relative
    ///   tolerance, absorbing float accumulation error) — not one step
    ///   later;
    /// - a single coarse step with `dt > timeout` (the envelope fidelity's
    ///   `det_dt = tick_period / envelope_substeps` can exceed a short
    ///   time-out) trips immediately;
    /// - an edge **clears before** the time-out check: an update carrying
    ///   amplitude above the sensitivity never trips, no matter how much
    ///   quiet time had accumulated.
    pub fn update(&mut self, v_diff_amplitude: f64, dt: f64) -> bool {
        if v_diff_amplitude.abs() >= self.sensitivity {
            self.quiet_time = 0.0;
            self.tripped = false;
        } else {
            self.quiet_time += dt;
            if self.quiet_time >= self.timeout * (1.0 - Self::TIMEOUT_REL_TOL) {
                self.tripped = true;
            }
        }
        self.tripped
    }

    /// Whether the time-out has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

/// Low-amplitude detector: the same rectified/filtered `VDC1` as the
/// regulation loop, compared against a lower safety threshold, plus the
/// saturation condition (code at maximum while the comparator still asks
/// for more).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowAmplitudeDetector {
    threshold_fraction: f64,
    target_vpp: f64,
}

impl LowAmplitudeDetector {
    /// Creates a detector flagging when the differential amplitude falls
    /// below `threshold_fraction` of the regulation target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold_fraction < 1` and `target_vpp > 0`.
    pub fn new(threshold_fraction: f64, target_vpp: f64) -> Self {
        assert!(
            threshold_fraction > 0.0 && threshold_fraction < 1.0,
            "threshold fraction must be in (0, 1)"
        );
        assert!(target_vpp > 0.0, "target must be positive");
        LowAmplitudeDetector {
            threshold_fraction,
            target_vpp,
        }
    }

    /// Chip-like default: flag below 60 % of the target amplitude.
    pub fn chip_default(target_vpp: f64) -> Self {
        LowAmplitudeDetector::new(CHIP_LOW_AMPLITUDE_FRACTION, target_vpp)
    }

    /// Evaluates the detector: `vpp` is the present amplitude and
    /// `saturated_high` the regulation-loop condition.
    pub fn evaluate(&self, vpp: f64, saturated_high: bool) -> bool {
        vpp < self.threshold_fraction * self.target_vpp || saturated_high
    }
}

/// Asymmetry detector: synchronous rectification of the LC mid-point VR0.
///
/// With matched capacitors the mid-point is DC; a missing/defective
/// `Cosc` makes the pin amplitudes unequal and VR0 carries a component at
/// the oscillation frequency, phase-locked to the differential signal.
/// Multiplying by the sign of `v_diff` (synchronous rectification) and
/// filtering yields a DC value proportional to the asymmetry.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymmetryDetector {
    lpf: OnePoleLowPass,
    vref: f64,
    threshold: f64,
}

impl AsymmetryDetector {
    /// Creates the detector with the DC operating point `vref`, a filter
    /// time constant `tau`, sample interval `dt` and trip `threshold`
    /// (volts of rectified mid-point ripple).
    ///
    /// # Panics
    ///
    /// Panics unless `tau`, `dt` and `threshold` are positive.
    pub fn new(vref: f64, tau: f64, dt: f64, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        let mut lpf = OnePoleLowPass::new(tau, dt);
        lpf.reset_to(0.0);
        AsymmetryDetector {
            lpf,
            vref,
            threshold,
        }
    }

    /// Processes one sample of the pin voltages; returns `true` when the
    /// filtered synchronous-rectifier output exceeds the threshold.
    pub fn update(&mut self, v1: f64, v2: f64) -> bool {
        let v_diff = v1 - v2;
        let vr0 = 0.5 * (v1 + v2) - self.vref;
        let sync = if v_diff >= 0.0 { vr0 } else { -vr0 };
        self.lpf.update(sync).abs() > self.threshold
    }

    /// Filtered rectifier output.
    pub fn output(&self) -> f64 {
        self.lpf.output()
    }

    /// Analytic equivalent used by the envelope-fidelity FMEA: per-pin
    /// amplitudes `a1`, `a2` produce a mid-point ripple `(a1 − a2)/2`
    /// phase-locked to `v_diff`; the synchronous rectifier extracts
    /// `(2/π)·(a1 − a2)/2` of DC.
    pub fn evaluate_amplitudes(&self, a1: f64, a2: f64) -> bool {
        (std::f64::consts::FRAC_2_PI * 0.5 * (a1 - a2)).abs() > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_clock_trips_after_timeout() {
        let mut d = MissingClockDetector::new(0.05, 100e-6);
        assert!(!d.update(1.0, 50e-6));
        assert!(!d.update(0.0, 50e-6));
        assert!(!d.tripped());
        assert!(d.update(0.0, 60e-6)); // 110 µs quiet
        assert!(d.tripped());
    }

    #[test]
    fn missing_clock_recovers_on_edges() {
        let mut d = MissingClockDetector::chip_default();
        d.update(0.0, 200e-6);
        assert!(d.tripped());
        assert!(!d.update(1.0, 1e-6), "edge clears the timeout");
    }

    #[test]
    fn missing_clock_trips_exactly_at_accumulated_timeout() {
        // Regression: N steps of `timeout / N` can sum *below* the
        // mathematical time-out in f64 (eleven steps of 1e-4/11 give
        // 9.999999999999998e-5), so the old exact `>=` comparison missed
        // a trip landing precisely on the boundary.
        for divisor in [7u32, 11, 13] {
            let timeout = CHIP_MISSING_CLOCK_TIMEOUT;
            let dt = timeout / f64::from(divisor);
            let mut d = MissingClockDetector::new(0.05, timeout);
            for step in 1..divisor {
                assert!(
                    !d.update(0.0, dt),
                    "divisor {divisor}: step {step} is before the time-out"
                );
            }
            assert!(
                d.update(0.0, dt),
                "divisor {divisor}: final step lands exactly on the time-out"
            );
        }
    }

    #[test]
    fn missing_clock_boundary_in_both_fidelity_step_sizes() {
        // The two simulation fidelities drive the detector with very
        // different step sizes: envelope mode uses the coarse
        // `det_dt = tick_period / envelope_substeps`, cycle mode the fine
        // ODE step `cfg.dt()`. In both, the trip must land on the first
        // update whose accumulated quiet time reaches the time-out.
        let cfg = lcosc_core::config::OscillatorConfig::fast_test();
        let timeout = CHIP_MISSING_CLOCK_TIMEOUT;
        let envelope_dt = cfg.tick_period / cfg.envelope_substeps as f64;
        let cycle_dt = cfg.dt();
        for (fidelity, dt) in [("envelope", envelope_dt), ("cycle", cycle_dt)] {
            assert!(dt < timeout, "{fidelity}: step must subdivide the time-out");
            let expected = (timeout / dt - 1e-6).ceil() as u32;
            let mut d = MissingClockDetector::new(0.05, timeout);
            let mut step = 0u32;
            loop {
                step += 1;
                if d.update(0.0, dt) {
                    break;
                }
                assert!(
                    step < expected,
                    "{fidelity}: no trip after {step} steps of {dt}"
                );
            }
            assert_eq!(
                step, expected,
                "{fidelity}: tripped at step {step}, expected {expected}"
            );
        }
    }

    #[test]
    fn missing_clock_coarse_step_exceeding_timeout_trips_immediately() {
        // Envelope fidelity with a short time-out can present a single
        // step larger than the whole time-out — that must trip at once,
        // not wait for a second quiet update.
        let mut d = MissingClockDetector::new(0.05, 50e-6);
        assert!(d.update(0.0, 200e-6), "single dt > timeout must trip");
    }

    #[test]
    fn missing_clock_edge_clears_before_timeout_check() {
        let mut d = MissingClockDetector::new(0.05, 100e-6);
        d.update(0.0, 99e-6);
        // The edge arrives together with a dt that would cross the
        // time-out: the clear happens before the comparison, so a live
        // clock can never be reported missing.
        assert!(!d.update(1.0, 500e-6));
        assert!(!d.tripped());
    }

    #[test]
    fn missing_clock_ignores_short_dropouts() {
        let mut d = MissingClockDetector::chip_default();
        for _ in 0..10 {
            assert!(!d.update(0.0, 9e-6)); // 9 µs quiet
            assert!(!d.update(0.5, 1e-6)); // edge resets
        }
    }

    #[test]
    fn low_amplitude_threshold() {
        let d = LowAmplitudeDetector::chip_default(2.7);
        assert!(d.evaluate(1.0, false));
        assert!(!d.evaluate(2.5, false));
        assert!(d.evaluate(2.5, true), "saturation flags regardless");
    }

    #[test]
    fn asymmetry_fires_on_unequal_amplitudes() {
        let mut d = AsymmetryDetector::new(1.65, 20e-6, 1e-8, 0.05);
        let f = 1e6;
        let mut fired = false;
        for k in 0..400_000 {
            let ph = 2.0 * std::f64::consts::PI * f * k as f64 * 1e-8;
            // a1 = 0.9, a2 = 0.5: strongly asymmetric.
            let v1 = 1.65 + 0.9 * ph.sin();
            let v2 = 1.65 - 0.5 * ph.sin();
            fired = d.update(v1, v2);
        }
        assert!(fired, "output {}", d.output());
    }

    #[test]
    fn asymmetry_quiet_on_symmetric_tank() {
        let mut d = AsymmetryDetector::new(1.65, 20e-6, 1e-8, 0.05);
        let f = 1e6;
        let mut fired = false;
        for k in 0..200_000 {
            let ph = 2.0 * std::f64::consts::PI * f * k as f64 * 1e-8;
            let v1 = 1.65 + 0.7 * ph.sin();
            let v2 = 1.65 - 0.7 * ph.sin();
            fired = d.update(v1, v2);
        }
        assert!(!fired, "output {}", d.output());
    }

    #[test]
    fn asymmetry_analytic_matches_waveform_version() {
        let d = AsymmetryDetector::new(1.65, 20e-6, 1e-8, 0.05);
        assert!(d.evaluate_amplitudes(0.9, 0.5));
        assert!(!d.evaluate_amplitudes(0.7, 0.7));
        assert!(!d.evaluate_amplitudes(0.7, 0.65));
    }

    #[test]
    fn detector_kind_display() {
        assert_eq!(
            DetectorKind::MissingOscillation.to_string(),
            "missing oscillations"
        );
        assert_eq!(DetectorKind::LowAmplitude.to_string(), "low amplitude");
        assert_eq!(DetectorKind::Asymmetry.to_string(), "LC1/LC2 asymmetry");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn missing_clock_rejects_zero_timeout() {
        let _ = MissingClockDetector::new(0.05, 0.0);
    }
}
