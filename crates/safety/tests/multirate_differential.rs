//! Differential harness for the multi-rate engine: every fault in the
//! FMEA catalog must produce the *same* discrete safety outcome —
//! triggered detector set, trip latencies, code saturation and the final
//! regulation code — whether the scenario runs multi-rate (the default)
//! or pinned to full cycle fidelity via the `LCOSC_FIDELITY` hatch.
//!
//! Like `solver_env_hatch` in the circuit crate, this lives in its own
//! integration binary because it mutates process environment variables,
//! which would race the parallel test runner inside a shared binary; for
//! the same reason every assertion lives in the single `#[test]` below.

use lcosc_core::OscillatorConfig;
use lcosc_safety::{run_scenario_with_trace, Fault};
use lcosc_trace::{DetectorId, MemorySink, Trace, TraceEvent};
use std::sync::Arc;

/// Shortened fast-test configuration (fewer ODE steps per regulation
/// tick) so the full-fidelity reference sweep stays affordable in debug
/// builds. Mirrors the `cycle_cfg` used by the core crate's sim tests.
fn short_cfg() -> OscillatorConfig {
    let mut cfg = OscillatorConfig::fast_test();
    cfg.tick_period = 0.2e-3;
    cfg.detector_tau = 15e-6;
    cfg
}

/// Everything a scenario decides discretely, plus the analog outcomes the
/// FMEA verdict (`is_safe`) derives from.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    detected: bool,
    safe: bool,
    triggered: Vec<DetectorId>,
    code_saturated: bool,
    final_code: u8,
    trip_latencies: Vec<(DetectorId, u64)>,
}

fn outcome(fault: Fault, cfg: &OscillatorConfig) -> Outcome {
    let sink = Arc::new(MemorySink::new());
    let r = run_scenario_with_trace(fault, cfg, &Trace::new(sink.clone()))
        .unwrap_or_else(|e| panic!("scenario {fault} failed: {e}"));
    let events = sink.snapshot();
    let final_code = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TraceEvent::CodeStep { new, .. } => Some(*new),
            _ => None,
        })
        .expect("every scenario ticks the regulation loop");
    let trip_latencies = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::DetectorTrip {
                detector,
                latency_ticks,
                ..
            } => Some((*detector, *latency_ticks)),
            _ => None,
        })
        .collect();
    Outcome {
        detected: r.detected,
        safe: r.is_safe(),
        triggered: r
            .triggered
            .iter()
            .map(|&k| lcosc_safety::detector_id(k))
            .collect(),
        code_saturated: r.code_saturated,
        final_code,
        trip_latencies,
    }
}

fn sweep(cfg: &OscillatorConfig) -> Vec<(Fault, Outcome)> {
    Fault::catalog()
        .into_iter()
        .map(|f| (f, outcome(f, cfg)))
        .collect()
}

/// Minimal deterministic generator (splitmix64) for the jittered
/// guard-window sweep — no RNG dependency, fixed seed, reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn multirate_catalog_matches_full_fidelity() {
    let cfg = short_cfg();

    // Reference sweep: the env hatch pins every construction in this
    // process to full cycle fidelity, overriding the scenario runner's
    // multi-rate default.
    std::env::set_var("LCOSC_FIDELITY", "full");
    let reference = sweep(&cfg);
    std::env::remove_var("LCOSC_FIDELITY");
    assert_eq!(reference.len(), 11, "FMEA catalog is exhaustive");

    // Every catalog fault must be caught (or safely regulated) by the
    // reference itself, otherwise the comparison below proves nothing.
    for (fault, out) in &reference {
        assert!(out.safe, "reference run of {fault} is unsafe: {out:?}");
    }

    // Multi-rate sweep (the default fidelity of the scenario runner):
    // discrete outcomes must match the full-fidelity reference 1:1.
    let multirate = sweep(&cfg);
    for ((fault, full), (_, mr)) in reference.iter().zip(&multirate) {
        assert_eq!(
            full, mr,
            "multi-rate diverged from full fidelity on {fault}"
        );
    }

    // An unrecognized hatch value leaves the multi-rate default alone.
    std::env::set_var("LCOSC_FIDELITY", "warp-speed");
    let dflt = outcome(Fault::DriverDead, &cfg);
    std::env::remove_var("LCOSC_FIDELITY");
    assert_eq!(dflt, multirate[10].1, "bad hatch value must be ignored");

    // Property: the exact placement of envelope↔cycle hand-offs is an
    // implementation detail — jittering the guard-window width and the
    // hand-off tolerances must never change a safety verdict, a trip
    // latency or a final code.
    let mut state = 0x5afe_ca7a_1005_c111u64;
    for trial in 0..3u32 {
        let mut jcfg = short_cfg();
        jcfg.multirate.guard_ticks = 1 + (splitmix64(&mut state) % 5) as u32;
        jcfg.multirate.handoff_rel_tol = 0.02 + (splitmix64(&mut state) % 9) as f64 * 0.01;
        jcfg.multirate.boundary_margin = 0.02 + (splitmix64(&mut state) % 7) as f64 * 0.01;
        let jittered = sweep(&jcfg);
        for ((fault, full), (_, jit)) in reference.iter().zip(&jittered) {
            assert_eq!(
                full, jit,
                "trial {trial} ({:?}) changed the outcome of {fault}",
                jcfg.multirate
            );
        }
    }
}
