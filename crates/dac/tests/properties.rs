//! Property-based tests on the DAC's structural invariants.

use lcosc_dac::{multiplication_factor, Code, ControlWord, DacMismatchParams, MismatchedDac};
use proptest::prelude::*;

fn any_code() -> impl Strategy<Value = Code> {
    (0u32..=127).prop_map(|v| Code::new(v).expect("in range"))
}

proptest! {
    /// Encode/decode round-trips every code.
    #[test]
    fn control_word_roundtrip(code in any_code()) {
        let w = ControlWord::encode(code);
        prop_assert_eq!(w.decode().expect("decodes"), code);
    }

    /// The encoder always produces legal bus patterns.
    #[test]
    fn bus_patterns_are_legal(code in any_code()) {
        let w = ControlWord::encode(code);
        prop_assert!(matches!(w.osc_d, 0b000 | 0b001 | 0b011 | 0b111));
        prop_assert!(matches!(w.osc_e, 0b0000 | 0b0001 | 0b0011 | 0b0111 | 0b1111));
        prop_assert!(w.osc_f < 128);
        // The fixed mirror legs always match 16·(gm_weight − 1).
        prop_assert_eq!(w.fixed_units(), 16 * (w.gm_weight() - 1));
    }

    /// The nominal staircase is strictly monotone and its output formula
    /// matches the closed form.
    #[test]
    fn staircase_strictly_monotone(code in any_code()) {
        let m = multiplication_factor(code);
        prop_assert_eq!(ControlWord::encode(code).output_units(), m);
        if code != Code::MAX {
            prop_assert!(multiplication_factor(code.increment()) > m);
        }
    }

    /// Exponential envelope: M doubles every 16 codes above 16.
    #[test]
    fn doubles_every_segment(code in 16u32..112) {
        let c = Code::new(code).expect("in range");
        let c16 = Code::new(code + 16).expect("in range");
        prop_assert_eq!(multiplication_factor(c16), 2 * multiplication_factor(c));
    }

    /// Sampled dies are reproducible and stay near nominal at default sigma.
    #[test]
    fn sampled_die_reproducible_and_bounded(seed in 0u64..1_000, code in any_code()) {
        let p = DacMismatchParams::default();
        let a = MismatchedDac::sampled(&p, seed);
        let b = MismatchedDac::sampled(&p, seed);
        prop_assert_eq!(a.units(code), b.units(code));
        let nominal = multiplication_factor(code) as f64;
        if nominal > 0.0 {
            prop_assert!(
                (a.units(code) / nominal - 1.0).abs() < 0.25,
                "code {}: {} vs {}", code, a.units(code), nominal
            );
        }
    }

    /// Top and bottom mirrors are independent but both near nominal, so the
    /// asymmetry stays bounded at default sigma.
    #[test]
    fn asymmetry_bounded(seed in 0u64..500, code in 16u32..=127) {
        let c = Code::new(code).expect("in range");
        let die = MismatchedDac::sampled(&DacMismatchParams::default(), seed);
        prop_assert!(die.asymmetry(c).abs() < 0.3, "{}", die.asymmetry(c));
    }

    /// The effective limit is never above either mirror.
    #[test]
    fn limit_is_weaker_mirror(seed in 0u64..500, code in any_code()) {
        let die = MismatchedDac::sampled(&DacMismatchParams::default(), seed);
        let u = die.units(code);
        prop_assert!(u <= die.top_units(code) + 1e-12);
        prop_assert!(u <= die.bottom_units(code) + 1e-12);
    }

    /// Code arithmetic saturates instead of wrapping.
    #[test]
    fn code_arithmetic_saturates(v in -300i32..300) {
        let c = Code::saturating(v);
        prop_assert!(c.value() <= 127);
        prop_assert!(c.increment().value() <= 127);
        prop_assert!(c.decrement() <= c);
        prop_assert!(c.increment() >= c);
    }
}
