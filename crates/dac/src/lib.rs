//! # lcosc-dac — the exponential PWL current-limitation DAC
//!
//! Bit-exact model of the 7-bit piece-wise-linear (PWL) approximated
//! exponential DAC that limits the oscillator driver current in
//! *P. Horsky, "LC Oscillator Driver for Safety Critical Applications",
//! DATE 2005* (paper §3, §5 and Table 1).
//!
//! The full 7-bit scale is divided into 8 segments; within each segment the
//! output-current step is constant and the step doubles from segment to
//! segment, so the staircase approximates `I₀·(1+δ)ⁿ` — a linear *voltage*
//! step per code needs an exponential *current* step (paper eq 5/6). The
//! hardware realizes this with three control buses generated from the 7-bit
//! code (Table 1):
//!
//! - `OscD<2:0>` — prescaler (×1/×2/×4/×8),
//! - `OscE<3:0>` — Gm-stage enables, which also switch the fixed mirror legs
//!   (16, 16, 32, 64 units),
//! - `OscF<6:0>` — the binary-weighted mirror bank, with the 4 data bits
//!   placed at a segment-dependent position.
//!
//! The output current in units of the LSB (12.5 µA on the real chip) is
//!
//! ```text
//! M(n) = prescale(OscD) · (16·(gm_weight(OscE) − 1) + OscF)
//! ```
//!
//! spanning 0…1984 — the paper's 0:1984 dynamic range, equivalent to an
//! 11-bit linear DAC.
//!
//! ## Example
//!
//! ```
//! use lcosc_dac::{Code, ControlWord};
//!
//! # fn main() -> Result<(), lcosc_dac::DacError> {
//! let code = Code::new(105)?;                  // the paper's POR preset
//! let word = ControlWord::encode(code);
//! assert_eq!(word.output_units(), 512 + 32 * 9); // segment 6, LSBs = 9 (Table 1)
//! assert_eq!(word.output_units(), lcosc_dac::multiplication_factor(code));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod code;
pub mod encoder;
pub mod exponential;
pub mod mismatch;
pub mod segment;
pub mod transfer;
pub mod yield_analysis;

pub use analysis::{LinearityReport, StepStatistics};
pub use code::Code;
pub use encoder::ControlWord;
pub use exponential::{equivalent_delta, equivalent_linear_bits, ideal_exponential};
pub use mismatch::{DacMismatchParams, MismatchedDac};
pub use segment::{Segment, SEGMENTS};
pub use transfer::{multiplication_factor, relative_step, TransferCurve};
pub use yield_analysis::{yield_analysis, yield_analysis_campaign, YieldReport, YieldRun};

/// Errors produced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DacError {
    /// A code outside `0..=127` was supplied.
    CodeOutOfRange {
        /// The offending raw value.
        value: u32,
    },
}

impl std::fmt::Display for DacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DacError::CodeOutOfRange { value } => {
                write!(f, "dac code {value} is outside 0..=127")
            }
        }
    }
}

impl std::error::Error for DacError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DacError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DacError::CodeOutOfRange { value: 200 };
        assert_eq!(e.to_string(), "dac code 200 is outside 0..=127");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DacError>();
    }
}
