//! Table 1 control-signal encoding.
//!
//! The 7-bit code is never applied to a single binary DAC; it is split into
//! three buses driving the prescaler (`OscD`), the Gm/fixed-mirror enables
//! (`OscE`) and the binary-weighted mirror bank (`OscF`). This module is the
//! bit-exact encoder/decoder for that mapping.

use crate::code::Code;
use crate::segment::{Segment, SEGMENTS};
use crate::{DacError, Result};

/// The three control buses of the oscillator current limitation (Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlWord {
    /// Prescaler bus `OscD<2:0>` (thermometer: 000, 001, 011, 111).
    pub osc_d: u8,
    /// Gm-switching bus `OscE<3:0>` (also enables the fixed mirror legs).
    pub osc_e: u8,
    /// Current-mirror bus `OscF<6:0>` (binary bank input).
    pub osc_f: u8,
}

impl ControlWord {
    /// Encodes a DAC code into the three buses (one row of Table 1).
    pub fn encode(code: Code) -> Self {
        let seg = Segment::of(code);
        ControlWord {
            osc_d: seg.osc_d,
            osc_e: seg.osc_e,
            osc_f: code.lsbs() << seg.oscf_shift,
        }
    }

    /// Prescaler multiple selected by `OscD` (1, 2, 4 or 8).
    ///
    /// # Panics
    ///
    /// Panics if `osc_d` is not one of the thermometer patterns
    /// 000/001/011/111.
    pub fn prescale(&self) -> u32 {
        match self.osc_d {
            0b000 => 1,
            0b001 => 2,
            0b011 => 4,
            0b111 => 8,
            other => panic!("invalid OscD pattern {other:#05b}"),
        }
    }

    /// Number of active Gm stages selected by `OscE`
    /// (`1 + E0 + E1 + 2·E2 + 4·E3`; the stages are ×1, ×1, ×2, ×4 plus the
    /// always-on base stage, Fig 7).
    pub fn gm_weight(&self) -> u32 {
        let e = self.osc_e as u32;
        1 + (e & 1) + ((e >> 1) & 1) + 2 * ((e >> 2) & 1) + 4 * ((e >> 3) & 1)
    }

    /// Fixed mirror current enabled by `OscE`, in units (the 16, 16, 32 and
    /// 64-unit legs follow the four enables).
    pub fn fixed_units(&self) -> u32 {
        let e = self.osc_e as u32;
        16 * (e & 1) + 16 * ((e >> 1) & 1) + 32 * ((e >> 2) & 1) + 64 * ((e >> 3) & 1)
    }

    /// Ideal output current in units of the LSB:
    /// `prescale · (fixed + OscF)`.
    pub fn output_units(&self) -> u32 {
        self.prescale() * (self.fixed_units() + self.osc_f as u32)
    }

    /// Recovers the DAC code this word was encoded from.
    ///
    /// # Errors
    ///
    /// Returns [`DacError::CodeOutOfRange`] when the bus combination does not
    /// correspond to any Table 1 row.
    pub fn decode(&self) -> Result<Code> {
        for seg in &SEGMENTS {
            if seg.osc_d == self.osc_d && seg.osc_e == self.osc_e {
                let mask_ok = self.osc_f & !(0x0F << seg.oscf_shift) == 0;
                let lsbs = (self.osc_f >> seg.oscf_shift) & 0x0F;
                // Two segments can share buses only through different
                // shifts; require exact placement.
                if mask_ok && lsbs << seg.oscf_shift == self.osc_f {
                    let candidate = Code::new((seg.index as u32) << 4 | lsbs as u32)?;
                    // Disambiguate segments sharing (OscD, OscE): pick the
                    // one whose shift reproduces the word.
                    if ControlWord::encode(candidate) == *self {
                        return Ok(candidate);
                    }
                }
            }
        }
        Err(DacError::CodeOutOfRange {
            value: ((self.osc_d as u32) << 16) | ((self.osc_e as u32) << 8) | self.osc_f as u32,
        })
    }
}

impl std::fmt::Display for ControlWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OscD={:03b} OscE={:04b} OscF={:07b}",
            self.osc_d, self.osc_e, self.osc_f
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 printed rows for the segment start codes (range min).
    #[test]
    fn encode_matches_table1_segment_starts() {
        let rows: [(u32, u8, u8, u32); 8] = [
            (0, 0b000, 0b0000, 0),
            (16, 0b000, 0b0001, 16),
            (32, 0b001, 0b0001, 32),
            (48, 0b001, 0b0011, 64),
            (64, 0b011, 0b0011, 128),
            (80, 0b011, 0b0111, 256),
            (96, 0b111, 0b0111, 512),
            (112, 0b111, 0b1111, 1024),
        ];
        for (code, osc_d, osc_e, units) in rows {
            let w = ControlWord::encode(Code::new(code).unwrap());
            assert_eq!(w.osc_d, osc_d, "code {code}");
            assert_eq!(w.osc_e, osc_e, "code {code}");
            assert_eq!(w.osc_f, 0, "code {code}: data bits are zero at start");
            assert_eq!(w.output_units(), units, "code {code}");
        }
    }

    #[test]
    fn oscf_places_nibble_per_segment() {
        // Table 1 "OscF<6:0>" column: nibble at bit 0 (segs 0-2), bit 1
        // (segs 3-4), bit 2 (segs 5-6), bit 3 (seg 7).
        let cases = [
            (0x05u32, 0b0000101u8), // seg 0, B=5
            (0x15, 0b0000101),      // seg 1, B=5
            (0x25, 0b0000101),      // seg 2, B=5
            (0x35, 0b0001010),      // seg 3, B=5 << 1
            (0x45, 0b0001010),      // seg 4
            (0x55, 0b0010100),      // seg 5, B=5 << 2
            (0x65, 0b0010100),      // seg 6
            (0x75, 0b0101000),      // seg 7, B=5 << 3
        ];
        for (code, oscf) in cases {
            let w = ControlWord::encode(Code::new(code).unwrap());
            assert_eq!(w.osc_f, oscf, "code {code:#x}");
        }
    }

    #[test]
    fn output_units_match_closed_form_everywhere() {
        for code in Code::all() {
            let seg = Segment::of(code);
            let expected = seg.range_min + code.lsbs() as u32 * seg.step;
            assert_eq!(
                ControlWord::encode(code).output_units(),
                expected,
                "code {code}"
            );
        }
    }

    #[test]
    fn full_scale_is_1984() {
        assert_eq!(ControlWord::encode(Code::MAX).output_units(), 1984);
    }

    #[test]
    fn decode_roundtrips_all_codes() {
        for code in Code::all() {
            let w = ControlWord::encode(code);
            assert_eq!(w.decode().unwrap(), code, "code {code}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let bad = ControlWord {
            osc_d: 0b101, // not a thermometer pattern
            osc_e: 0,
            osc_f: 0,
        };
        assert!(bad.decode().is_err());
        let bad2 = ControlWord {
            osc_d: 0b000,
            osc_e: 0b0000,
            osc_f: 0b1111111, // segment 0 only drives the low nibble
        };
        assert!(bad2.decode().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid OscD")]
    fn prescale_rejects_invalid_pattern() {
        let w = ControlWord {
            osc_d: 0b010,
            osc_e: 0,
            osc_f: 0,
        };
        let _ = w.prescale();
    }

    #[test]
    fn gm_weights_cover_table_column() {
        // Active Gm stages column: 1,2,2,3,3,5,5,9.
        let weights: Vec<u32> = (0..8)
            .map(|s| ControlWord::encode(Code::new(s << 4).unwrap()).gm_weight())
            .collect();
        assert_eq!(weights, [1, 2, 2, 3, 3, 5, 5, 9]);
    }

    #[test]
    fn display_formats_buses() {
        let w = ControlWord::encode(Code::new(105).unwrap());
        assert_eq!(w.to_string(), "OscD=111 OscE=0111 OscF=0100100");
    }
}
