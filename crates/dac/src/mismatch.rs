//! Mismatched ("as-fabricated") DAC model — the source of the paper's
//! measured Fig 13/14 deviations from the ideal staircase.
//!
//! The current limitation is composed from three matched-device groups
//! (Fig 5/6): a prescaler built from three cascaded ×2 stages, the fixed
//! mirror legs (16, 16, 32, 64 units) and a 7-bit binary-weighted bank.
//! Ratio errors *within a segment* cancel (the same legs serve every code),
//! but *across segment boundaries* different legs take over, which is why
//! the measured relative step (Fig 14) spikes at the boundaries and can even
//! go negative — the paper's chip shows a negative step at code 96, where
//! the prescaler switches from ×4 to ×8. The DAC stays usable because the
//! regulation window is wider than the worst step (§4).

use crate::code::Code;
use crate::encoder::ControlWord;
use lcosc_device::mirror::BinaryWeightedBank;
use lcosc_device::mismatch::MismatchModel;
use lcosc_num::units::Amps;

/// Mismatch magnitudes for one sampled die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacMismatchParams {
    /// Relative sigma of each ×2 prescaler stage.
    pub sigma_prescale: f64,
    /// Relative sigma of a unit device in the fixed mirror legs.
    pub sigma_fixed: f64,
    /// Relative sigma of a unit device in the binary bank.
    pub sigma_unit: f64,
    /// Unit (LSB) current in amperes.
    pub lsb_amps: f64,
}

impl Default for DacMismatchParams {
    fn default() -> Self {
        DacMismatchParams {
            sigma_prescale: 0.01,
            sigma_fixed: 0.008,
            sigma_unit: 0.01,
            lsb_amps: 12.5e-6,
        }
    }
}

/// A DAC with sampled (or explicitly set) device ratios for one die.
///
/// Top and bottom current mirrors are sampled independently; the effective
/// current *limit* is the weaker of the two (the smaller mirror clips the
/// swing first), and their imbalance is exposed as
/// [`MismatchedDac::asymmetry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchedDac {
    /// Actual ratios of the three cascaded ×2 prescaler stages.
    prescale_stage: [f64; 3],
    fixed_top: [f64; 4],
    fixed_bottom: [f64; 4],
    bank_top: BinaryWeightedBank,
    bank_bottom: BinaryWeightedBank,
    lsb: f64,
}

/// Nominal fixed-leg weights in units.
const FIXED_NOMINAL: [f64; 4] = [16.0, 16.0, 32.0, 64.0];

impl MismatchedDac {
    /// An ideal die: every ratio exactly nominal.
    ///
    /// # Panics
    ///
    /// Panics if `lsb_amps` is not positive.
    pub fn ideal(lsb_amps: f64) -> Self {
        assert!(lsb_amps > 0.0, "lsb current must be positive");
        MismatchedDac {
            prescale_stage: [2.0; 3],
            fixed_top: FIXED_NOMINAL,
            fixed_bottom: FIXED_NOMINAL,
            bank_top: BinaryWeightedBank::ideal(7),
            bank_bottom: BinaryWeightedBank::ideal(7),
            lsb: lsb_amps,
        }
    }

    /// Samples a die from `params` with the given seed.
    pub fn sampled(params: &DacMismatchParams, seed: u64) -> Self {
        assert!(params.lsb_amps > 0.0, "lsb current must be positive");
        let mut die = MismatchModel::new(1.0, seed); // unit sigma; scaled below
        let mut stage = [0.0f64; 3];
        for s in &mut stage {
            *s = 2.0 * (1.0 + params.sigma_prescale * die.standard_normal());
        }
        let fixed = |die: &mut MismatchModel| {
            let mut f = [0.0f64; 4];
            for (k, nom) in FIXED_NOMINAL.iter().enumerate() {
                // Pelgrom: error of an N-unit leg shrinks as 1/sqrt(N).
                let sigma = params.sigma_fixed / (nom / 16.0).sqrt();
                f[k] = nom * (1.0 + sigma * die.standard_normal());
            }
            f
        };
        let fixed_top = fixed(&mut die);
        let fixed_bottom = fixed(&mut die);
        let mut unit_die = MismatchModel::new(params.sigma_unit, seed.wrapping_add(1));
        let bank_top = BinaryWeightedBank::sampled(7, &mut unit_die);
        let bank_bottom = BinaryWeightedBank::sampled(7, &mut unit_die);
        MismatchedDac {
            prescale_stage: stage,
            fixed_top,
            fixed_bottom,
            bank_top,
            bank_bottom,
            lsb: params.lsb_amps,
        }
    }

    /// The "reference die" used throughout the benches: deterministic skews
    /// tuned so the measured curves show the paper's signature artifacts —
    /// visible step spikes at segment boundaries and a **negative step at
    /// code 96** (the ×4 → ×8 prescaler hand-over), as in Fig 14.
    pub fn reference_die() -> Self {
        let mut dac = MismatchedDac::ideal(12.5e-6);
        // Third ×2 stage 3.5 % low, second 1 % high: code 96 lands below
        // code 95 while every in-segment step stays positive.
        dac.prescale_stage = [2.0, 2.02, 1.93];
        // Mild fixed-leg skew for boundary texture at codes 16/48/80/112.
        dac.fixed_top = [16.10, 15.95, 32.25, 63.40];
        dac.fixed_bottom = [16.05, 16.02, 32.10, 63.55];
        dac
    }

    /// Unit (LSB) current in amperes.
    pub fn lsb(&self) -> f64 {
        self.lsb
    }

    /// Output of one mirror side in units, honoring the Table 1 mapping
    /// with this die's actual ratios.
    fn side_units(&self, code: Code, fixed: &[f64; 4], bank: &BinaryWeightedBank) -> f64 {
        let w = ControlWord::encode(code);
        let mut prescale = 1.0;
        for (bit, ratio) in self.prescale_stage.iter().enumerate() {
            if w.osc_d & (1 << bit) != 0 {
                prescale *= ratio;
            }
        }
        let fixed_sum: f64 = (0..4)
            .filter(|bit| w.osc_e & (1 << bit) != 0)
            .map(|bit| fixed[bit])
            .sum();
        prescale * (fixed_sum + bank.multiplication(w.osc_f as u32))
    }

    /// Top-mirror output in units.
    pub fn top_units(&self, code: Code) -> f64 {
        self.side_units(code, &self.fixed_top, &self.bank_top)
    }

    /// Bottom-mirror output in units.
    pub fn bottom_units(&self, code: Code) -> f64 {
        self.side_units(code, &self.fixed_bottom, &self.bank_bottom)
    }

    /// Effective current-limit in units: the weaker mirror clips first.
    pub fn units(&self, code: Code) -> f64 {
        self.top_units(code).min(self.bottom_units(code))
    }

    /// Effective current limit in amperes (Fig 13's y-axis).
    pub fn current(&self, code: Code) -> Amps {
        Amps(self.units(code) * self.lsb)
    }

    /// Top/bottom mirror imbalance `top/bottom − 1` (drives the output DC
    /// shift a real part would show).
    pub fn asymmetry(&self, code: Code) -> f64 {
        let b = self.bottom_units(code);
        if b == 0.0 {
            0.0
        } else {
            self.top_units(code) / b - 1.0
        }
    }

    /// Measured relative step `(I(n+1) − I(n)) / I(n)` (Fig 14's y-axis).
    ///
    /// Returns `None` at the last code or where `I(n)` is zero.
    pub fn relative_step(&self, code: Code) -> Option<f64> {
        if code == Code::MAX {
            return None;
        }
        let i0 = self.units(code);
        if i0 <= 0.0 {
            return None;
        }
        Some((self.units(code.increment()) - i0) / i0)
    }

    /// Codes at which the measured transfer is non-monotonic
    /// (`I(n+1) < I(n)`), i.e. where Fig 14 would show a negative value.
    pub fn non_monotonic_codes(&self) -> Vec<u8> {
        Code::all()
            .filter(|&c| c != Code::MAX)
            .filter(|&c| self.units(c.increment()) < self.units(c))
            .map(Code::value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::multiplication_factor;

    #[test]
    fn ideal_die_reproduces_nominal_staircase() {
        let dac = MismatchedDac::ideal(12.5e-6);
        for code in Code::all() {
            assert!(
                (dac.units(code) - multiplication_factor(code) as f64).abs() < 1e-9,
                "code {code}"
            );
            assert_eq!(dac.asymmetry(code), 0.0);
        }
    }

    #[test]
    fn ideal_die_is_monotone() {
        assert!(MismatchedDac::ideal(12.5e-6)
            .non_monotonic_codes()
            .is_empty());
    }

    #[test]
    fn reference_die_is_non_monotonic_exactly_at_96() {
        let dac = MismatchedDac::reference_die();
        assert_eq!(
            dac.non_monotonic_codes(),
            vec![95],
            "step 95 -> 96 is negative"
        );
        let s = dac.relative_step(Code::new(95).unwrap()).unwrap();
        assert!(s < 0.0, "step at 95->96 is {s}");
    }

    #[test]
    fn reference_die_tracks_nominal_within_5_percent() {
        let dac = MismatchedDac::reference_die();
        for code in Code::all().skip(1) {
            let nom = multiplication_factor(code) as f64;
            let meas = dac.units(code);
            assert!(
                (meas / nom - 1.0).abs() < 0.05,
                "code {code}: {meas} vs {nom}"
            );
        }
    }

    #[test]
    fn reference_die_full_scale_near_24_8_ma() {
        let dac = MismatchedDac::reference_die();
        let fs = dac.current(Code::MAX).value();
        assert!((fs / 24.8e-3 - 1.0).abs() < 0.05, "full scale {fs}");
    }

    #[test]
    fn sampled_die_is_reproducible() {
        let p = DacMismatchParams::default();
        let a = MismatchedDac::sampled(&p, 42);
        let b = MismatchedDac::sampled(&p, 42);
        for code in [Code::MIN, Code::new(64).unwrap(), Code::MAX] {
            assert_eq!(a.units(code), b.units(code));
        }
    }

    #[test]
    fn sampled_die_close_to_nominal() {
        let dac = MismatchedDac::sampled(&DacMismatchParams::default(), 7);
        for code in Code::all().skip(8) {
            let nom = multiplication_factor(code) as f64;
            let meas = dac.units(code);
            assert!(
                (meas / nom - 1.0).abs() < 0.15,
                "code {code}: {meas} vs {nom}"
            );
        }
    }

    #[test]
    fn asymmetry_is_small_but_nonzero_on_sampled_die() {
        let dac = MismatchedDac::sampled(&DacMismatchParams::default(), 3);
        let a = dac.asymmetry(Code::new(100).unwrap());
        assert!(a.abs() < 0.1);
        assert_ne!(a, 0.0);
    }

    #[test]
    fn in_segment_steps_always_positive_on_reference_die() {
        let dac = MismatchedDac::reference_die();
        for code in Code::all().filter(|c| c.value() != 127) {
            // Only boundary codes (lsbs == 15) may step backwards.
            if code.lsbs() != 15 {
                let s = dac.relative_step(code);
                if let Some(s) = s {
                    assert!(s > 0.0, "code {code}: step {s}");
                }
            }
        }
    }

    #[test]
    fn relative_step_none_at_max_and_zero() {
        let dac = MismatchedDac::reference_die();
        assert!(dac.relative_step(Code::MAX).is_none());
        assert!(dac.relative_step(Code::MIN).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ideal_rejects_zero_lsb() {
        let _ = MismatchedDac::ideal(0.0);
    }
}
