//! The 7-bit DAC code.

use crate::{DacError, Result};

/// A validated 7-bit DAC code (`0..=127`).
///
/// Codes decompose into a 3-bit segment (MSBs) and a 4-bit in-segment value
/// (LSBs) — the paper's Table 1 derives all three control buses from this
/// split.
///
/// # Example
///
/// ```
/// use lcosc_dac::Code;
///
/// # fn main() -> Result<(), lcosc_dac::DacError> {
/// let c = Code::new(105)?;
/// assert_eq!(c.segment_index(), 6);
/// assert_eq!(c.lsbs(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Code(u8);

impl Code {
    /// Smallest code (output current 0).
    pub const MIN: Code = Code(0);
    /// Largest code (output current 1984 units).
    pub const MAX: Code = Code(127);
    /// The paper's power-on-reset preset (§4): large enough to start any
    /// supported tank, ~40 % of maximum current consumption.
    pub const POR_PRESET: Code = Code(105);

    /// Creates a code, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`DacError::CodeOutOfRange`] for values above 127.
    pub fn new(value: u32) -> Result<Self> {
        if value > 127 {
            return Err(DacError::CodeOutOfRange { value });
        }
        Ok(Code(value as u8))
    }

    /// Creates a code, clamping to `0..=127`.
    pub fn saturating(value: i32) -> Self {
        Code(value.clamp(0, 127) as u8)
    }

    /// Raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Segment index (3 MSBs), `0..=7`.
    pub fn segment_index(self) -> u8 {
        self.0 >> 4
    }

    /// In-segment value (4 LSBs), `0..=15`.
    pub fn lsbs(self) -> u8 {
        self.0 & 0x0F
    }

    /// Next code up, saturating at [`Code::MAX`].
    pub fn increment(self) -> Self {
        Code(self.0.saturating_add(1).min(127))
    }

    /// Next code down, saturating at [`Code::MIN`].
    pub fn decrement(self) -> Self {
        Code(self.0.saturating_sub(1))
    }

    /// Iterator over all 128 codes in ascending order.
    pub fn all() -> impl Iterator<Item = Code> {
        (0..=127u8).map(Code)
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` honors the caller's width/alignment flags.
        f.pad(&self.0.to_string())
    }
}

impl From<Code> for u8 {
    fn from(c: Code) -> u8 {
        c.0
    }
}

impl TryFrom<u32> for Code {
    type Error = DacError;
    fn try_from(v: u32) -> Result<Self> {
        Code::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Code::new(0).is_ok());
        assert!(Code::new(127).is_ok());
        assert_eq!(
            Code::new(128).unwrap_err(),
            DacError::CodeOutOfRange { value: 128 }
        );
    }

    #[test]
    fn segment_and_lsb_split() {
        let c = Code::new(0x5A).unwrap(); // 90 = segment 5, lsbs 10
        assert_eq!(c.segment_index(), 5);
        assert_eq!(c.lsbs(), 10);
        assert_eq!(Code::MIN.segment_index(), 0);
        assert_eq!(Code::MAX.segment_index(), 7);
        assert_eq!(Code::MAX.lsbs(), 15);
    }

    #[test]
    fn por_preset_is_105() {
        assert_eq!(Code::POR_PRESET.value(), 105);
        assert_eq!(Code::POR_PRESET.segment_index(), 6);
    }

    #[test]
    fn increment_decrement_saturate() {
        assert_eq!(Code::MAX.increment(), Code::MAX);
        assert_eq!(Code::MIN.decrement(), Code::MIN);
        assert_eq!(Code::new(5).unwrap().increment().value(), 6);
        assert_eq!(Code::new(5).unwrap().decrement().value(), 4);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Code::saturating(-3), Code::MIN);
        assert_eq!(Code::saturating(500), Code::MAX);
        assert_eq!(Code::saturating(42).value(), 42);
    }

    #[test]
    fn all_covers_128_codes_ascending() {
        let v: Vec<Code> = Code::all().collect();
        assert_eq!(v.len(), 128);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn conversions() {
        let c = Code::try_from(100u32).unwrap();
        assert_eq!(u8::from(c), 100);
        assert_eq!(c.to_string(), "100");
    }
}
