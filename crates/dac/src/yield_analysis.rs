//! Monte-Carlo yield analysis.
//!
//! The paper's §4 argument — "The regulation loop allows a relaxed
//! differential non-linearity of the DAC. The maximum step must only remain
//! below a limit given by the regulation window and the converter can even
//! be non-monotonic" — is a *yield* argument: a conventional DAC spec
//! (monotonicity, tight DNL) would scrap dies that regulate perfectly well.
//! This module quantifies that by sampling many dies and scoring them
//! against both acceptance criteria.

use crate::analysis::LinearityReport;
use crate::mismatch::{DacMismatchParams, MismatchedDac};

/// Yield of a die population under two acceptance criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldReport {
    /// Dies sampled.
    pub dies: u32,
    /// Fraction passing a conventional spec: strictly monotonic.
    pub monotonic_yield: f64,
    /// Fraction usable by the regulation loop: max step below the window
    /// (monotonicity not required).
    pub regulation_yield: f64,
    /// Worst |INL| observed across the population (relative).
    pub worst_inl: f64,
    /// Mean number of non-monotonic codes per die.
    pub mean_non_monotonic: f64,
}

/// Samples `dies` dies with the given mismatch and scores them against a
/// regulation window of total relative width `window_rel_width`.
///
/// Deterministic: die `k` uses seed `seed_base + k`.
///
/// # Panics
///
/// Panics if `dies == 0` or `window_rel_width` is not positive.
pub fn yield_analysis(
    params: &DacMismatchParams,
    dies: u32,
    seed_base: u64,
    window_rel_width: f64,
) -> YieldReport {
    assert!(dies > 0, "need at least one die");
    assert!(window_rel_width > 0.0, "window must be positive");
    let mut monotonic = 0u32;
    let mut regulable = 0u32;
    let mut worst_inl = 0.0f64;
    let mut non_monotonic_total = 0usize;
    for k in 0..dies {
        let die = MismatchedDac::sampled(params, seed_base + k as u64);
        let report = LinearityReport::analyze(&die);
        if report.non_monotonic.is_empty() {
            monotonic += 1;
        }
        if report.regulation_compatible(window_rel_width) {
            regulable += 1;
        }
        non_monotonic_total += report.non_monotonic.len();
        if report.inl_worst_rel.abs() > worst_inl {
            worst_inl = report.inl_worst_rel.abs();
        }
    }
    YieldReport {
        dies,
        monotonic_yield: monotonic as f64 / dies as f64,
        regulation_yield: regulable as f64 / dies as f64,
        worst_inl,
        mean_non_monotonic: non_monotonic_total as f64 / dies as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_process_yields_well_on_both_criteria() {
        let r = yield_analysis(&DacMismatchParams::default(), 200, 1, 0.15);
        assert!(r.monotonic_yield > 0.7, "monotonic {}", r.monotonic_yield);
        assert_eq!(r.regulation_yield, 1.0, "regulation {}", r.regulation_yield);
        assert!(r.worst_inl < 0.1, "inl {}", r.worst_inl);
    }

    #[test]
    fn sloppy_process_still_regulates_when_monotonicity_dies() {
        // The paper's core yield argument: push the mismatch until
        // monotonicity yield collapses — the regulation criterion barely
        // moves because single-step errors stay below the window.
        let sloppy = DacMismatchParams {
            sigma_prescale: 0.05,
            sigma_fixed: 0.04,
            sigma_unit: 0.05,
            ..DacMismatchParams::default()
        };
        let r = yield_analysis(&sloppy, 200, 7, 0.15);
        assert!(
            r.monotonic_yield < 0.7,
            "monotonicity should suffer: {}",
            r.monotonic_yield
        );
        assert!(
            r.regulation_yield > r.monotonic_yield + 0.2,
            "regulation {} vs monotonic {}",
            r.regulation_yield,
            r.monotonic_yield
        );
    }

    #[test]
    fn narrow_window_reduces_regulation_yield() {
        let sloppy = DacMismatchParams {
            sigma_prescale: 0.08,
            sigma_fixed: 0.06,
            sigma_unit: 0.08,
            ..DacMismatchParams::default()
        };
        let wide = yield_analysis(&sloppy, 150, 3, 0.20);
        let narrow = yield_analysis(&sloppy, 150, 3, 0.08);
        assert!(
            wide.regulation_yield >= narrow.regulation_yield,
            "wide {} vs narrow {}",
            wide.regulation_yield,
            narrow.regulation_yield
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let a = yield_analysis(&DacMismatchParams::default(), 50, 11, 0.15);
        let b = yield_analysis(&DacMismatchParams::default(), 50, 11, 0.15);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn rejects_zero_dies() {
        let _ = yield_analysis(&DacMismatchParams::default(), 0, 0, 0.15);
    }
}
