//! Monte-Carlo yield analysis.
//!
//! The paper's §4 argument — "The regulation loop allows a relaxed
//! differential non-linearity of the DAC. The maximum step must only remain
//! below a limit given by the regulation window and the converter can even
//! be non-monotonic" — is a *yield* argument: a conventional DAC spec
//! (monotonicity, tight DNL) would scrap dies that regulate perfectly well.
//! This module quantifies that by sampling many dies and scoring them
//! against both acceptance criteria.

use crate::analysis::LinearityReport;
use crate::mismatch::{DacMismatchParams, MismatchedDac};
use lcosc_campaign::{CampaignBatch, CampaignStats, Json};

/// Yield of a die population under two acceptance criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldReport {
    /// Dies sampled.
    pub dies: u32,
    /// Fraction passing a conventional spec: strictly monotonic.
    pub monotonic_yield: f64,
    /// Fraction usable by the regulation loop: max step below the window
    /// (monotonicity not required).
    pub regulation_yield: f64,
    /// Worst |INL| observed across the population (relative).
    pub worst_inl: f64,
    /// Mean number of non-monotonic codes per die.
    pub mean_non_monotonic: f64,
}

impl YieldReport {
    /// Serializes the summary as an ordered [`Json`] tree with byte-stable
    /// float formatting (golden-file and `repro` report payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("dies", Json::from(self.dies)),
            ("monotonic_yield", Json::from(self.monotonic_yield)),
            ("regulation_yield", Json::from(self.regulation_yield)),
            ("worst_inl", Json::from(self.worst_inl)),
            ("mean_non_monotonic", Json::from(self.mean_non_monotonic)),
        ])
    }
}

/// A yield report paired with the execution statistics of the Monte-Carlo
/// campaign that produced it. Only [`CampaignStats::wall`] is
/// machine-dependent; the report is thread-count invariant.
#[derive(Debug, Clone)]
pub struct YieldRun {
    /// The population summary.
    pub report: YieldReport,
    /// Wall-clock / job-count statistics.
    pub stats: CampaignStats,
}

/// Per-die metrics produced by one Monte-Carlo job.
struct DieOutcome {
    monotonic: bool,
    regulable: bool,
    non_monotonic: usize,
    inl_abs: f64,
}

/// Samples `dies` dies with the given mismatch and scores them against a
/// regulation window of total relative width `window_rel_width`.
///
/// Deterministic: die `k` uses the campaign engine's hoisted seed
/// `job_seed(seed_base, k)`, derived at scheduling time — never inside the
/// worker — so no batching or threading choice can perturb the draws.
///
/// # Panics
///
/// Panics if `dies == 0` or `window_rel_width` is not positive.
pub fn yield_analysis(
    params: &DacMismatchParams,
    dies: u32,
    seed_base: u64,
    window_rel_width: f64,
) -> YieldReport {
    yield_analysis_campaign(params, dies, seed_base, window_rel_width, 1).report
}

/// [`yield_analysis`] as an explicit parallel campaign: die draws fan out
/// over `threads` worker threads (`1` = serial, `0` = all cores).
///
/// Die `k` draws from `job_seed(seed_base, k)` — hoisted into the die's
/// [`lcosc_campaign::JobCtx`] when the batch plan is built, not re-derived
/// inside the worker — and the population metrics are folded in die order,
/// so the returned [`YieldReport`] is bit-identical for every thread count
/// and batch width. The `seed-stability` golden pins the first hoisted
/// seeds so the mapping can never drift silently.
///
/// # Panics
///
/// Panics if `dies == 0` or `window_rel_width` is not positive.
pub fn yield_analysis_campaign(
    params: &DacMismatchParams,
    dies: u32,
    seed_base: u64,
    window_rel_width: f64,
    threads: usize,
) -> YieldRun {
    assert!(dies > 0, "need at least one die");
    assert!(window_rel_width > 0.0, "window must be positive");
    let ((monotonic, regulable, non_monotonic_total, worst_inl), stats) =
        CampaignBatch::new("dac-yield", (0..dies).collect::<Vec<u32>>())
            .seed(seed_base)
            .threads(threads)
            .run_reduce(
                |_| 0,
                |ctxs, _dies| {
                    ctxs.iter()
                        .map(|ctx| {
                            // The die's seed comes from the scheduler-hoisted
                            // context, not from re-deriving `seed_base + k` in
                            // the worker.
                            let die = MismatchedDac::sampled(params, ctx.seed);
                            let report = LinearityReport::analyze(&die);
                            DieOutcome {
                                monotonic: report.non_monotonic.is_empty(),
                                regulable: report.regulation_compatible(window_rel_width),
                                non_monotonic: report.non_monotonic.len(),
                                inl_abs: report.inl_worst_rel.abs(),
                            }
                        })
                        .collect()
                },
                (0u32, 0u32, 0usize, 0.0f64),
                |(mut mono, mut reg, mut nm, mut worst), die| {
                    if die.monotonic {
                        mono += 1;
                    }
                    if die.regulable {
                        reg += 1;
                    }
                    nm += die.non_monotonic;
                    if die.inl_abs > worst {
                        worst = die.inl_abs;
                    }
                    (mono, reg, nm, worst)
                },
            );
    YieldRun {
        report: YieldReport {
            dies,
            monotonic_yield: f64::from(monotonic) / f64::from(dies),
            regulation_yield: f64::from(regulable) / f64::from(dies),
            worst_inl,
            mean_non_monotonic: non_monotonic_total as f64 / f64::from(dies),
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_process_yields_well_on_both_criteria() {
        let r = yield_analysis(&DacMismatchParams::default(), 200, 1, 0.15);
        assert!(r.monotonic_yield > 0.7, "monotonic {}", r.monotonic_yield);
        assert_eq!(r.regulation_yield, 1.0, "regulation {}", r.regulation_yield);
        assert!(r.worst_inl < 0.1, "inl {}", r.worst_inl);
    }

    #[test]
    fn sloppy_process_still_regulates_when_monotonicity_dies() {
        // The paper's core yield argument: push the mismatch until
        // monotonicity yield collapses — the regulation criterion barely
        // moves because single-step errors stay below the window.
        let sloppy = DacMismatchParams {
            sigma_prescale: 0.05,
            sigma_fixed: 0.04,
            sigma_unit: 0.05,
            ..DacMismatchParams::default()
        };
        let r = yield_analysis(&sloppy, 200, 7, 0.15);
        assert!(
            r.monotonic_yield < 0.7,
            "monotonicity should suffer: {}",
            r.monotonic_yield
        );
        assert!(
            r.regulation_yield > r.monotonic_yield + 0.2,
            "regulation {} vs monotonic {}",
            r.regulation_yield,
            r.monotonic_yield
        );
    }

    #[test]
    fn narrow_window_reduces_regulation_yield() {
        let sloppy = DacMismatchParams {
            sigma_prescale: 0.08,
            sigma_fixed: 0.06,
            sigma_unit: 0.08,
            ..DacMismatchParams::default()
        };
        let wide = yield_analysis(&sloppy, 150, 3, 0.20);
        let narrow = yield_analysis(&sloppy, 150, 3, 0.08);
        assert!(
            wide.regulation_yield >= narrow.regulation_yield,
            "wide {} vs narrow {}",
            wide.regulation_yield,
            narrow.regulation_yield
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let a = yield_analysis(&DacMismatchParams::default(), 50, 11, 0.15);
        let b = yield_analysis(&DacMismatchParams::default(), 50, 11, 0.15);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_serial() {
        let params = DacMismatchParams::default();
        let serial = yield_analysis(&params, 120, 11, 0.15);
        for threads in [2, 8] {
            let par = yield_analysis_campaign(&params, 120, 11, 0.15, threads);
            assert_eq!(par.report, serial, "threads = {threads}");
            assert_eq!(
                par.report.to_json().render(),
                serial.to_json().render(),
                "threads = {threads}"
            );
            assert_eq!(par.stats.jobs, 120);
        }
    }

    #[test]
    fn die_seed_schedule_is_pinned() {
        // Seed-stability golden: die `k` must draw from the engine's
        // `job_seed(seed_base, k)`, hoisted at plan time. If either the
        // seed derivation or the hoist point drifts, every yield number in
        // the repo's goldens silently shifts — this pin makes that loud.
        let expected: Vec<u64> = (0..4).map(|k| lcosc_campaign::job_seed(1, k)).collect();
        assert_eq!(
            expected,
            vec![
                4255832498587421698,
                14768775971271679275,
                1580213099363181288,
                10922158750852487306,
            ]
        );
        for (k, &seed) in expected.iter().enumerate() {
            let direct = LinearityReport::analyze(&MismatchedDac::sampled(
                &DacMismatchParams::default(),
                seed,
            ));
            let via_campaign = yield_analysis(&DacMismatchParams::default(), k as u32 + 1, 1, 0.15);
            // The k-th die's INL must be visible in the population worst
            // when it is the worst so far; cheaper and stronger: one-die
            // population == the direct draw.
            if k == 0 {
                let one = yield_analysis(&DacMismatchParams::default(), 1, 1, 0.15);
                assert_eq!(one.worst_inl, direct.inl_worst_rel.abs());
            }
            assert!(via_campaign.dies == k as u32 + 1);
        }
    }

    #[test]
    fn batched_and_solo_scheduling_are_bit_identical() {
        // The LCOSC_BATCH=off hatch (pinned here via the builder override
        // inside the campaign — exercised through thread counts, which
        // change unit claim order) must not perturb any population metric.
        let params = DacMismatchParams::default();
        let a = yield_analysis_campaign(&params, 70, 9, 0.15, 1).report;
        let b = yield_analysis_campaign(&params, 70, 9, 0.15, 4).report;
        assert_eq!(a, b);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn json_summary_is_ordered_and_complete() {
        let j = yield_analysis(&DacMismatchParams::default(), 10, 3, 0.15)
            .to_json()
            .render();
        assert!(j.starts_with("{\"dies\":10,\"monotonic_yield\":"), "{j}");
        assert!(j.contains("\"worst_inl\":"));
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn rejects_zero_dies() {
        let _ = yield_analysis(&DacMismatchParams::default(), 0, 0, 0.15);
    }
}
