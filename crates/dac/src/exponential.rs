//! The ideal exponential law the PWL staircase approximates.
//!
//! Amplitude regulation with a constant *relative* voltage step needs an
//! exponential current control `Iₙ = I₀·(1+δ)ⁿ` (paper eq 5/6). The PWL
//! staircase doubles every 16 codes, so the equivalent per-code ratio is
//! `(1+δ) = 2^(1/16)`, i.e. δ ≈ 4.43 %.

use crate::code::Code;
use crate::transfer::multiplication_factor;

/// Per-code growth factor δ of the equivalent ideal exponential DAC:
/// `(1+δ)^16 = 2` ⇒ δ = 2^(1/16) − 1 ≈ 4.427 %.
pub fn equivalent_delta() -> f64 {
    2f64.powf(1.0 / 16.0) - 1.0
}

/// Ideal exponential multiplication factor matched to the staircase at the
/// segment-start codes: `M_ideal(n) = 16·2^((n−16)/16)` for `n ≥ 1`
/// (and 0 at code 0, where the staircase is linear by construction).
pub fn ideal_exponential(code: Code) -> f64 {
    if code == Code::MIN {
        return 0.0;
    }
    16.0 * 2f64.powf((code.value() as f64 - 16.0) / 16.0)
}

/// Number of bits a *linear* DAC would need to cover the same dynamic range
/// at the resolution of the finest step: `ceil(log2(full_scale + 1))`.
///
/// The staircase spans 0..=1984 with unit resolution at the bottom, so this
/// returns 11 — the paper's "corresponding to an 11-bit linear DAC".
pub fn equivalent_linear_bits() -> u32 {
    let full_scale = multiplication_factor(Code::MAX);
    32 - full_scale.leading_zeros()
}

/// Worst-case relative error of the PWL staircase against the matched ideal
/// exponential over codes `from..=127`.
///
/// # Panics
///
/// Panics if `from == 0` (the ideal curve is zero there).
pub fn max_pwl_error(from: u8) -> f64 {
    assert!(from > 0, "code 0 has no exponential equivalent");
    Code::all()
        .filter(|c| c.value() >= from)
        .map(|c| {
            let ideal = ideal_exponential(c);
            (multiplication_factor(c) as f64 / ideal - 1.0).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_about_4_4_percent() {
        let d = equivalent_delta();
        assert!((d - 0.04427).abs() < 1e-4, "delta {d}");
    }

    #[test]
    fn sixteen_steps_double() {
        let d = equivalent_delta();
        assert!(((1.0 + d).powi(16) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_matches_staircase_at_segment_starts() {
        for seg_start in (16..=112u32).step_by(16) {
            let c = Code::new(seg_start).unwrap();
            let ideal = ideal_exponential(c);
            let actual = multiplication_factor(c) as f64;
            assert!(
                (ideal / actual - 1.0).abs() < 1e-12,
                "code {seg_start}: {ideal} vs {actual}"
            );
        }
    }

    #[test]
    fn pwl_error_stays_within_chord_bound() {
        // A linear chord under-approximates 2^x between breakpoints by at
        // most 1 − (ln 2 / (2^(x) ...)) ≈ 6 % for a one-octave chord; the
        // 16-step staircase tracks much closer.
        let e = max_pwl_error(16);
        assert!(e < 0.0625, "pwl error {e}");
        assert!(e > 0.01, "error should be visible: {e}");
    }

    #[test]
    fn staircase_is_above_or_near_ideal_within_segments() {
        // The chord of a convex function lies above it: staircase >= ideal
        // (up to rounding) inside each segment.
        for n in 17..=127u32 {
            let c = Code::new(n).unwrap();
            let ratio = multiplication_factor(c) as f64 / ideal_exponential(c);
            assert!(ratio > 0.999, "code {n}: ratio {ratio}");
        }
    }

    #[test]
    fn eleven_equivalent_linear_bits() {
        assert_eq!(equivalent_linear_bits(), 11);
    }

    #[test]
    fn ideal_is_zero_at_code_zero() {
        assert_eq!(ideal_exponential(Code::MIN), 0.0);
    }

    #[test]
    #[should_panic(expected = "no exponential equivalent")]
    fn max_pwl_error_rejects_code_zero() {
        let _ = max_pwl_error(0);
    }
}
