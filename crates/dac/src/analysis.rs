//! Linearity analysis of ideal and measured DAC transfers: step statistics,
//! DNL against the local design step, and monotonicity — the quantities a
//! characterization report (or the paper's Fig 14 discussion) cares about.

use crate::code::Code;
use crate::mismatch::MismatchedDac;
use crate::segment::Segment;
use crate::transfer::multiplication_factor;

/// Summary statistics of the relative step over a code range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStatistics {
    /// Smallest relative step (may be negative on real dies).
    pub min: f64,
    /// Largest relative step.
    pub max: f64,
    /// Mean relative step.
    pub mean: f64,
    /// Code at which the smallest step occurs (`n` of the step `n → n+1`).
    pub argmin: u8,
    /// Code at which the largest step occurs.
    pub argmax: u8,
}

impl StepStatistics {
    /// Computes step statistics for a measured die over codes
    /// `from..=126` (step `n → n+1`).
    ///
    /// # Panics
    ///
    /// Panics if `from` leaves fewer than one step (`from >= 126`) or if
    /// every step in range is undefined.
    pub fn measure(dac: &MismatchedDac, from: u8) -> Self {
        assert!(from < 126, "need at least one step");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        let (mut argmin, mut argmax) = (from, from);
        for n in from..=126 {
            let code = Code::new(n as u32).expect("code in range");
            if let Some(s) = dac.relative_step(code) {
                if s < min {
                    min = s;
                    argmin = n;
                }
                if s > max {
                    max = s;
                    argmax = n;
                }
                sum += s;
                count += 1;
            }
        }
        assert!(count > 0, "no defined steps in range");
        StepStatistics {
            min,
            max,
            mean: sum / count as f64,
            argmin,
            argmax,
        }
    }
}

/// Full linearity report for a die.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearityReport {
    /// Worst DNL in local LSB (per-segment step) units.
    pub dnl_worst: f64,
    /// Code at which the worst DNL occurs.
    pub dnl_worst_code: u8,
    /// Worst INL relative to the nominal staircase, in fractions of the
    /// nominal value (`I/I_nominal − 1`).
    pub inl_worst_rel: f64,
    /// Codes with a negative step (non-monotonicity), step `n → n+1`
    /// reported as `n`.
    pub non_monotonic: Vec<u8>,
    /// Step statistics above code 16 (the regulated operating region).
    pub steps_above_16: StepStatistics,
}

impl LinearityReport {
    /// Analyzes a die.
    pub fn analyze(dac: &MismatchedDac) -> Self {
        let mut dnl_worst = 0.0f64;
        let mut dnl_worst_code = 0u8;
        let mut inl_worst_rel = 0.0f64;
        for code in Code::all() {
            let nominal = multiplication_factor(code) as f64;
            let measured = dac.units(code);
            if nominal > 0.0 {
                let inl = measured / nominal - 1.0;
                if inl.abs() > inl_worst_rel.abs() {
                    inl_worst_rel = inl;
                }
            }
            if code != Code::MAX {
                // DNL in units of the local design step.
                let local_step = Segment::of(code.increment()).step as f64;
                let measured_step = dac.units(code.increment()) - measured;
                let nominal_step = multiplication_factor(code.increment()) as f64 - nominal;
                let dnl = (measured_step - nominal_step) / local_step;
                if dnl.abs() > dnl_worst.abs() {
                    dnl_worst = dnl;
                    dnl_worst_code = code.value();
                }
            }
        }
        LinearityReport {
            dnl_worst,
            dnl_worst_code,
            inl_worst_rel,
            non_monotonic: dac.non_monotonic_codes(),
            steps_above_16: StepStatistics::measure(dac, 16),
        }
    }

    /// Whether the die satisfies the paper's regulation-loop requirement:
    /// the largest step above code 16 must stay below the regulation window
    /// width (so the loop can never jump across the window), while
    /// non-monotonicity is explicitly tolerated.
    pub fn regulation_compatible(&self, window_rel_width: f64) -> bool {
        self.steps_above_16.max < window_rel_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mismatch::DacMismatchParams;

    #[test]
    fn ideal_die_step_statistics_match_design_band() {
        let dac = MismatchedDac::ideal(12.5e-6);
        let s = StepStatistics::measure(&dac, 16);
        assert!((s.max - 0.0625).abs() < 1e-9, "max {}", s.max);
        assert!((s.min - 1.0 / 31.0).abs() < 1e-9, "min {}", s.min);
        assert!(s.mean > s.min && s.mean < s.max);
    }

    #[test]
    fn ideal_die_has_zero_dnl_and_inl() {
        let r = LinearityReport::analyze(&MismatchedDac::ideal(12.5e-6));
        assert_eq!(r.dnl_worst, 0.0);
        assert_eq!(r.inl_worst_rel, 0.0);
        assert!(r.non_monotonic.is_empty());
    }

    #[test]
    fn reference_die_report_flags_code_95_step() {
        let r = LinearityReport::analyze(&MismatchedDac::reference_die());
        assert_eq!(r.non_monotonic, vec![95]);
        assert!(r.steps_above_16.min < 0.0);
        assert_eq!(r.steps_above_16.argmin, 95);
        // Worst DNL is at the non-monotonic boundary.
        assert_eq!(r.dnl_worst_code, 95);
        // Measured step is ~17 units below the nominal +16: DNL ≈ −0.54
        // local LSB (one local LSB = 32 units in segment 6).
        assert!(r.dnl_worst < -0.5, "dnl {}", r.dnl_worst);
    }

    #[test]
    fn reference_die_is_regulation_compatible_with_paper_window() {
        // Paper: window wider than the 6.25 % max step; we use 15 % total.
        let r = LinearityReport::analyze(&MismatchedDac::reference_die());
        assert!(r.regulation_compatible(0.15));
        // A window narrower than the max step is not acceptable.
        assert!(!r.regulation_compatible(0.05));
    }

    #[test]
    fn sampled_dies_mostly_monotonic_at_default_sigma() {
        // At 1 % prescaler sigma a negative boundary step is rare; over 20
        // seeded dies most must be monotonic (sanity of sigma scaling).
        let p = DacMismatchParams::default();
        let monotone = (0..20)
            .filter(|&s| {
                MismatchedDac::sampled(&p, s)
                    .non_monotonic_codes()
                    .is_empty()
            })
            .count();
        assert!(monotone >= 15, "only {monotone}/20 monotone");
    }

    #[test]
    fn large_sigma_breaks_monotonicity_somewhere() {
        let p = DacMismatchParams {
            sigma_prescale: 0.08,
            ..DacMismatchParams::default()
        };
        let any_nonmono = (0..20).any(|s| {
            !MismatchedDac::sampled(&p, s)
                .non_monotonic_codes()
                .is_empty()
        });
        assert!(any_nonmono);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn step_statistics_reject_empty_range() {
        let dac = MismatchedDac::ideal(12.5e-6);
        let _ = StepStatistics::measure(&dac, 126);
    }
}
