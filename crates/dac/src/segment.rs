//! The 8 DAC segments of Table 1.

use crate::code::Code;

/// Static description of one DAC segment (one row of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment index, `0..=7`.
    pub index: u8,
    /// Prescaler output multiple of the unit current (1, 2, 4 or 8).
    pub prescale: u32,
    /// Number of active Gm stages (1, 2, 3, 5 or 9) — the paper's
    /// "Active Gm stages" column; also determines the enabled fixed mirror
    /// legs: `16·(gm_weight − 1)` units.
    pub gm_weight: u32,
    /// Output step per code in units.
    pub step: u32,
    /// Output at the first code of the segment, in units.
    pub range_min: u32,
    /// Output at the last code of the segment, in units.
    pub range_max: u32,
    /// Bit position of the 4 data bits within `OscF<6:0>`.
    pub oscf_shift: u8,
    /// `OscD<2:0>` bus value.
    pub osc_d: u8,
    /// `OscE<3:0>` bus value.
    pub osc_e: u8,
}

/// All 8 segments, exactly as printed in the paper's Table 1.
pub const SEGMENTS: [Segment; 8] = [
    Segment {
        index: 0,
        prescale: 1,
        gm_weight: 1,
        step: 1,
        range_min: 0,
        range_max: 15,
        oscf_shift: 0,
        osc_d: 0b000,
        osc_e: 0b0000,
    },
    Segment {
        index: 1,
        prescale: 1,
        gm_weight: 2,
        step: 1,
        range_min: 16,
        range_max: 31,
        oscf_shift: 0,
        osc_d: 0b000,
        osc_e: 0b0001,
    },
    Segment {
        index: 2,
        prescale: 2,
        gm_weight: 2,
        step: 2,
        range_min: 32,
        range_max: 62,
        oscf_shift: 0,
        osc_d: 0b001,
        osc_e: 0b0001,
    },
    Segment {
        index: 3,
        prescale: 2,
        gm_weight: 3,
        step: 4,
        range_min: 64,
        range_max: 124,
        oscf_shift: 1,
        osc_d: 0b001,
        osc_e: 0b0011,
    },
    Segment {
        index: 4,
        prescale: 4,
        gm_weight: 3,
        step: 8,
        range_min: 128,
        range_max: 248,
        oscf_shift: 1,
        osc_d: 0b011,
        osc_e: 0b0011,
    },
    Segment {
        index: 5,
        prescale: 4,
        gm_weight: 5,
        step: 16,
        range_min: 256,
        range_max: 496,
        oscf_shift: 2,
        osc_d: 0b011,
        osc_e: 0b0111,
    },
    Segment {
        index: 6,
        prescale: 8,
        gm_weight: 5,
        step: 32,
        range_min: 512,
        range_max: 992,
        oscf_shift: 2,
        osc_d: 0b111,
        osc_e: 0b0111,
    },
    Segment {
        index: 7,
        prescale: 8,
        gm_weight: 9,
        step: 64,
        range_min: 1024,
        range_max: 1984,
        oscf_shift: 3,
        osc_d: 0b111,
        osc_e: 0b1111,
    },
];

impl Segment {
    /// Segment a code belongs to.
    pub fn of(code: Code) -> &'static Segment {
        &SEGMENTS[code.segment_index() as usize]
    }

    /// Fixed mirror current enabled in this segment, in units
    /// (`16·(gm_weight − 1)`: the 16, 16, 32 and 64-unit legs follow the
    /// `OscE` enables).
    pub fn fixed_units(&self) -> u32 {
        16 * (self.gm_weight - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ranges_are_consistent() {
        for s in &SEGMENTS {
            // range covers exactly 16 codes of `step`.
            assert_eq!(
                s.range_max,
                s.range_min + 15 * s.step,
                "segment {}",
                s.index
            );
            // output formula reproduces range_min at lsbs = 0.
            assert_eq!(
                s.prescale * s.fixed_units(),
                s.range_min,
                "segment {}",
                s.index
            );
            // prescale · step-in-bank equals the printed step: the nibble
            // shift makes one LSB worth 2^shift bank units.
            assert_eq!(
                s.prescale * (1 << s.oscf_shift),
                s.step,
                "segment {}",
                s.index
            );
        }
    }

    #[test]
    fn segments_tile_the_full_range_with_doubling_steps() {
        assert_eq!(SEGMENTS[0].range_min, 0);
        assert_eq!(SEGMENTS[7].range_max, 1984);
        for w in SEGMENTS.windows(2) {
            // Next segment starts one step above the previous maximum in
            // the ideal staircase sense: min_{k+1} >= max_k.
            assert!(w[1].range_min > w[0].range_max);
        }
        // Step sequence 1,1,2,4,8,16,32,64 (Fig 3 annotation).
        let steps: Vec<u32> = SEGMENTS.iter().map(|s| s.step).collect();
        assert_eq!(steps, [1, 1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn prescale_follows_oscd_thermometer() {
        for s in &SEGMENTS {
            let expected = 1 << s.osc_d.count_ones();
            assert_eq!(s.prescale, expected, "segment {}", s.index);
        }
    }

    #[test]
    fn gm_weight_follows_osce() {
        for s in &SEGMENTS {
            let e = s.osc_e as u32;
            let weight = 1 + (e & 1) + ((e >> 1) & 1) + 2 * ((e >> 2) & 1) + 4 * ((e >> 3) & 1);
            assert_eq!(s.gm_weight, weight, "segment {}", s.index);
        }
    }

    #[test]
    fn of_maps_codes_to_segments() {
        assert_eq!(Segment::of(Code::MIN).index, 0);
        assert_eq!(Segment::of(Code::new(16).unwrap()).index, 1);
        assert_eq!(Segment::of(Code::new(95).unwrap()).index, 5);
        assert_eq!(Segment::of(Code::new(96).unwrap()).index, 6);
        assert_eq!(Segment::of(Code::MAX).index, 7);
    }

    #[test]
    fn fixed_units_match_mirror_legs() {
        // gm weights 1,2,2,3,3,5,5,9 -> fixed 0,16,16,32,32,64,64,128.
        let fixed: Vec<u32> = SEGMENTS.iter().map(Segment::fixed_units).collect();
        assert_eq!(fixed, [0, 16, 16, 32, 32, 64, 64, 128]);
    }
}
