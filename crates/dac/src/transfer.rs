//! Nominal (design) transfer curve of the PWL exponential DAC — the data
//! behind the paper's Fig 3 (multiplication factor) and Fig 4 (relative
//! voltage step).

use crate::code::Code;
use crate::segment::Segment;
use lcosc_num::units::Amps;

/// Ideal multiplication factor `Mₙ` for a code, in units of the LSB current
/// (Fig 3's y-axis): `0..=1984`.
pub fn multiplication_factor(code: Code) -> u32 {
    let seg = Segment::of(code);
    seg.range_min + code.lsbs() as u32 * seg.step
}

/// Relative output step from `code` to `code + 1`:
/// `(M(n+1) − M(n)) / M(n)`.
///
/// Returns `None` at the last code or while `M(n) == 0`.
///
/// Because the regulated amplitude is proportional to the limited current
/// (paper eq 4), this is also the *relative voltage step* of Fig 4; above
/// code 16 it stays within the paper's 3.23 %…6.25 % band.
pub fn relative_step(code: Code) -> Option<f64> {
    if code == Code::MAX {
        return None;
    }
    let m0 = multiplication_factor(code);
    if m0 == 0 {
        return None;
    }
    let m1 = multiplication_factor(code.increment());
    Some((m1 as f64 - m0 as f64) / m0 as f64)
}

/// The full nominal transfer curve with unit current scaling.
///
/// # Example
///
/// ```
/// use lcosc_dac::TransferCurve;
/// use lcosc_num::units::Amps;
///
/// let curve = TransferCurve::new(Amps::from_micro(12.5)); // the chip's LSB
/// let amps = curve.current(lcosc_dac::Code::MAX);
/// assert!((amps.value() - 0.0248).abs() < 1e-6); // 1984 × 12.5 µA = 24.8 mA
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCurve {
    lsb: Amps,
}

impl TransferCurve {
    /// Creates a curve scaled by the unit (LSB) current.
    ///
    /// # Panics
    ///
    /// Panics unless the LSB current is positive and finite.
    pub fn new(lsb: Amps) -> Self {
        assert!(
            lsb.value() > 0.0 && lsb.is_finite(),
            "lsb current must be positive and finite"
        );
        TransferCurve { lsb }
    }

    /// The paper's chip: 1 LSB = 12.5 µA (Fig 13 caption).
    pub fn datasheet() -> Self {
        TransferCurve::new(Amps::from_micro(12.5))
    }

    /// Unit current.
    pub fn lsb(&self) -> Amps {
        self.lsb
    }

    /// Limited output current at a code.
    pub fn current(&self, code: Code) -> Amps {
        Amps(multiplication_factor(code) as f64 * self.lsb.value())
    }

    /// Full-scale output current (code 127).
    pub fn full_scale(&self) -> Amps {
        self.current(Code::MAX)
    }

    /// All 128 `(code, units)` points (Fig 3's staircase).
    pub fn points(&self) -> Vec<(u8, u32)> {
        Code::all()
            .map(|c| (c.value(), multiplication_factor(c)))
            .collect()
    }

    /// Smallest code whose output current reaches at least `target`.
    ///
    /// Returns `None` if even full scale is below the target.
    pub fn code_for_current(&self, target: Amps) -> Option<Code> {
        Code::all().find(|&c| self.current(c).value() >= target.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_endpoints() {
        assert_eq!(multiplication_factor(Code::MIN), 0);
        assert_eq!(multiplication_factor(Code::MAX), 1984);
        assert_eq!(multiplication_factor(Code::new(16).unwrap()), 16);
        assert_eq!(multiplication_factor(Code::new(64).unwrap()), 128);
    }

    #[test]
    fn staircase_is_strictly_monotone_above_zero() {
        let mut prev = multiplication_factor(Code::MIN);
        for code in Code::all().skip(1) {
            let m = multiplication_factor(code);
            assert!(m > prev, "code {code}");
            prev = m;
        }
    }

    #[test]
    fn doubles_every_16_codes_from_16() {
        // Fig 3 log-scale: a straight line -> M(n+16) = 2 M(n) for n >= 16.
        for n in 16..=111u32 {
            let m0 = multiplication_factor(Code::new(n).unwrap());
            let m1 = multiplication_factor(Code::new(n + 16).unwrap());
            assert_eq!(m1, 2 * m0, "code {n}");
        }
    }

    #[test]
    fn relative_step_band_above_code_16() {
        // Paper: "For codes above 16 the amplitude step varies between
        // 3.23 % and 6.25 %".
        for n in 16..127u32 {
            let s = relative_step(Code::new(n).unwrap()).unwrap();
            assert!(
                (0.0323 - 1e-4..=0.0625 + 1e-9).contains(&s),
                "code {n}: step {s}"
            );
        }
    }

    #[test]
    fn relative_step_extremes_hit_paper_bounds() {
        let steps: Vec<f64> = (16..127u32)
            .map(|n| relative_step(Code::new(n).unwrap()).unwrap())
            .collect();
        let max = steps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = steps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 0.0625).abs() < 1e-12, "max {max}");
        assert!((min - 1.0 / 31.0).abs() < 1e-12, "min {min}"); // 3.23 %
    }

    #[test]
    fn relative_step_none_at_edges() {
        assert!(relative_step(Code::MAX).is_none());
        assert!(relative_step(Code::MIN).is_none()); // M(0) = 0
    }

    #[test]
    fn datasheet_scaling() {
        let c = TransferCurve::datasheet();
        assert!((c.full_scale().value() - 24.8e-3).abs() < 1e-9);
        assert!((c.current(Code::new(16).unwrap()).value() - 200e-6).abs() < 1e-12);
    }

    #[test]
    fn code_for_current_finds_first_sufficient() {
        let c = TransferCurve::datasheet();
        let code = c.code_for_current(Amps::from_milli(1.0)).unwrap();
        // 1 mA / 12.5 µA = 80 units -> first code with M >= 80 is 52
        // (seg 3: 64 + 4·4 = 80).
        assert_eq!(code.value(), 52);
        assert!(c.code_for_current(Amps::from_milli(30.0)).is_none());
    }

    #[test]
    fn points_has_128_entries() {
        let pts = TransferCurve::datasheet().points();
        assert_eq!(pts.len(), 128);
        assert_eq!(pts[127], (127, 1984));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lsb() {
        let _ = TransferCurve::new(Amps(0.0));
    }
}
