//! Property-based tests on the static checker: malformed netlists and
//! configurations are rejected with their documented codes, and check-clean
//! netlists solve DC without panicking.

use lcosc_check::{
    check_config_facts, check_control_word, check_netlist, check_safety_facts, parse_deck,
    ConfigFacts, SafetyFacts,
};
use lcosc_circuit::analysis::dc::solve_dc;
use lcosc_circuit::{Element, Netlist, Waveform};
use lcosc_dac::ControlWord;
use proptest::prelude::*;

/// A grounded resistor ladder driven by a DC source: the canonical
/// check-clean network.
fn ladder(v: f64, rs: &[f64]) -> Netlist {
    let mut nl = Netlist::new();
    let mut prev = nl.node("vin");
    nl.voltage_source(prev, Netlist::GROUND, Waveform::Dc(v));
    for (k, &r) in rs.iter().enumerate() {
        let next = nl.node(&format!("n{k}"));
        nl.resistor(prev, next, r);
        prev = next;
    }
    nl.resistor(prev, Netlist::GROUND, *rs.first().unwrap_or(&1e3));
    nl
}

fn good_config() -> ConfigFacts {
    ConfigFacts {
        vdd: 3.3,
        vref: 1.65,
        target_vpp: 2.7,
        rail_clamp: 1.65,
        window_rel_width: 0.15,
        detector_tau: 30e-6,
        tick_period: 1e-3,
        nvm_delay: 5e-6,
        steps_per_period: 60,
        envelope_substeps: 256,
        detector_noise_rms: 0.0,
        nvm_code: 105,
    }
}

fn good_safety() -> SafetyFacts {
    SafetyFacts {
        window_rel_width: 0.15,
        max_rel_step: 0.0625,
        window_low: 0.397,
        window_high: 0.462,
        missing_clock_timeout: 100e-6,
        lc_period: 0.37e-6,
        low_amplitude_fraction: 0.6,
        asymmetry_threshold: 0.05,
        detector_noise_rms: 0.0,
    }
}

proptest! {
    /// Check-clean random ladders solve DC without panicking, and every
    /// solved node voltage is finite and bounded by the source.
    #[test]
    fn clean_ladders_solve_dc(
        v in -10.0f64..10.0,
        rs in proptest::collection::vec(10.0f64..1e6, 1..6),
    ) {
        let nl = ladder(v, &rs);
        let report = check_netlist(&nl);
        prop_assert!(report.is_clean(), "{}", report.render_human());
        let s = solve_dc(&nl).expect("check-clean ladder must solve");
        for node in nl.nodes() {
            let vn = s.voltage(node);
            prop_assert!(vn.is_finite());
            prop_assert!(vn.abs() <= v.abs() + 1e-9, "node {vn} vs source {v}");
        }
    }

    /// Any non-positive R/L/C value is rejected as E005, never silently
    /// accepted.
    #[test]
    fn nonpositive_values_are_e005(
        v in 1.0f64..10.0,
        bad in -1e6f64..=0.0,
        rs in proptest::collection::vec(10.0f64..1e6, 1..4),
    ) {
        let mut nl = ladder(v, &rs);
        let a = nl.node("bad_a");
        // The safe builders assert on bad values; inject the raw element.
        nl.push_element(Element::Resistor { a, b: Netlist::GROUND, ohms: bad });
        nl.resistor(a, Netlist::GROUND, 1e3); // keep the node connected twice
        let report = check_netlist(&nl);
        prop_assert!(report.contains("E005"), "{}", report.render_human());
        prop_assert!(report.has_errors());
    }

    /// Non-finite values are rejected as E006.
    #[test]
    fn non_finite_values_are_e006(
        v in 1.0f64..10.0,
        which in 0u8..3,
    ) {
        let bad = match which {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let mut nl = ladder(v, &[1e3]);
        let a = nl.node("bad_a");
        nl.push_element(Element::Resistor { a, b: Netlist::GROUND, ohms: bad });
        nl.resistor(a, Netlist::GROUND, 1e3);
        let report = check_netlist(&nl);
        prop_assert!(report.contains("E006"), "{}", report.render_human());
        prop_assert!(report.has_errors());
    }

    /// A resistor island disconnected from ground is always rejected as
    /// E003 (no DC path to ground), regardless of its size.
    #[test]
    fn disconnected_islands_are_e003(
        v in 1.0f64..10.0,
        island in proptest::collection::vec(10.0f64..1e5, 1..4),
    ) {
        let mut nl = ladder(v, &[1e3]);
        let mut prev = nl.node("isl0");
        let first = prev;
        for (k, &r) in island.iter().enumerate() {
            let next = nl.node(&format!("isl{}", k + 1));
            nl.resistor(prev, next, r);
            prev = next;
        }
        // Close the island into a ring so no node dangles; only the
        // missing ground path remains.
        nl.resistor(prev, first, 1e3);
        let report = check_netlist(&nl);
        prop_assert!(report.contains("E003"), "{}", report.render_human());
        prop_assert!(report.has_errors());
    }

    /// A node with exactly one connection is always flagged E002 (a
    /// warning: the netlist still solves, but the stub does nothing).
    #[test]
    fn dangling_nodes_are_e002(
        v in 1.0f64..10.0,
        r in 10.0f64..1e6,
    ) {
        let mut nl = ladder(v, &[1e3]);
        let stub = nl.node("stub");
        nl.resistor(stub, Netlist::GROUND, r);
        let report = check_netlist(&nl);
        prop_assert!(report.contains("E002"), "{}", report.render_human());
        prop_assert!(!report.is_clean());
    }

    /// The deck parser round-trips `Netlist::listing` for random ladders.
    #[test]
    fn parser_round_trips_listings(
        v in -10.0f64..10.0,
        rs in proptest::collection::vec(10.0f64..1e6, 1..6),
    ) {
        let nl = ladder(v, &rs);
        let reparsed = parse_deck(&nl.listing()).expect("listing reparses");
        prop_assert_eq!(reparsed.listing(), nl.listing());
    }

    /// `check_control_word` is exactly the Table 1 membership test: a word
    /// passes clean if and only if it decodes to a code that re-encodes to
    /// the same word.
    #[test]
    fn control_word_check_matches_table1(
        d in 0u8..8,
        e in 0u8..16,
        f in 0u8..=255,
    ) {
        let w = ControlWord { osc_d: d, osc_e: e, osc_f: f };
        let report = check_control_word(&w);
        let in_table = w.decode().is_ok_and(|c| ControlWord::encode(c) == w);
        prop_assert_eq!(report.is_clean(), in_table, "{w}: {}", report.render_human());
        if !report.is_clean() {
            prop_assert!(report.contains("C011"));
        }
    }

    /// Any window narrower than the 6.25 % DAC step is rejected as S001 by
    /// both the config pass and the safety pass.
    #[test]
    fn narrow_windows_are_s001(w in 0.0f64..0.0625) {
        let mut cfg = good_config();
        cfg.window_rel_width = w;
        let r = check_config_facts(&cfg);
        prop_assert!(r.contains("S001"), "{}", r.render_human());
        prop_assert!(r.has_errors());

        let mut s = good_safety();
        s.window_rel_width = w;
        let r = check_safety_facts(&s);
        prop_assert!(r.contains("S001"), "{}", r.render_human());
        prop_assert!(r.has_errors());
    }

    /// Inverted or collapsed window thresholds are rejected as S002.
    #[test]
    fn unordered_thresholds_are_s002(lo in 0.1f64..1.0, gap in 0.0f64..0.5) {
        let mut s = good_safety();
        s.window_low = lo + gap; // low at or above high
        s.window_high = lo;
        let r = check_safety_facts(&s);
        prop_assert!(r.contains("S002"), "{}", r.render_human());
        prop_assert!(r.has_errors());
    }

    /// A missing-clock timeout shorter than 4 LC periods is rejected as
    /// S003 for any period.
    #[test]
    fn short_timeouts_are_s003(
        period_us in 0.01f64..10.0,
        frac in 0.0f64..3.9,
    ) {
        let mut s = good_safety();
        s.lc_period = period_us * 1e-6;
        s.missing_clock_timeout = frac * s.lc_period;
        let r = check_safety_facts(&s);
        prop_assert!(r.contains("S003"), "{}", r.render_human());
        prop_assert!(r.has_errors());
    }

    /// Out-of-range NVM codes are always a C010 error.
    #[test]
    fn out_of_range_codes_are_c010(code in 128u32..100_000) {
        let mut cfg = good_config();
        cfg.nvm_code = code;
        let r = check_config_facts(&cfg);
        prop_assert!(r.contains("C010"), "{}", r.render_human());
        prop_assert!(r.has_errors());
    }

    /// Configurations drawn from the physically sensible region pass the
    /// whole config rule set clean.
    #[test]
    fn sensible_configs_stay_clean(
        vdd in 2.0f64..5.5,
        vref_frac in 0.3f64..0.7,
        target_frac in 0.2f64..0.9,
        width in 0.07f64..0.5,
        tau_us in 1.0f64..50.0,
        code in 16u32..=127,
    ) {
        let vref = vref_frac * vdd;
        let rail_clamp = vref.min(vdd - vref);
        let cfg = ConfigFacts {
            vdd,
            vref,
            target_vpp: target_frac * 4.0 * rail_clamp,
            rail_clamp,
            window_rel_width: width,
            detector_tau: tau_us * 1e-6,
            tick_period: 20.0 * tau_us * 1e-6,
            nvm_delay: tau_us * 1e-6,
            steps_per_period: 60,
            envelope_substeps: 64,
            detector_noise_rms: 0.0,
            nvm_code: code,
        };
        let r = check_config_facts(&cfg);
        prop_assert!(r.is_clean(), "{}", r.render_human());
    }
}
