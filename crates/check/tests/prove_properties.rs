//! Property-based tests on the static safety prover: the soundness
//! contract (abstract intervals contain every concrete die in the box),
//! the widening lattice laws, and the byte-stable JSON round-trip of the
//! `A0xx` verdict document.

use lcosc_campaign::Json;
use lcosc_check::{prove, AbstractDacParams, ConcreteDie, Interval, ProveFacts};
use lcosc_dac::Code;
use proptest::prelude::*;

/// Nominal leg weights mirrored from the Table 1 DAC model.
const FIXED_NOMINAL: [f64; 4] = [16.0, 16.0, 32.0, 64.0];

/// A concrete die drawn anywhere inside the abstract mismatch box:
/// every device at `nominal * (1 + u * tol)` with `u` in [-1, 1].
fn die_in_box(params: &AbstractDacParams, u: &[f64]) -> ConcreteDie {
    let k = params.k_sigma;
    let mut die = ConcreteDie::nominal();
    for (i, stage) in die.prescale_stage.iter_mut().enumerate() {
        *stage = 2.0 * (1.0 + u[i] * k * params.sigma_prescale);
    }
    for (i, leg) in die.fixed.iter_mut().enumerate() {
        // Pelgrom scaling: wider legs match better.
        let sigma = params.sigma_fixed / (FIXED_NOMINAL[i] / 16.0).sqrt();
        *leg = FIXED_NOMINAL[i] * (1.0 + u[3 + i] * k * sigma);
    }
    for (i, leg) in die.bank.iter_mut().enumerate() {
        let nominal = f64::from(1u32 << i);
        *leg = nominal * (1.0 + u[7 + i] * k * params.sigma_unit);
    }
    die
}

fn unit_box() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0..=1.0f64, 14)
}

proptest! {
    /// Soundness: for every die in the box and every code, the concrete
    /// output sits inside the abstract units interval, and the concrete
    /// relative step inside the abstract step interval.
    #[test]
    fn abstract_intervals_contain_every_die_in_the_box(
        u in unit_box(),
        code in 0u8..=127,
    ) {
        let params = AbstractDacParams::default();
        let die = die_in_box(&params, &u);
        let code = Code::new(u32::from(code)).expect("0..=127 is in range");
        let abs_units = params.side_units(code);
        let conc_units = die.units(code);
        prop_assert!(
            abs_units.contains(conc_units),
            "units at {code:?}: {conc_units} outside [{}, {}]",
            abs_units.lo,
            abs_units.hi
        );
        if let (Some(conc_step), Some(abs_step)) =
            (die.relative_step(code), params.relative_step(code))
        {
            prop_assert!(
                abs_step.rel_step.contains(conc_step),
                "step at {code:?}: {conc_step} outside [{}, {}]",
                abs_step.rel_step.lo,
                abs_step.rel_step.hi
            );
        }
    }

    /// Widening is monotone and convergent: the result encloses both
    /// arguments (an upper bound in the interval lattice), and widening
    /// with an already-enclosed interval is the identity.
    #[test]
    fn widening_is_an_upper_bound_and_stabilizes(
        a_lo in -1e3..1e3f64, a_w in 0.0..1e3f64,
        b_lo in -1e3..1e3f64, b_w in 0.0..1e3f64,
    ) {
        let a = Interval::new(a_lo, a_lo + a_w);
        let b = Interval::new(b_lo, b_lo + b_w);
        let w = a.widen(b);
        prop_assert!(w.encloses(a), "widen lost self");
        prop_assert!(w.encloses(b), "widen lost rhs");
        prop_assert!(w.encloses(a.hull(b)), "widen below the hull");
        // Once the iterate is enclosed, widening has reached a fixpoint.
        prop_assert_eq!(w.widen(b), w);
        prop_assert_eq!(w.widen(a), w);
    }

    /// The rendered verdict document survives a parse → canonicalize →
    /// render round trip byte-identically, for passing and failing
    /// windows alike (the serve cache and golden fixtures rely on it).
    #[test]
    fn verdict_json_round_trips_canonically(window in 0.02..0.40f64) {
        let facts = ProveFacts {
            window_rel_width: window,
            ..ProveFacts::chip(0.15, 4.7e-6, 1.5e-9, 1.5e-9, 1e-3)
        };
        let outcome = prove(&facts);
        let rendered = outcome.render_json();
        let parsed = Json::parse(&rendered).expect("verdict renders valid JSON");
        prop_assert_eq!(
            parsed.canonicalize().render(),
            outcome.to_json().canonicalize().render()
        );
        // The verdict is a pure function of the facts.
        prop_assert_eq!(rendered, prove(&facts).render_json());
    }
}

/// Conformance: `ConcreteDie` must decode the control bus and combine
/// devices in exactly the same operation order as the runtime DAC model
/// (`MismatchedDac`), or the soundness property above proves the wrong
/// semantics. Pinned on the ideal die and the skewed reference die.
#[test]
fn concrete_die_matches_the_runtime_dac_model() {
    use lcosc_dac::{multiplication_factor, MismatchedDac};

    let ideal = ConcreteDie::nominal();
    let reference = MismatchedDac::reference_die();
    let mut skewed = ConcreteDie::nominal();
    skewed.prescale_stage = [2.0, 2.02, 1.93];
    skewed.fixed = [16.10, 15.95, 32.25, 63.40];
    for code in Code::all() {
        let nominal_units = f64::from(multiplication_factor(code));
        assert!(
            (ideal.units(code) - nominal_units).abs() < 1e-9,
            "ideal die diverges at {code:?}"
        );
        // The reference die's top side shares the skewed prescaler and
        // fixed legs with an ideal bank — exactly `skewed`.
        let (a, b) = (skewed.units(code), reference.top_units(code));
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "skewed die diverges at {code:?}: {a} vs {b}"
        );
    }
    // The signature Fig 14 artifact survives the mirror: the 95 → 96
    // hand-over steps down on this die (the ×4 → ×8 prescaler swap).
    let step95 = skewed.relative_step(Code::new(95).expect("95 in range"));
    assert!(step95.expect("interior code") < 0.0);
}
