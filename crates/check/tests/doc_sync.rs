//! Registry/documentation sync lint: the stable diagnostic-code registry
//! (`ALL_CODES`) and the human documentation must not drift apart. The
//! README's code table is required to carry exactly one row per
//! registered code with the registry's own description text, and the
//! DESIGN chapter on the prover must mention every `A0xx` obligation.

use lcosc_check::ALL_CODES;
use std::path::PathBuf;

fn repo_file(name: &str) -> String {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", name]
        .iter()
        .collect();
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The `| CODE | description |` rows of every markdown table in `text`.
fn table_code_rows(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|line| {
            let mut cells = line.split('|').map(str::trim);
            let _ = cells.next()?; // leading empty cell
            let code = cells.next()?;
            let description = cells.next()?;
            let is_code = code.len() == 4
                && code.starts_with(|c: char| c.is_ascii_uppercase())
                && code[1..].chars().all(|c| c.is_ascii_digit());
            is_code.then(|| (code.to_string(), description.to_string()))
        })
        .collect()
}

#[test]
fn readme_code_table_matches_the_registry_exactly() {
    let readme = repo_file("README.md");
    let rows = table_code_rows(&readme);
    // Every registered code has exactly one table row, with the
    // registry's own description — not a paraphrase.
    for (code, description) in ALL_CODES {
        let matches: Vec<_> = rows.iter().filter(|(c, _)| c == code).collect();
        assert_eq!(
            matches.len(),
            1,
            "README code table must list {code} exactly once (found {})",
            matches.len()
        );
        assert_eq!(
            matches[0].1, *description,
            "README row for {code} drifted from the registry text"
        );
    }
    // And no row advertises a code the registry does not know.
    for (code, _) in &rows {
        assert!(
            ALL_CODES.iter().any(|(c, _)| c == code),
            "README table lists unregistered code {code}"
        );
    }
}

#[test]
fn design_prover_chapter_mentions_every_obligation() {
    let design = repo_file("DESIGN.md");
    for (code, _) in ALL_CODES.iter().filter(|(c, _)| c.starts_with('A')) {
        assert!(
            design.contains(code),
            "DESIGN.md never mentions proof obligation {code}"
        );
    }
    assert!(
        design.contains("## 11. Static safety proving"),
        "DESIGN.md lost its prover chapter"
    );
}

#[test]
fn spice_codes_are_documented_in_readme_and_design() {
    // The P0xx parse family must be visible in both human documents:
    // the README code table (checked verbatim by the table test above —
    // here we additionally pin that the family exists at all) and the
    // DESIGN chapter on the SPICE front end.
    let readme = repo_file("README.md");
    let design = repo_file("DESIGN.md");
    let p_codes: Vec<_> = ALL_CODES
        .iter()
        .filter(|(c, _)| c.starts_with('P'))
        .collect();
    assert!(!p_codes.is_empty(), "P0xx family vanished from ALL_CODES");
    for (code, _) in &p_codes {
        assert!(
            table_code_rows(&readme).iter().any(|(c, _)| c == code),
            "README code table is missing SPICE parse code {code}"
        );
        assert!(
            design.contains(code),
            "DESIGN.md never mentions SPICE parse code {code}"
        );
    }
    assert!(
        design.contains("## 17. SPICE front end and fuzzing"),
        "DESIGN.md lost its SPICE front-end chapter"
    );
}

#[test]
fn registry_is_ordered_and_append_only_by_family() {
    // Within each code family the numeric suffix must be strictly
    // increasing — appending is the only legal registry change.
    for family in ["E", "C", "S", "A", "P"] {
        let nums: Vec<u32> = ALL_CODES
            .iter()
            .filter(|(c, _)| c.starts_with(family))
            .map(|(c, _)| c[1..].parse().expect("registry code suffix"))
            .collect();
        assert!(!nums.is_empty(), "family {family} vanished");
        assert!(
            nums.windows(2).all(|w| w[1] == w[0] + 1) && nums[0] == 1,
            "family {family} is not a dense 1..n sequence: {nums:?}"
        );
    }
}
