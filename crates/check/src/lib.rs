//! `lcosc-check` — static ERC/DRC verification pass for the lcosc
//! workspace.
//!
//! The crate lints the three artifact classes the simulator consumes
//! *before* any matrix is factored or any transient step is taken, in the
//! spirit of a SPICE electrical-rule check:
//!
//! - **Netlists** ([`check_netlist`], codes `E0xx`): floating and dangling
//!   nodes, nodes with no DC conduction path to ground, voltage-source and
//!   inductor loops, zero/negative/non-finite/implausible element values,
//!   self-loops, and structural singularity of the MNA matrix (a
//!   bipartite-matching test on the DC stamp pattern, deliberately
//!   excluding the solver's `gmin` crutches).
//! - **Configurations** ([`check_config_facts`], codes `C0xx`): the
//!   oscillator-driver configuration invariants, the Table 1 control-bus
//!   encodings ([`check_control_word`]), the 8-segment PWL DAC table
//!   ([`check_segment_table`]) and transfer monotonicity
//!   ([`check_dac_monotonicity`]).
//! - **Safety parameters** ([`check_safety_facts`], codes `S0xx`): the
//!   paper's window-wider-than-DAC-step invariant (§3/§4), window
//!   threshold ordering, missing-clock timeout versus the LC period, and
//!   detector threshold sanity.
//!
//! On top of the concrete-value rules sits the **static prover** (codes
//! `A0xx`, [`prove()`]): sound outward-rounded interval arithmetic
//! ([`interval`]) abstractly interprets the Table 1 DAC over its entire
//! mismatch box ([`abstract_dac`]) to prove the window-vs-step and
//! oscillation-condition properties for *every* die, and exhaustive
//! reachability over the regulation × detector × safe-state product
//! automaton ([`reach`]) proves safe-state reachability, livelock
//! freedom, bounded trip latency and saturation-latch preservation —
//! with `lcosc-trace`-compatible counterexample streams on refutation.
//!
//! Findings come back as a [`Report`] of [`Diagnostic`]s with stable codes
//! (registered append-only in [`ALL_CODES`]), a [`Severity`], provenance
//! down to the element/field, and both human-readable and JSON rendering.
//! The crate sits at the bottom of the workspace dependency graph —
//! `lcosc-core` and `lcosc-safety` call into it at their entry points and
//! surface failures as typed errors, and the `lcosc-check` CLI binary
//! lints decks ([`parse_deck`]) and presets from the command line.

pub mod abstract_dac;
pub mod config;
pub mod diag;
pub mod interval;
pub mod netlist;
pub mod parse;
pub mod prove;
pub mod reach;

pub use abstract_dac::{AbstractDacParams, ConcreteDie, StepBound};
pub use config::{
    check_config_facts, check_control_word, check_dac_monotonicity, check_safety_facts,
    check_segment_table, ideal_max_rel_step_above_16, ConfigFacts, SafetyFacts,
};
pub use diag::{describe, Diagnostic, Provenance, Report, Severity, ALL_CODES};
pub use interval::Interval;
pub use netlist::check_netlist;
pub use parse::{parse_deck, ParseError};
pub use prove::{prove, Counterexample, Obligation, ProveFacts, ProveOutcome};
pub use reach::{analyze, ModelInput, ModelState, ReachFacts, ReachReport};
