//! A small SPICE-style deck parser for the lint CLI.
//!
//! The grammar is the round-trip of [`Netlist::listing`]: one element per
//! line, `*`/`;`/`#` comments, `gnd` or `0` for ground, and engineering
//! suffixes (`k`, `meg`, `u`, `n`, ...) on numbers. Parsing deliberately
//! does **not** validate component values — a deck with a negative
//! resistance parses fine and is then rejected by
//! [`check_netlist`](crate::netlist::check_netlist) with a stable code, so
//! the linter can report *all* problems instead of dying on the first.

use lcosc_circuit::{Element, Netlist, NodeId, Waveform};
use lcosc_device::{DiodeModel, MosModel};

/// A syntax error in a deck, pointing at its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a deck in the [`Netlist::listing`] dialect into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseError`] on the first syntactically malformed line.
/// Semantic problems (bad values, floating nodes, ...) are *not* errors
/// here; run the result through `check_netlist` for those.
pub fn parse_deck(text: &str) -> Result<Netlist, ParseError> {
    let mut nl = Netlist::new();
    let mut names: std::collections::HashMap<String, NodeId> = std::collections::HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        // Normalise punctuation so `pwl(0 0, 1u 3.3)` tokenises cleanly.
        let cleaned: String = raw
            .chars()
            .map(|c| {
                if c == '(' || c == ')' || c == ',' || c == '=' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let mut tokens = cleaned.split_whitespace();
        let Some(head) = tokens.next() else { continue };
        if head.starts_with('*') || head.starts_with(';') || head.starts_with('#') {
            continue;
        }
        if head.starts_with('.') {
            // SPICE directives (.end, .title, ...) carry no elements.
            continue;
        }
        let rest: Vec<&str> = tokens.collect();
        let kind = head
            .chars()
            .next()
            .map(|c| c.to_ascii_uppercase())
            .ok_or_else(|| err("empty element name".into()))?;
        let mut node = |name: &str| -> NodeId {
            if name.eq_ignore_ascii_case("gnd") || name == "0" {
                return Netlist::GROUND;
            }
            *names
                .entry(name.to_string())
                .or_insert_with(|| nl.node(name))
        };
        let want = |n: usize| -> Result<(), ParseError> {
            if rest.len() < n {
                Err(err(format!(
                    "{head}: expected at least {n} fields, got {}",
                    rest.len()
                )))
            } else {
                Ok(())
            }
        };
        let element = match kind {
            'R' => {
                want(3)?;
                let (a, b) = (node(rest[0]), node(rest[1]));
                Element::Resistor {
                    a,
                    b,
                    ohms: value(rest[2], line_no)?,
                }
            }
            'C' => {
                want(3)?;
                let (a, b) = (node(rest[0]), node(rest[1]));
                let farads = value(rest[2], line_no)?;
                let v0 = keyed(&rest[3..], "ic", line_no)?.unwrap_or(0.0);
                Element::Capacitor { a, b, farads, v0 }
            }
            'L' => {
                want(3)?;
                let (a, b) = (node(rest[0]), node(rest[1]));
                let henries = value(rest[2], line_no)?;
                let i0 = keyed(&rest[3..], "ic", line_no)?.unwrap_or(0.0);
                Element::Inductor { a, b, henries, i0 }
            }
            'V' | 'I' => {
                want(3)?;
                let (p, n) = (node(rest[0]), node(rest[1]));
                let wave = waveform(&rest[2..], line_no)?;
                if kind == 'V' {
                    Element::VoltageSource { p, n, wave }
                } else {
                    Element::CurrentSource { p, n, wave }
                }
            }
            'G' => {
                want(5)?;
                let (out_p, out_n) = (node(rest[0]), node(rest[1]));
                let (in_p, in_n) = (node(rest[2]), node(rest[3]));
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm: value(rest[4], line_no)?,
                }
            }
            'D' => {
                want(2)?;
                let (anode, cathode) = (node(rest[0]), node(rest[1]));
                Element::Diode {
                    anode,
                    cathode,
                    model: DiodeModel::default(),
                }
            }
            'M' => {
                want(5)?;
                let (d, g) = (node(rest[0]), node(rest[1]));
                let (s, b) = (node(rest[2]), node(rest[3]));
                let model = match rest[4].to_ascii_lowercase().as_str() {
                    "nmos" => MosModel::nmos_035um(),
                    "pmos" => MosModel::pmos_035um(),
                    other => return Err(err(format!("unknown MOS model {other:?} (nmos/pmos)"))),
                };
                Element::Mosfet { d, g, s, b, model }
            }
            'S' => {
                want(3)?;
                let (a, b) = (node(rest[0]), node(rest[1]));
                let closed = match rest[2].to_ascii_lowercase().as_str() {
                    "on" | "1" | "closed" => true,
                    "off" | "0" | "open" => false,
                    other => return Err(err(format!("switch state {other:?} is not on/off"))),
                };
                let r_on = keyed(&rest[3..], "ron", line_no)?.unwrap_or(1.0);
                let r_off = keyed(&rest[3..], "roff", line_no)?.unwrap_or(1e9);
                Element::Switch {
                    a,
                    b,
                    closed,
                    r_on,
                    r_off,
                }
            }
            other => return Err(err(format!("unknown element letter {other:?}"))),
        };
        nl.push_element(element);
    }
    Ok(nl)
}

/// Parses a source specification: `dc <x>`, a bare number, or
/// `pwl <t0> <v0> <t1> <v1> ...`.
fn waveform(fields: &[&str], line: usize) -> Result<Waveform, ParseError> {
    let first = fields[0].to_ascii_lowercase();
    match first.as_str() {
        "dc" => {
            let v = fields.get(1).ok_or_else(|| ParseError {
                line,
                message: "dc needs a value".into(),
            })?;
            Ok(Waveform::Dc(value(v, line)?))
        }
        "pwl" => {
            let nums: Vec<f64> = fields[1..]
                .iter()
                .map(|t| value(t, line))
                .collect::<Result<_, _>>()?;
            if nums.is_empty() || !nums.len().is_multiple_of(2) {
                return Err(ParseError {
                    line,
                    message: format!("pwl needs time/value pairs, got {} numbers", nums.len()),
                });
            }
            Ok(Waveform::Pwl(
                nums.chunks(2).map(|p| (p[0], p[1])).collect(),
            ))
        }
        _ => Ok(Waveform::Dc(value(fields[0], line)?)),
    }
}

/// Finds `key <value>` in a tail of tokens (the `=` was already split away).
fn keyed(fields: &[&str], key: &str, line: usize) -> Result<Option<f64>, ParseError> {
    let mut it = fields.iter();
    while let Some(tok) = it.next() {
        if tok.eq_ignore_ascii_case(key) {
            let Some(v) = it.next() else {
                return Err(ParseError {
                    line,
                    message: format!("{key}= needs a value"),
                });
            };
            return value(v, line).map(Some);
        }
    }
    Ok(None)
}

/// Parses a number with optional engineering suffix (`k`, `meg`, `m`, `u`,
/// `n`, `p`, `f`, `g`, `t`).
fn value(token: &str, line: usize) -> Result<f64, ParseError> {
    let t = token.to_ascii_lowercase();
    if let Ok(v) = t.parse::<f64>() {
        return Ok(v);
    }
    let suffixes: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("t", 1e12),
        ("g", 1e9),
        ("k", 1e3),
        ("m", 1e-3),
        ("u", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
        ("f", 1e-15),
    ];
    for (suffix, scale) in suffixes {
        if let Some(mantissa) = t.strip_suffix(suffix) {
            if let Ok(v) = mantissa.parse::<f64>() {
                return Ok(v * scale);
            }
        }
    }
    Err(ParseError {
        line,
        message: format!("{token:?} is not a number"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::check_netlist;

    #[test]
    fn parses_every_element_kind() {
        let deck = "\
* a comment
R0 a b 1k
C1 a gnd 1n ic=0.5
L2 a b 1u ic=0.001
V3 a gnd dc=3.3
I4 b gnd 1m
G5 b gnd a gnd 2meg
D6 a b
M7 a b gnd gnd nmos
S8 a b on ron=2 roff=1g
.end
";
        let nl = parse_deck(deck).expect("deck parses");
        assert_eq!(nl.elements().len(), 9);
        assert_eq!(nl.node_count(), 3); // gnd, a, b
    }

    #[test]
    fn round_trips_a_listing() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(3.3));
        nl.resistor(a, Netlist::GROUND, 1e3);
        let reparsed = parse_deck(&nl.listing()).expect("listing reparses");
        assert_eq!(reparsed.elements().len(), 2);
        assert_eq!(reparsed.listing(), nl.listing());
    }

    #[test]
    fn ground_aliases() {
        let nl = parse_deck("R0 a 0 1k\nR1 a gnd 2k\n").expect("parses");
        assert_eq!(nl.node_count(), 2); // only gnd and a
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(value("1k", 1).expect("1k"), 1e3);
        assert_eq!(value("2meg", 1).expect("2meg"), 2e6);
        assert_eq!(value("1.5u", 1).expect("1.5u"), 1.5e-6);
        assert_eq!(value("3m", 1).expect("3m"), 3e-3);
        assert!(value("1x", 1).is_err());
    }

    #[test]
    fn pwl_sources_parse() {
        let nl = parse_deck("V0 a gnd pwl(0 0, 1u 3.3)\nR0 a gnd 1k\n").expect("parses");
        assert_eq!(nl.elements().len(), 2);
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let e = parse_deck("R0 a b 1k\nQ1 a b c\n").expect_err("unknown letter");
        assert_eq!(e.line, 2);
        let e = parse_deck("R0 a b\n").expect_err("missing value");
        assert_eq!(e.line, 1);
        let e = parse_deck("M0 a b gnd gnd bjt\n").expect_err("bad model");
        assert!(e.to_string().contains("bjt"));
    }

    #[test]
    fn bad_values_parse_then_lint() {
        // The parser accepts a negative resistor; the checker rejects it.
        let nl = parse_deck("V0 a gnd dc=1\nR0 a gnd -5\n").expect("parses");
        let report = check_netlist(&nl);
        assert!(report.contains("E005"), "{}", report.render_human());
    }
}
