//! Netlist electrical-rule checks (the `E0xx` family).
//!
//! Mirrors classic SPICE ERC/lint passes: connectivity (floating and
//! dangling nodes, no DC path to ground), degenerate topology (voltage
//! source/inductor loops, self-loop elements), value sanity (zero,
//! negative, non-finite, implausible) and a structural-singularity
//! pre-check of the MNA stamp pattern.

use crate::diag::{Provenance, Report};
use lcosc_circuit::netlist::{
    element_terminals, Element, Netlist, NodeId, Waveform, WaveformError,
};
use lcosc_circuit::stamp::dc_stamp_pattern;

/// Short kind name of an element, used for provenance.
fn kind(e: &Element) -> &'static str {
    match e {
        Element::Resistor { .. } => "resistor",
        Element::Capacitor { .. } => "capacitor",
        Element::Inductor { .. } => "inductor",
        Element::VoltageSource { .. } => "vsource",
        Element::CurrentSource { .. } => "isource",
        Element::Vccs { .. } => "vccs",
        Element::Diode { .. } => "diode",
        Element::Mosfet { .. } => "mosfet",
        Element::Switch { .. } => "switch",
    }
}

fn elem(index: usize, e: &Element, field: &'static str) -> Option<Provenance> {
    Some(Provenance::Element {
        index,
        kind: kind(e),
        field,
    })
}

fn node(nl: &Netlist, n: NodeId) -> Option<Provenance> {
    Some(Provenance::Node {
        index: n.index(),
        name: nl.node_name(n).to_string(),
    })
}

/// Runs every netlist rule and returns the collected report.
pub fn check_netlist(nl: &Netlist) -> Report {
    let mut report = Report::new();
    check_values(nl, &mut report);
    check_self_loops(nl, &mut report);
    check_connectivity(nl, &mut report);
    check_source_loops(nl, &mut report);
    check_structure(nl, &mut report);
    if nl.elements().is_empty() {
        report.warning("E010", "netlist contains no elements".into(), None);
    }
    report
}

/// E005/E006/E007: component-value sanity.
fn check_values(nl: &Netlist, report: &mut Report) {
    for (k, e) in nl.elements().iter().enumerate() {
        // (value, field, plausible range) triples for positive-definite values.
        let positive: &[(f64, &'static str, f64, f64)] = match e {
            Element::Resistor { ohms, .. } => &[(*ohms, "ohms", 1e-3, 1e12)],
            Element::Capacitor { farads, .. } => &[(*farads, "farads", 1e-18, 1.0)],
            Element::Inductor { henries, .. } => &[(*henries, "henries", 1e-12, 1e3)],
            Element::Switch { r_on, r_off, .. } => {
                &[(*r_on, "r_on", 1e-3, 1e12), (*r_off, "r_off", 1e-3, 1e12)]
            }
            _ => &[],
        };
        for &(v, field, lo, hi) in positive {
            if !v.is_finite() {
                report.error(
                    "E006",
                    format!("{} {field} = {v} is not finite", kind(e)),
                    elem(k, e, field),
                );
            } else if v <= 0.0 {
                report.error(
                    "E005",
                    format!("{} {field} = {v:e} must be positive", kind(e)),
                    elem(k, e, field),
                );
            } else if v < lo || v > hi {
                report.warning(
                    "E007",
                    format!(
                        "{} {field} = {v:e} is outside the plausible range [{lo:e}, {hi:e}]",
                        kind(e)
                    ),
                    elem(k, e, field),
                );
            }
        }
        // Signed values only need to be finite (and plausibly bounded).
        let signed: &[(f64, &'static str, f64)] = match e {
            Element::Capacitor { v0, .. } => &[(*v0, "v0", 1e3)],
            Element::Inductor { i0, .. } => &[(*i0, "i0", 1e3)],
            Element::Vccs { gm, .. } => &[(*gm, "gm", 1e3)],
            Element::VoltageSource { wave, .. } => &[(wave.dc_value(), "wave", 1e6)],
            Element::CurrentSource { wave, .. } => &[(wave.dc_value(), "wave", 1e6)],
            _ => &[],
        };
        for &(v, field, bound) in signed {
            if !v.is_finite() {
                report.error(
                    "E006",
                    format!("{} {field} = {v} is not finite", kind(e)),
                    elem(k, e, field),
                );
            } else if v.abs() > bound {
                report.warning(
                    "E007",
                    format!(
                        "{} {field} = {v:e} exceeds the plausible magnitude {bound:e}",
                        kind(e)
                    ),
                    elem(k, e, field),
                );
            }
        }
        // PWL waveforms must have finite, time-ordered points.
        if let Element::VoltageSource {
            wave: Waveform::Pwl(pts),
            ..
        }
        | Element::CurrentSource {
            wave: Waveform::Pwl(pts),
            ..
        } = e
        {
            if pts.iter().any(|(t, v)| !t.is_finite() || !v.is_finite()) {
                report.error(
                    "E006",
                    format!("{} pwl contains a non-finite point", kind(e)),
                    elem(k, e, "wave"),
                );
            }
        }
        // E011: structural waveform invariants beyond finiteness —
        // `Waveform::eval` assumes time-sorted PWL points and
        // non-negative pulse timings. (Non-finite parameters are E006
        // above; skip them here to avoid double-reporting.)
        if let Element::VoltageSource { wave, .. } | Element::CurrentSource { wave, .. } = e {
            match wave.validate() {
                Ok(()) | Err(WaveformError::NonFinite { .. }) => {}
                Err(err) => {
                    report.error("E011", format!("{} {err}", kind(e)), elem(k, e, "wave"));
                }
            }
        }
    }
}

/// E008: both terminals on the same node.
fn check_self_loops(nl: &Netlist, report: &mut Report) {
    for (k, e) in nl.elements().iter().enumerate() {
        let degenerate = match e {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. }
            | Element::Switch { a, b, .. } => a == b,
            Element::VoltageSource { p, n, .. } | Element::CurrentSource { p, n, .. } => p == n,
            Element::Vccs { out_p, out_n, .. } => out_p == out_n,
            Element::Diode { anode, cathode, .. } => anode == cathode,
            Element::Mosfet { .. } => false, // shared terminals are legal (diode-connected etc.)
        };
        if degenerate {
            // A shorted voltage source demands 0 = wave: contradictory for
            // any non-zero value and singular either way.
            if matches!(e, Element::VoltageSource { .. }) {
                report.error(
                    "E008",
                    "voltage source shorts its own terminals".into(),
                    elem(k, e, ""),
                );
            } else {
                report.warning(
                    "E008",
                    format!(
                        "{} connects both terminals to the same node (no effect)",
                        kind(e)
                    ),
                    elem(k, e, ""),
                );
            }
        }
    }
}

/// Whether an element conducts DC between two of its terminals, and which
/// node pair it bridges (for the ground-path search).
fn dc_conducting_pair(e: &Element) -> Option<(NodeId, NodeId)> {
    match e {
        Element::Resistor { a, b, .. }
        | Element::Inductor { a, b, .. }
        | Element::Switch { a, b, .. } => Some((*a, *b)),
        Element::VoltageSource { p, n, .. } => Some((*p, *n)),
        Element::Diode { anode, cathode, .. } => Some((*anode, *cathode)),
        // The channel conducts drain<->source; gate and bulk are insulated
        // in this behavioral model.
        Element::Mosfet { d, s, .. } => Some((*d, *s)),
        // Capacitors are DC-open; current sources force a current but
        // provide no conduction path; a VCCS output is likewise a source.
        Element::Capacitor { .. } | Element::CurrentSource { .. } | Element::Vccs { .. } => None,
    }
}

/// E001/E002/E003: connectivity rules.
fn check_connectivity(nl: &Netlist, report: &mut Report) {
    let n_nodes = nl.node_count();
    let mut degree = vec![0usize; n_nodes];
    for e in nl.elements() {
        for t in element_terminals(e) {
            degree[t.index()] += 1;
        }
    }
    for id in nl.nodes().filter(|n| !n.is_ground()) {
        match degree[id.index()] {
            0 => report.error(
                "E001",
                format!(
                    "node '{}' is not connected to any element",
                    nl.node_name(id)
                ),
                node(nl, id),
            ),
            1 => report.warning(
                "E002",
                format!(
                    "node '{}' dangles from a single element terminal",
                    nl.node_name(id)
                ),
                node(nl, id),
            ),
            _ => {}
        }
    }

    // Union-find over DC-conducting element edges; every used node must end
    // up in ground's component.
    let mut uf = UnionFind::new(n_nodes);
    for e in nl.elements() {
        if let Some((a, b)) = dc_conducting_pair(e) {
            uf.union(a.index(), b.index());
        }
    }
    let ground_root = uf.find(0);
    for id in nl.nodes().filter(|n| !n.is_ground()) {
        if degree[id.index()] > 0 && uf.find(id.index()) != ground_root {
            report.error(
                "E003",
                format!(
                    "node '{}' has no DC conduction path to ground",
                    nl.node_name(id)
                ),
                node(nl, id),
            );
        }
    }
}

/// E004: loops made purely of DC shorts (voltage sources and inductors).
fn check_source_loops(nl: &Netlist, report: &mut Report) {
    let mut uf = UnionFind::new(nl.node_count());
    for (k, e) in nl.elements().iter().enumerate() {
        let short = match e {
            Element::VoltageSource { p, n, .. } => Some((*p, *n)),
            Element::Inductor { a, b, .. } => Some((*a, *b)),
            _ => None,
        };
        if let Some((a, b)) = short {
            if a != b && !uf.union(a.index(), b.index()) {
                report.error(
                    "E004",
                    format!(
                        "{} closes a loop of voltage sources/inductors between '{}' and '{}'",
                        kind(e),
                        nl.node_name(a),
                        nl.node_name(b)
                    ),
                    elem(k, e, ""),
                );
            }
        }
    }
}

/// E009: structural-singularity pre-check on the DC stamp pattern.
fn check_structure(nl: &Netlist, report: &mut Report) {
    if nl.elements().is_empty() {
        return;
    }
    let pattern = dc_stamp_pattern(nl);
    let empty_rows = pattern.empty_rows();
    let empty_cols = pattern.empty_columns();
    if !empty_rows.is_empty() || !empty_cols.is_empty() {
        report.error(
            "E009",
            format!(
                "MNA matrix has {} empty row(s) and {} empty column(s): the system is singular without gmin",
                empty_rows.len(),
                empty_cols.len()
            ),
            None,
        );
    } else if !pattern.has_perfect_matching() {
        report.error(
            "E009",
            "MNA stamp pattern admits no perfect matching: the matrix is structurally singular for every element value".into(),
            None,
        );
    }
}

/// Minimal union-find with path halving; `union` returns `false` when the
/// two items were already in the same set (i.e. the edge closes a cycle).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_circuit::netlist::Waveform;

    /// Clean voltage divider plus its interesting node ids.
    fn divider() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(10.0));
        nl.resistor(vin, out, 1e3);
        nl.resistor(out, Netlist::GROUND, 1e3);
        (nl, vin, out)
    }

    #[test]
    fn clean_divider_produces_no_diagnostics() {
        assert!(check_netlist(&divider().0).is_clean());
    }

    #[test]
    fn e001_unused_node() {
        let (mut nl, _, _) = divider();
        nl.node("orphan");
        let r = check_netlist(&nl);
        assert!(r.contains("E001"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e002_dangling_node() {
        let (mut nl, _, out) = divider();
        let d = nl.node("dangling");
        nl.capacitor(out, d, 1e-9);
        let r = check_netlist(&nl);
        assert!(r.contains("E002"), "{}", r.render_human());
        // Dangling is a warning; the cap-only node also has no DC path.
        assert!(r.contains("E003"));
    }

    #[test]
    fn e003_no_dc_path_through_capacitor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.capacitor(a, b, 1e-9);
        nl.resistor(b, c, 1e3);
        nl.capacitor(c, Netlist::GROUND, 1e-9);
        let r = check_netlist(&nl);
        assert!(r.contains("E003"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e004_voltage_source_loop() {
        let (mut nl, vin, _) = divider();
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(10.0));
        let r = check_netlist(&nl);
        assert!(r.contains("E004"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e004_inductor_across_voltage_source() {
        let (mut nl, vin, _) = divider();
        nl.inductor(vin, Netlist::GROUND, 1e-6);
        let r = check_netlist(&nl);
        assert!(r.contains("E004"), "{}", r.render_human());
    }

    #[test]
    fn e005_negative_resistance() {
        let (mut nl, vin, _) = divider();
        nl.push_element(Element::Resistor {
            a: vin,
            b: Netlist::GROUND,
            ohms: -50.0,
        });
        let r = check_netlist(&nl);
        assert!(r.contains("E005"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e006_nan_capacitance() {
        let (mut nl, vin, _) = divider();
        nl.push_element(Element::Capacitor {
            a: vin,
            b: Netlist::GROUND,
            farads: f64::NAN,
            v0: 0.0,
        });
        let r = check_netlist(&nl);
        assert!(r.contains("E006"), "{}", r.render_human());
    }

    #[test]
    fn e006_infinite_source() {
        let (mut nl, vin, _) = divider();
        nl.push_element(Element::VoltageSource {
            p: vin,
            n: Netlist::GROUND,
            wave: Waveform::Dc(f64::INFINITY),
        });
        let r = check_netlist(&nl);
        assert!(r.contains("E006"), "{}", r.render_human());
    }

    #[test]
    fn e011_unsorted_pwl_source() {
        // Only `push_element` can smuggle an unsorted PWL past the
        // panicking builders — the same unvalidated path deck loaders use.
        let (mut nl, vin, _) = divider();
        nl.push_element(Element::CurrentSource {
            p: vin,
            n: Netlist::GROUND,
            wave: Waveform::Pwl(vec![(1e-6, 1.0), (0.0, 0.0)]),
        });
        let r = check_netlist(&nl);
        assert!(r.contains("E011"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e007_implausible_values_warn() {
        let (mut nl, vin, _) = divider();
        nl.resistor(vin, Netlist::GROUND, 1e15); // > 1 TΩ
        let r = check_netlist(&nl);
        assert!(r.contains("E007"), "{}", r.render_human());
        assert!(!r.has_errors(), "E007 is a warning");
    }

    #[test]
    fn e008_shorted_voltage_source_is_an_error() {
        let (mut nl, vin, _) = divider();
        nl.push_element(Element::VoltageSource {
            p: vin,
            n: vin,
            wave: Waveform::Dc(5.0),
        });
        let r = check_netlist(&nl);
        assert!(r.contains("E008"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn e008_self_loop_resistor_is_a_warning() {
        let (mut nl, vin, _) = divider();
        nl.resistor(vin, vin, 1e3);
        let r = check_netlist(&nl);
        assert!(r.contains("E008"));
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn e009_structural_singularity() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.current_source(a, Netlist::GROUND, Waveform::Dc(1e-3));
        nl.capacitor(a, Netlist::GROUND, 1e-9);
        let r = check_netlist(&nl);
        assert!(r.contains("E009"), "{}", r.render_human());
        assert!(r.contains("E003"), "also flagged as no-DC-path");
    }

    #[test]
    fn e010_empty_netlist() {
        let r = check_netlist(&Netlist::new());
        assert!(r.contains("E010"));
        assert!(!r.has_errors());
    }

    #[test]
    fn pwl_with_nan_point_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.push_element(Element::VoltageSource {
            p: a,
            n: Netlist::GROUND,
            wave: Waveform::Pwl(vec![(0.0, 0.0), (f64::NAN, 1.0)]),
        });
        nl.resistor(a, Netlist::GROUND, 1e3);
        let r = check_netlist(&nl);
        assert!(r.contains("E006"), "{}", r.render_human());
    }

    #[test]
    fn mosfet_gate_needs_its_own_dc_path() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.voltage_source(d, Netlist::GROUND, Waveform::Dc(3.3));
        nl.mosfet(
            d,
            g,
            Netlist::GROUND,
            Netlist::GROUND,
            lcosc_device::mos::MosModel::nmos_035um(),
        );
        let r = check_netlist(&nl);
        // The gate floats: channel conducts d<->s, but nothing biases g.
        assert!(r.contains("E003"), "{}", r.render_human());
    }
}
