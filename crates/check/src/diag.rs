//! The diagnostics engine: severities, stable codes, provenance and the
//! [`Report`] collection with human-readable and JSON rendering.

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never fails a check.
    Info,
    /// Suspicious but not necessarily wrong; does not fail a check.
    Warning,
    /// A rule violation; the checked artifact must be rejected.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where a diagnostic points: the netlist element, node or configuration
/// field that violated the rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// A netlist element, by insertion index and kind (`"resistor"`, ...),
    /// optionally narrowing to one field (`"ohms"`, ...).
    Element {
        /// Element index in insertion order.
        index: usize,
        /// Element kind name.
        kind: &'static str,
        /// Offending field, empty when the whole element is meant.
        field: &'static str,
    },
    /// A netlist node, by index and name.
    Node {
        /// Node index (0 is ground).
        index: usize,
        /// Node name.
        name: String,
    },
    /// A configuration field, by name.
    Field(&'static str),
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Element { index, kind, field } => {
                if field.is_empty() {
                    write!(f, "element #{index} ({kind})")
                } else {
                    write!(f, "element #{index} ({kind}.{field})")
                }
            }
            Provenance::Node { index, name } => write!(f, "node #{index} ({name})"),
            Provenance::Field(name) => write!(f, "config field {name}"),
        }
    }
}

/// One finding of the static verification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` netlist, `C0xx` config, `S0xx` safety).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// What the diagnostic points at, when known.
    pub provenance: Option<Provenance>,
}

/// The collected outcome of a verification pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends an error with provenance.
    pub fn error(&mut self, code: &'static str, message: String, provenance: Option<Provenance>) {
        self.push(Diagnostic {
            code,
            severity: Severity::Error,
            message,
            provenance,
        });
    }

    /// Appends a warning with provenance.
    pub fn warning(&mut self, code: &'static str, message: String, provenance: Option<Provenance>) {
        self.push(Diagnostic {
            code,
            severity: Severity::Warning,
            message,
            provenance,
        });
    }

    /// Appends an informational note.
    pub fn info(&mut self, code: &'static str, message: String, provenance: Option<Provenance>) {
        self.push(Diagnostic {
            code,
            severity: Severity::Info,
            message,
            provenance,
        });
    }

    /// Moves every diagnostic of `other` into this report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any error-severity diagnostic was emitted.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is entirely empty.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether a diagnostic with the given code is present.
    pub fn contains(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Distinct codes present, in first-emission order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for d in &self.diags {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// Diagnostics in rendering order: sorted by (code, provenance,
    /// severity, message) so output is byte-stable regardless of the
    /// order the rules happened to run in. Emission order (which
    /// [`Report::diagnostics`] and [`Report::codes`] preserve) is an
    /// evaluation detail; rendered reports are part of the golden
    /// surface.
    fn render_order(&self) -> Vec<&Diagnostic> {
        let mut sorted: Vec<&Diagnostic> = self.diags.iter().collect();
        sorted.sort_by(|a, b| {
            let loc_a = a.provenance.as_ref().map(ToString::to_string);
            let loc_b = b.provenance.as_ref().map(ToString::to_string);
            a.code
                .cmp(b.code)
                .then_with(|| loc_a.cmp(&loc_b))
                .then_with(|| a.severity.cmp(&b.severity))
                .then_with(|| a.message.cmp(&b.message))
        });
        sorted
    }

    /// Renders the report for terminals: one `severity[code] message @
    /// provenance` line per diagnostic plus a summary line. Lines are
    /// sorted by (code, provenance) for byte-stable output.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in self.render_order() {
            let _ = write!(out, "{}[{}] {}", d.severity, d.code, d.message);
            if let Some(p) = &d.provenance {
                let _ = write!(out, " @ {p}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "check: {} error(s), {} warning(s), {} diagnostic(s)",
            self.error_count(),
            self.warning_count(),
            self.diags.len()
        );
        out
    }

    /// Renders the report as a JSON object
    /// `{"errors": N, "warnings": N, "diagnostics": [...]}` (hand-rolled;
    /// the workspace builds offline without serde). Diagnostics are
    /// sorted by (code, provenance) for byte-stable output.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        );
        for (k, d) in self.render_order().into_iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                d.code,
                d.severity,
                escape_json(&d.message)
            );
            if let Some(p) = &d.provenance {
                let _ = write!(out, ",\"provenance\":\"{}\"", escape_json(&p.to_string()));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The full diagnostic-code registry: `(code, one-line description)`.
///
/// Codes are stable: tests, documentation and downstream tooling key on
/// them, so entries are append-only.
pub const ALL_CODES: &[(&str, &str)] = &[
    ("E001", "node is not connected to any element"),
    ("E002", "node dangles from a single element terminal"),
    ("E003", "node has no DC conduction path to ground"),
    ("E004", "loop of voltage sources and/or inductors"),
    ("E005", "element value is zero or negative"),
    ("E006", "element value is not a finite number"),
    (
        "E007",
        "element value is outside the physically plausible range",
    ),
    ("E008", "element connects both terminals to the same node"),
    ("E009", "MNA matrix is structurally singular without gmin"),
    ("E010", "netlist contains no elements"),
    (
        "E011",
        "source waveform violates a structural invariant (unsorted PWL, negative timing)",
    ),
    ("C001", "target amplitude must be positive and finite"),
    ("C002", "vref must sit strictly between the supply rails"),
    ("C003", "target amplitude exceeds what the rails can swing"),
    ("C004", "detector time constant must be positive"),
    (
        "C005",
        "tick period must dominate the detector time constant",
    ),
    ("C006", "NVM load delay must fall within the first tick"),
    (
        "C007",
        "cycle fidelity needs at least 20 ODE steps per period",
    ),
    (
        "C008",
        "envelope fidelity needs at least one substep per tick",
    ),
    ("C009", "detector noise RMS must be finite and non-negative"),
    ("C010", "NVM code is outside the 7-bit DAC range"),
    ("C011", "control-bus encoding is not a Table 1 row"),
    (
        "C012",
        "DAC segment table violates its structural invariants",
    ),
    (
        "C013",
        "DAC transfer is not monotonic above the first segments",
    ),
    (
        "S001",
        "comparator window is narrower than the maximum DAC step",
    ),
    ("S002", "window thresholds are not ordered (low < high)"),
    (
        "S003",
        "missing-clock timeout is shorter than a few LC periods",
    ),
    (
        "S004",
        "missing-clock timeout is excessively long for detection",
    ),
    ("S005", "low-amplitude threshold fraction must be in (0, 1)"),
    (
        "S006",
        "asymmetry detector threshold must be positive and finite",
    ),
    (
        "S007",
        "detector noise is large compared to the window width",
    ),
    (
        "A001",
        "window not provably wider than the worst-case DAC step",
    ),
    (
        "A002",
        "non-monotonic DAC excursion not provably inside the window",
    ),
    (
        "A003",
        "oscillation condition not provable over the Q/tolerance box",
    ),
    ("A004", "safe state not reachable through a fitted detector"),
    (
        "A005",
        "regulation automaton can livelock under a constant input",
    ),
    (
        "A006",
        "detector-trip latency exceeds its documented tick bound",
    ),
    ("A007", "an in-window hold can clear a saturation latch"),
    ("P001", "unknown element or dot-card in a SPICE deck"),
    ("P002", "SPICE card has the wrong number of fields"),
    (
        "P003",
        "malformed number or unknown engineering unit suffix",
    ),
    ("P004", "unknown or malformed SPICE source waveform"),
    ("P005", "element references an undefined .model"),
    ("P006", "unknown .model kind or model parameter"),
    ("P007", "value references an undefined .param"),
    ("P008", "duplicate element name in a SPICE deck"),
    ("P009", "malformed .tran or .dc analysis card"),
    ("P010", "SPICE deck never references the ground node"),
    ("P011", "SPICE node appears on only one element terminal"),
    ("P012", "SPICE element value is out of range for its card"),
];

/// One-line description of a diagnostic code, if registered.
pub fn describe(code: &str) -> Option<&'static str> {
    ALL_CODES.iter().find(|(c, _)| *c == code).map(|(_, d)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.error(
            "E005",
            "resistance is -1".into(),
            Some(Provenance::Element {
                index: 3,
                kind: "resistor",
                field: "ohms",
            }),
        );
        r.warning(
            "E002",
            "dangling \"node\"".into(),
            Some(Provenance::Node {
                index: 2,
                name: "out".into(),
            }),
        );
        r.info("E010", "empty".into(), None);
        r
    }

    #[test]
    fn counting_and_queries() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(r.contains("E005"));
        assert!(!r.contains("E001"));
        assert_eq!(r.codes(), vec!["E005", "E002", "E010"]);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = sample();
        a.merge(sample());
        assert_eq!(a.diagnostics().len(), 6);
        assert_eq!(a.error_count(), 2);
    }

    #[test]
    fn human_rendering_lists_every_line() {
        let text = sample().render_human();
        assert!(text.contains("error[E005] resistance is -1 @ element #3 (resistor.ohms)"));
        assert!(text.contains("warning[E002]"));
        assert!(text.contains("node #2 (out)"));
        assert!(text.contains("1 error(s), 1 warning(s), 3 diagnostic(s)"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"errors\":1,\"warnings\":1,"));
        assert!(json.contains("\\\"node\\\""), "quotes escaped: {json}");
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets (cheap structural sanity check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(escape_json("a\tb\nc\"d\\e"), "a\\tb\\nc\\\"d\\\\e");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn registry_is_unique_and_described() {
        let mut codes: Vec<&str> = ALL_CODES.iter().map(|(c, _)| *c).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate code in registry");
        assert_eq!(
            describe("E003"),
            Some("node has no DC conduction path to ground")
        );
        assert_eq!(describe("Z999"), None);
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    /// Two reports with the same findings emitted in different rule
    /// orders must render identically (human and JSON) — the byte
    /// stability the golden fixtures pin.
    #[test]
    fn rendering_is_independent_of_emission_order() {
        let forward = sample();
        let mut reverse = Report::new();
        for d in forward.diagnostics().iter().rev().cloned() {
            reverse.push(d);
        }
        assert_ne!(
            forward.diagnostics().first(),
            reverse.diagnostics().first(),
            "emission orders really differ"
        );
        assert_eq!(forward.render_human(), reverse.render_human());
        assert_eq!(forward.render_json(), reverse.render_json());
    }

    #[test]
    fn rendering_sorts_by_code_then_location() {
        let text = sample().render_human();
        let e002 = text.find("E002").expect("E002 rendered");
        let e005 = text.find("E005").expect("E005 rendered");
        let e010 = text.find("E010").expect("E010 rendered");
        assert!(e002 < e005 && e005 < e010, "{text}");
    }
}
