//! Sound outward-rounded interval arithmetic — the abstract numeric
//! domain of the `--prove` pass.
//!
//! Every operation widens its result by one ulp on each side
//! ([`next_down`]/[`next_up`]) so the returned interval *contains* the
//! exact real result of applying the operation to any points of the
//! operands, regardless of the rounding direction the hardware picked.
//! That over-approximation is the entire soundness story: a property
//! proved on these intervals ("`hi < window`") holds for every concrete
//! value they contain, floats included.
//!
//! The domain is deliberately minimal: closed finite intervals, the four
//! arithmetic operations (division requires a strictly positive divisor —
//! every denominator in the prover is a physical current or capacitance),
//! monotone `sqrt`, lattice joins (`hull`) and a widening operator for
//! fixpoint acceleration.

/// The next representable `f64` strictly above `x` (saturates at +∞).
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        x
    } else if x == 0.0 {
        // Covers -0.0 as well: the smallest positive subnormal is the
        // successor of both zeros.
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// The next representable `f64` strictly below `x` (saturates at −∞).
pub fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        x
    } else if x == 0.0 {
        -f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

/// A closed interval `[lo, hi]` of reals, the abstract value of the
/// prover's numeric domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// Builds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are not finite or are inverted — an
    /// inverted interval is always a prover bug, never an input
    /// condition.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid interval [{lo}, {hi}]"
        );
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    /// `nominal · [1 − tol, 1 + tol]`, outward rounded: the abstract
    /// value of a device with relative tolerance `tol ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics when `nominal < 0` or `tol < 0` (all modelled devices are
    /// non-negative quantities).
    pub fn from_rel_tol(nominal: f64, tol: f64) -> Interval {
        assert!(nominal >= 0.0 && tol >= 0.0, "negative device model");
        Interval::point(nominal) * Interval::new(1.0 - tol, 1.0 + tol)
    }

    /// Width `hi − lo` (exact subtraction, not outward rounded — used
    /// for reporting, not for proofs).
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the concrete value `x` lies inside the interval.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn encloses(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Outward-rounded square root (monotone, so endpoints suffice).
    ///
    /// # Panics
    ///
    /// Panics on negative intervals.
    #[must_use]
    pub fn sqrt(self) -> Interval {
        assert!(self.lo >= 0.0, "sqrt of negative interval {self:?}");
        Interval::new(next_down(self.lo.sqrt()).max(0.0), next_up(self.hi.sqrt()))
    }

    /// Lattice join: the smallest interval containing both operands.
    #[must_use]
    pub fn hull(self, rhs: Interval) -> Interval {
        Interval::new(self.lo.min(rhs.lo), self.hi.max(rhs.hi))
    }

    /// Widening operator: returns `self` when `rhs` is already enclosed;
    /// otherwise jumps past the join by doubling the escaped side's
    /// distance, guaranteeing ascending chains stabilise in finitely
    /// many steps. Always encloses `self.hull(rhs)`.
    #[must_use]
    pub fn widen(self, rhs: Interval) -> Interval {
        if self.encloses(rhs) {
            return self;
        }
        let joined = self.hull(rhs);
        let lo = if joined.lo < self.lo {
            next_down(joined.lo - joined.width())
        } else {
            joined.lo
        };
        let hi = if joined.hi > self.hi {
            next_up(joined.hi + joined.width())
        } else {
            joined.hi
        };
        Interval::new(lo, hi)
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Outward-rounded sum.
    fn add(self, rhs: Interval) -> Interval {
        Interval::new(next_down(self.lo + rhs.lo), next_up(self.hi + rhs.hi))
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;

    /// Outward-rounded difference.
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(next_down(self.lo - rhs.hi), next_up(self.hi - rhs.lo))
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Outward-rounded product (sign-general: all four endpoint
    /// products are considered).
    fn mul(self, rhs: Interval) -> Interval {
        let p = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = p.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(next_down(lo), next_up(hi))
    }
}

impl std::ops::Div for Interval {
    type Output = Interval;

    /// Outward-rounded quotient.
    ///
    /// # Panics
    ///
    /// Panics unless the divisor is strictly positive (`rhs.lo > 0`);
    /// the prover establishes positivity of every denominator before
    /// dividing, so a zero-straddling divisor is a bug.
    fn div(self, rhs: Interval) -> Interval {
        assert!(rhs.lo > 0.0, "division by non-positive interval {rhs:?}");
        let p = [
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        ];
        let lo = p.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(next_down(lo), next_up(hi))
    }
}

/// Largest value of the fraction `(s + n) / (s + d)` over `s ∈ s_box`,
/// with scalar numerator offset `n` and denominator offset `d`, rounded
/// up. The fraction is monotone in `s` with the sign of `d − n`, so one
/// endpoint of `s_box` attains the maximum.
///
/// # Panics
///
/// Panics when the denominator can reach zero or below.
pub fn frac_hi(s_box: Interval, n: f64, d: f64) -> f64 {
    assert!(s_box.lo + d > 0.0, "denominator not provably positive");
    let s = if d - n < 0.0 { s_box.lo } else { s_box.hi };
    next_up(next_up(s + n) / next_down(s + d))
}

/// Smallest value of `(s + n) / (s + d)` over `s ∈ s_box`, rounded down.
/// See [`frac_hi`] for the monotonicity argument.
///
/// # Panics
///
/// Panics when the denominator can reach zero or below.
pub fn frac_lo(s_box: Interval, n: f64, d: f64) -> f64 {
    assert!(s_box.lo + d > 0.0, "denominator not provably positive");
    let s = if d - n > 0.0 { s_box.lo } else { s_box.hi };
    next_down(next_down(s + n) / next_up(s + d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbours_bracket_every_float() {
        for x in [0.0, -0.0, 1.0, -1.0, 1e-300, -3.5e7, f64::MIN_POSITIVE] {
            assert!(next_up(x) > x, "next_up({x})");
            assert!(next_down(x) < x, "next_down({x})");
        }
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn arithmetic_contains_exact_results() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(3.0, 4.0);
        assert!((a + b).contains(1.0 + 3.0) && (a + b).contains(2.0 + 4.0));
        assert!((a - b).contains(1.0 - 4.0) && (a - b).contains(2.0 - 3.0));
        assert!((a * b).contains(3.0) && (a * b).contains(8.0));
        assert!((a / b).contains(0.25) && (a / b).contains(2.0 / 3.0));
        assert!(b.sqrt().contains(3.0f64.sqrt()) && b.sqrt().contains(2.0));
    }

    #[test]
    fn mul_handles_mixed_signs() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 4.0);
        let p = a * b;
        assert!(p.contains(10.0), "(-2)·(-5)");
        assert!(p.contains(-15.0), "3·(-5)");
        assert!(p.contains(12.0), "3·4");
    }

    #[test]
    fn rel_tol_brackets_the_nominal() {
        let d = Interval::from_rel_tol(16.0, 0.032);
        assert!(d.contains(16.0));
        assert!(d.lo <= 16.0 * (1.0 - 0.032) && d.hi >= 16.0 * (1.0 + 0.032));
    }

    #[test]
    fn hull_and_enclosure() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(1.5, 3.0);
        let h = a.hull(b);
        assert!(h.encloses(a) && h.encloses(b));
        assert_eq!(h, Interval::new(1.0, 3.0));
    }

    #[test]
    fn widen_is_an_upper_bound_and_stabilises() {
        let mut w = Interval::new(0.0, 1.0);
        for k in 1..100 {
            let sample = Interval::new(0.0, 1.0 + k as f64 * 0.1);
            let next = w.widen(sample);
            assert!(next.encloses(w.hull(sample)), "widen covers the join");
            w = next;
        }
        // Doubling jumps: the chain must have stabilised long before 100
        // iterations of +0.1 growth.
        assert!(w.encloses(Interval::new(0.0, 10.9)));
    }

    #[test]
    fn frac_bounds_bracket_interior_points() {
        let s = Interval::new(15.0, 17.0);
        let (n, d) = (2.0, 1.0);
        for k in 0..=10 {
            let sv = 15.0 + 0.2 * k as f64;
            let exact = (sv + n) / (sv + d);
            assert!(frac_lo(s, n, d) <= exact && exact <= frac_hi(s, n, d));
        }
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn div_rejects_zero_straddling_divisor() {
        let _ = Interval::new(1.0, 2.0) / Interval::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_bounds_are_rejected() {
        let _ = Interval::new(2.0, 1.0);
    }
}
