//! The `--prove` pass: static safety proofs over the whole configuration
//! space, reported as the stable `A0xx` diagnostic family.
//!
//! Two engines feed one [`ProveOutcome`]:
//!
//! * **Abstract interpretation** ([`crate::abstract_dac`], backed by the
//!   outward-rounded [`crate::interval`] domain) proves the paper's §3/§4
//!   window argument — the regulation window exceeds the worst-case DAC
//!   step and the worst non-monotonic excursion for *every* die in the
//!   mismatch box — and the §2 oscillation condition `gm > Rs·C/L` over
//!   a `Q` range and element-tolerance boxes on L and C.
//! * **Exhaustive reachability** ([`crate::reach`]) enumerates the
//!   regulation × detector × safe-state product automaton and proves
//!   safe-state reachability, livelock freedom, bounded detector-trip →
//!   safe-state latency and saturation-latch preservation, rendering
//!   `lcosc-trace` event streams as counterexamples when a proof fails.
//!
//! The outcome renders byte-stably: the JSON tree is built from the same
//! deterministic [`Json`] values on every run and thread count, so a
//! verdict can be cached, diffed and golden-pinned.

use crate::abstract_dac::{AbstractDacParams, StepBound};
use crate::diag::{Provenance, Report};
use crate::interval::{next_down, Interval};
use crate::reach::{analyze, ReachFacts, ReachReport};
use lcosc_campaign::Json;
use lcosc_trace::{render_jsonl, TraceEvent};

/// The chip's missing-oscillation detector timeout, seconds (§5). Kept
/// here as the prover's default so `check` does not need a dependency on
/// the safety crate that owns the runtime constant of the same value.
pub const DEFAULT_MISSING_CLOCK_TIMEOUT: f64 = 100e-6;
/// Transconductance of one driver Gm stage, siemens (Fig 7).
pub const DEFAULT_GM_PER_STAGE: f64 = 10e-3;
/// Maximum simultaneously enabled Gm weight (1 + 1 + 1 + 2 + 4, Fig 7).
pub const DEFAULT_MAX_GM_STAGES: u32 = 9;

/// Everything the prover needs to know about one design point — a pure
/// value, so identical facts always yield byte-identical verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ProveFacts {
    /// Mismatch box of the abstract DAC.
    pub dac: AbstractDacParams,
    /// Regulation window width relative to the target (total).
    pub window_rel_width: f64,
    /// Nominal tank inductance, henries.
    pub l_henries: f64,
    /// Nominal LC1-side capacitance, farads.
    pub c1_farads: f64,
    /// Nominal LC2-side capacitance, farads.
    pub c2_farads: f64,
    /// Relative tolerance box on L, C1 and C2 (±).
    pub element_rel_tol: f64,
    /// Lowest tank quality factor the proof covers.
    pub q_min: f64,
    /// Highest tank quality factor the proof covers.
    pub q_max: f64,
    /// Transconductance of one driver stage, siemens.
    pub gm_per_stage: f64,
    /// Maximum enabled Gm weight.
    pub max_gm_stages: u32,
    /// Relative derating on the available transconductance (process +
    /// temperature).
    pub gm_rel_tol: f64,
    /// Regulation tick period, seconds.
    pub tick_period: f64,
    /// Missing-oscillation timeout, seconds.
    pub missing_clock_timeout: f64,
    /// Fitted detectors: `[missing, low-amplitude, asymmetry]`.
    pub detectors_enabled: [bool; 3],
    /// Model the pre-PR 3 hold-clears-saturation regulator bug (seeded
    /// failure for counterexample tests).
    pub legacy_hold_clears_saturation: bool,
}

impl ProveFacts {
    /// Chip-default facts for a design point: default mismatch box, the
    /// paper's two-decade `Q ∈ [0.5, 50]` coverage, ±10 % element and
    /// Gm tolerances, all three detectors fitted.
    pub fn chip(
        window_rel_width: f64,
        l_henries: f64,
        c1_farads: f64,
        c2_farads: f64,
        tick_period: f64,
    ) -> ProveFacts {
        ProveFacts {
            dac: AbstractDacParams::default(),
            window_rel_width,
            l_henries,
            c1_farads,
            c2_farads,
            element_rel_tol: 0.10,
            q_min: 0.5,
            q_max: 50.0,
            gm_per_stage: DEFAULT_GM_PER_STAGE,
            max_gm_stages: DEFAULT_MAX_GM_STAGES,
            gm_rel_tol: 0.10,
            tick_period,
            missing_clock_timeout: DEFAULT_MISSING_CLOCK_TIMEOUT,
            detectors_enabled: [true; 3],
            legacy_hold_clears_saturation: false,
        }
    }

    /// Missing-clock timeout expressed in regulation ticks (≥ 1; the
    /// reachability model caps the counter at 200 ticks).
    pub fn timeout_ticks(&self) -> u8 {
        if !(self.tick_period > 0.0) || !(self.missing_clock_timeout > 0.0) {
            return 1;
        }
        let ticks = (self.missing_clock_timeout / self.tick_period).ceil();
        if ticks < 1.0 {
            1
        } else if ticks > 200.0 {
            200
        } else {
            ticks as u8
        }
    }
}

/// One proof obligation and its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    /// Stable diagnostic code of the obligation (`A001`…`A007`).
    pub code: &'static str,
    /// Short name of the property.
    pub title: &'static str,
    /// Whether the property was proved.
    pub proved: bool,
    /// Bound values the verdict rests on, human-readable.
    pub detail: String,
}

/// A refuted obligation's witness: a concrete trajectory of the product
/// automaton, as the event stream the real loop would trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Obligation the trace refutes.
    pub obligation: &'static str,
    /// The trajectory.
    pub events: Vec<TraceEvent>,
}

/// The complete verdict of one prove pass.
#[derive(Debug, Clone)]
pub struct ProveOutcome {
    /// Facts the proof ran on (echoed for rendering).
    pub facts: ProveFacts,
    /// Every obligation with its verdict, in `A001`…`A007` order.
    pub obligations: Vec<Obligation>,
    /// `A0xx` diagnostics for the failed obligations.
    pub report: Report,
    /// Worst-case relative step over the regulated codes.
    pub worst_step: StepBound,
    /// Worst (most negative) step — the non-monotonicity excursion.
    pub worst_excursion: StepBound,
    /// Step enclosures at the segment boundaries.
    pub boundaries: Vec<StepBound>,
    /// Abstract critical transconductance over the Q/tolerance box.
    pub critical_gm: Interval,
    /// Guaranteed available transconductance (lower bound).
    pub available_gm_lo: f64,
    /// Reachability statistics and per-detector latencies.
    pub reach: ReachReport,
    /// Rendered counterexamples for the refuted automaton obligations.
    pub counterexamples: Vec<Counterexample>,
}

impl ProveOutcome {
    /// Whether every obligation was proved.
    pub fn proved(&self) -> bool {
        self.obligations.iter().all(|o| o.proved)
    }

    /// The verdict as a deterministic JSON tree (insertion-ordered
    /// keys; every number a pure function of the facts).
    pub fn to_json(&self) -> Json {
        let obligations: Vec<Json> = self
            .obligations
            .iter()
            .map(|o| {
                Json::obj([
                    ("code", Json::from(o.code)),
                    ("title", Json::from(o.title)),
                    ("proved", Json::from(o.proved)),
                    ("detail", Json::from(o.detail.clone())),
                ])
            })
            .collect();
        let boundaries: Vec<Json> = self
            .boundaries
            .iter()
            .map(|b| {
                Json::obj([
                    ("code", Json::from(b.code)),
                    ("lo", Json::from(b.rel_step.lo)),
                    ("hi", Json::from(b.rel_step.hi)),
                ])
            })
            .collect();
        let detectors = ["missing_oscillation", "low_amplitude", "asymmetry"];
        let latency: Vec<Json> = (0..3)
            .map(|d| {
                Json::obj([
                    ("detector", Json::from(detectors[d])),
                    ("enabled", Json::from(self.facts.detectors_enabled[d])),
                    (
                        "latency_ticks",
                        match self.reach.latency_ticks[d] {
                            Some(t) => Json::from(i64::from(t)),
                            None => Json::Null,
                        },
                    ),
                    (
                        "latency_bound",
                        Json::from(i64::from(self.reach.latency_bound[d])),
                    ),
                    ("safe_reachable", Json::from(self.reach.safe_reachable[d])),
                ])
            })
            .collect();
        let counterexamples: Vec<Json> = self
            .counterexamples
            .iter()
            .map(|c| {
                let events: Vec<Json> = c
                    .events
                    .iter()
                    .map(|e| Json::parse(&e.to_jsonl()).expect("trace events render valid JSON"))
                    .collect();
                Json::obj([
                    ("obligation", Json::from(c.obligation)),
                    ("events", Json::Array(events)),
                ])
            })
            .collect();
        Json::obj([
            ("proved", Json::from(self.proved())),
            ("obligations", Json::Array(obligations)),
            (
                "dac",
                Json::obj([
                    ("window_rel_width", Json::from(self.facts.window_rel_width)),
                    ("k_sigma", Json::from(self.facts.dac.k_sigma)),
                    ("worst_step_hi", Json::from(self.worst_step.rel_step.hi)),
                    ("worst_step_code", Json::from(self.worst_step.code)),
                    (
                        "worst_excursion_lo",
                        Json::from(self.worst_excursion.rel_step.lo),
                    ),
                    (
                        "worst_excursion_code",
                        Json::from(self.worst_excursion.code),
                    ),
                    ("boundaries", Json::Array(boundaries)),
                ]),
            ),
            (
                "oscillation",
                Json::obj([
                    ("q_min", Json::from(self.facts.q_min)),
                    ("q_max", Json::from(self.facts.q_max)),
                    ("element_rel_tol", Json::from(self.facts.element_rel_tol)),
                    ("critical_gm_lo", Json::from(self.critical_gm.lo)),
                    ("critical_gm_hi", Json::from(self.critical_gm.hi)),
                    ("available_gm_lo", Json::from(self.available_gm_lo)),
                ]),
            ),
            (
                "reach",
                Json::obj([
                    ("states", Json::from(self.reach.states)),
                    ("transitions", Json::from(self.reach.transitions)),
                    (
                        "timeout_ticks",
                        Json::from(u32::from(self.facts.timeout_ticks())),
                    ),
                    ("latency", Json::Array(latency)),
                ]),
            ),
            ("counterexamples", Json::Array(counterexamples)),
        ])
    }

    /// Byte-stable compact JSON rendering of [`ProveOutcome::to_json`].
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Human-readable rendering: one line per obligation, bound values
    /// inline, counterexample traces appended for refuted properties.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for o in &self.obligations {
            let verdict = if o.proved { "proved" } else { "REFUTED" };
            out.push_str(&format!(
                "{} {:<7} {} — {}\n",
                o.code, verdict, o.title, o.detail
            ));
        }
        let proved = self.obligations.iter().filter(|o| o.proved).count();
        out.push_str(&format!(
            "prove: {} of {} obligations proved ({} states, {} transitions explored)\n",
            proved,
            self.obligations.len(),
            self.reach.states,
            self.reach.transitions
        ));
        for c in &self.counterexamples {
            out.push_str(&format!("counterexample ({}):\n", c.obligation));
            for line in render_jsonl(&c.events, |_| true).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// Runs both engines over `facts` and returns the full verdict.
///
/// Single-threaded and allocation-deterministic: the same facts always
/// produce the same outcome, byte-for-byte, on every thread count.
pub fn prove(facts: &ProveFacts) -> ProveOutcome {
    let mut report = Report::new();
    let mut obligations = Vec::new();

    // ---- Engine 1a: window vs worst step (A001) and excursion (A002).
    let steps = facts.dac.regulated_steps();
    let worst_step = steps
        .iter()
        .copied()
        .max_by(|a, b| {
            a.rel_step
                .hi
                .partial_cmp(&b.rel_step.hi)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(StepBound {
            code: 0,
            rel_step: Interval::point(0.0),
            boundary: false,
        });
    let worst_excursion = steps
        .iter()
        .copied()
        .min_by(|a, b| {
            a.rel_step
                .lo
                .partial_cmp(&b.rel_step.lo)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(worst_step);
    let boundaries: Vec<StepBound> = steps.iter().copied().filter(|b| b.boundary).collect();

    let window = facts.window_rel_width;
    let a001 = worst_step.rel_step.hi < window;
    obligations.push(Obligation {
        code: "A001",
        title: "window wider than worst-case DAC step",
        proved: a001,
        detail: format!(
            "worst abstract step {:?} at code {} (k = {:?} sigma) vs window {:?}",
            worst_step.rel_step.hi, worst_step.code, facts.dac.k_sigma, window
        ),
    });
    if !a001 {
        report.error(
            "A001",
            format!(
                "regulation window {window:?} is not provably wider than the worst-case \
                 DAC step {:?} at code {}",
                worst_step.rel_step.hi, worst_step.code
            ),
            Some(Provenance::Field("window_rel_width")),
        );
    }

    let excursion = (-worst_excursion.rel_step.lo).max(0.0);
    let a002 = excursion < window;
    obligations.push(Obligation {
        code: "A002",
        title: "non-monotonic excursion inside the window",
        proved: a002,
        detail: format!(
            "worst negative step {:?} at code {} vs window {:?}",
            worst_excursion.rel_step.lo, worst_excursion.code, window
        ),
    });
    if !a002 {
        report.error(
            "A002",
            format!(
                "worst-case non-monotonic excursion {excursion:?} at code {} is not \
                 provably inside the regulation window {window:?}",
                worst_excursion.code
            ),
            Some(Provenance::Field("window_rel_width")),
        );
    }

    // ---- Engine 1b: oscillation condition over Q and element boxes
    // (A003). Critical transconductance gm_crit = Rs·C_avg/L, with Rs
    // expressed through Q as ω0·L/Q: gm_crit = C_avg / (Q·√(L·C_ser)).
    let tol = facts.element_rel_tol.max(0.0);
    let (critical_gm, a003, avail_lo);
    if facts.q_min > 0.0
        && facts.q_max >= facts.q_min
        && facts.l_henries > 0.0
        && facts.c1_farads > 0.0
        && facts.c2_farads > 0.0
        && tol < 1.0
    {
        let l = Interval::from_rel_tol(facts.l_henries, tol);
        let c1 = Interval::from_rel_tol(facts.c1_farads, tol);
        let c2 = Interval::from_rel_tol(facts.c2_farads, tol);
        let q = Interval::new(facts.q_min, facts.q_max);
        let c_avg = (c1 + c2) * Interval::point(0.5);
        let c_ser = c1 * c2 / (c1 + c2);
        let crit = c_avg / (q * (l * c_ser).sqrt());
        let avail = next_down(
            f64::from(facts.max_gm_stages) * facts.gm_per_stage * (1.0 - facts.gm_rel_tol),
        );
        critical_gm = crit;
        avail_lo = avail;
        a003 = crit.hi < avail;
    } else {
        critical_gm = Interval::point(f64::MAX);
        avail_lo = 0.0;
        a003 = false;
    }
    obligations.push(Obligation {
        code: "A003",
        title: "oscillation condition over the Q/tolerance box",
        proved: a003,
        detail: format!(
            "critical gm <= {:?} S over Q in [{:?}, {:?}] vs available >= {:?} S",
            critical_gm.hi, facts.q_min, facts.q_max, avail_lo
        ),
    });
    if !a003 {
        report.error(
            "A003",
            format!(
                "oscillation condition not provable: critical gm can reach {:?} S but \
                 only {:?} S is guaranteed available",
                critical_gm.hi, avail_lo
            ),
            Some(Provenance::Field("tank")),
        );
    }

    // ---- Engine 2: exhaustive reachability (A004–A007).
    let reach = analyze(&ReachFacts {
        timeout_ticks: facts.timeout_ticks(),
        detectors_enabled: facts.detectors_enabled,
        legacy_hold_clears_saturation: facts.legacy_hold_clears_saturation,
    });
    let mut counterexamples = Vec::new();

    let enabled: Vec<usize> = (0..3).filter(|&d| facts.detectors_enabled[d]).collect();
    let a004 = !enabled.is_empty() && enabled.iter().all(|&d| reach.safe_reachable[d]);
    obligations.push(Obligation {
        code: "A004",
        title: "safe state reachable through every fitted detector",
        proved: a004,
        detail: format!(
            "fitted detectors: {}, safe-state latch reachable: {:?}",
            enabled.len(),
            reach.safe_reachable
        ),
    });
    if !a004 {
        report.error(
            "A004",
            if enabled.is_empty() {
                "no failure detector is fitted: the safe state is unreachable".to_string()
            } else {
                format!(
                    "the safe state is not reachable through every fitted detector \
                     (reachable: {:?})",
                    reach.safe_reachable
                )
            },
            Some(Provenance::Field("detectors")),
        );
    }

    let a005 = reach.livelock.is_none();
    obligations.push(Obligation {
        code: "A005",
        title: "no livelock under any constant input",
        proved: a005,
        detail: format!(
            "every reachable state settles under every constant input ({} states)",
            reach.states
        ),
    });
    if let Some(trace) = reach.livelock.clone() {
        report.error(
            "A005",
            "the regulation automaton can livelock under a constant input".to_string(),
            Some(Provenance::Field("regulation")),
        );
        counterexamples.push(Counterexample {
            obligation: "A005",
            events: trace,
        });
    }

    let a006 = enabled
        .iter()
        .all(|&d| matches!(reach.latency_ticks[d], Some(t) if t <= reach.latency_bound[d]));
    obligations.push(Obligation {
        code: "A006",
        title: "detector-trip latency within the documented bound",
        proved: a006,
        detail: format!(
            "worst latencies {:?} ticks vs bounds {:?}",
            reach.latency_ticks, reach.latency_bound
        ),
    });
    if !a006 {
        report.error(
            "A006",
            format!(
                "detector-trip to safe-state latency exceeds its documented bound \
                 (worst {:?} vs bounds {:?})",
                reach.latency_ticks, reach.latency_bound
            ),
            Some(Provenance::Field("detectors")),
        );
    }

    let a007 = reach.saturation_violation.is_none();
    obligations.push(Obligation {
        code: "A007",
        title: "saturation latches survive in-window holds",
        proved: a007,
        detail: "an in-window hold preserves both saturation latches".to_string(),
    });
    if let Some(trace) = reach.saturation_violation.clone() {
        report.error(
            "A007",
            "an in-window hold can clear a saturation latch before the low-amplitude \
             detector reads it"
                .to_string(),
            Some(Provenance::Field("regulation")),
        );
        counterexamples.push(Counterexample {
            obligation: "A007",
            events: trace,
        });
    }

    ProveOutcome {
        facts: facts.clone(),
        obligations,
        report,
        worst_step,
        worst_excursion,
        boundaries,
        critical_gm,
        available_gm_lo: avail_lo,
        reach,
        counterexamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasheet_facts() -> ProveFacts {
        // The datasheet_3mhz design point: 4.7 µH, 1.5 nF per side,
        // 15 % window, 1 ms ticks.
        ProveFacts::chip(0.15, 4.7e-6, 1.5e-9, 1.5e-9, 1e-3)
    }

    #[test]
    fn datasheet_point_proves_every_obligation() {
        let outcome = prove(&datasheet_facts());
        assert!(outcome.proved(), "{}", outcome.render_human());
        assert!(outcome.report.is_clean());
        assert_eq!(outcome.obligations.len(), 7);
    }

    #[test]
    fn narrow_window_refutes_a001() {
        let facts = ProveFacts {
            window_rel_width: 0.03,
            ..datasheet_facts()
        };
        let outcome = prove(&facts);
        assert!(!outcome.proved());
        assert!(outcome.report.contains("A001"));
        // A 3 % window is also narrower than the worst ≈4 % negative
        // boundary excursion, so the monotonicity obligation fails too.
        assert!(outcome.report.contains("A002"));
    }

    #[test]
    fn five_percent_window_fails_steps_but_survives_excursions() {
        let facts = ProveFacts {
            window_rel_width: 0.05,
            ..datasheet_facts()
        };
        let outcome = prove(&facts);
        assert!(outcome.report.contains("A001"));
        assert!(!outcome.report.contains("A002"));
    }

    #[test]
    fn impossible_tank_refutes_a003() {
        let facts = ProveFacts {
            q_min: 0.01,
            ..datasheet_facts()
        };
        let outcome = prove(&facts);
        assert!(outcome.report.contains("A003"));
    }

    #[test]
    fn unfitted_detectors_refute_a004() {
        let facts = ProveFacts {
            detectors_enabled: [false; 3],
            ..datasheet_facts()
        };
        let outcome = prove(&facts);
        assert!(outcome.report.contains("A004"));
    }

    #[test]
    fn legacy_regulator_bug_refutes_a007_with_a_trace() {
        let facts = ProveFacts {
            legacy_hold_clears_saturation: true,
            ..datasheet_facts()
        };
        let outcome = prove(&facts);
        assert!(outcome.report.contains("A007"));
        let ce = outcome
            .counterexamples
            .iter()
            .find(|c| c.obligation == "A007")
            .expect("counterexample rendered");
        assert!(!ce.events.is_empty());
        assert!(outcome.render_human().contains("counterexample (A007)"));
    }

    #[test]
    fn verdict_json_is_byte_stable_and_parses_back() {
        let outcome = prove(&datasheet_facts());
        let a = outcome.render_json();
        let b = prove(&datasheet_facts()).render_json();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("verdict is valid JSON");
        assert_eq!(parsed.get("proved"), Some(&Json::Bool(true)));
        assert_eq!(parsed.render(), a, "render/parse round-trip");
    }

    #[test]
    fn timeout_ticks_rounds_up_and_clamps() {
        let mut facts = datasheet_facts();
        assert_eq!(facts.timeout_ticks(), 1); // 100 µs / 1 ms rounds up
        facts.missing_clock_timeout = 2.5e-3;
        assert_eq!(facts.timeout_ticks(), 3);
        facts.missing_clock_timeout = 10.0;
        assert_eq!(facts.timeout_ticks(), 200);
        facts.tick_period = 0.0;
        assert_eq!(facts.timeout_ticks(), 1);
    }
}
