//! Abstract interpretation of the Table 1 DAC over *all* mismatch draws.
//!
//! The concrete model (`lcosc_dac::MismatchedDac`) evaluates one sampled
//! die; this module evaluates the **set** of every die whose device
//! errors stay inside a `k·σ` box, using the outward-rounded
//! [`Interval`] domain. A window-vs-step property proved here holds for
//! every such die — the paper's §3/§4 argument ("the regulation window
//! is wider than the worst step") turned from a spot check into a proof
//! over the full tolerance region.
//!
//! # Why the step ratio needs correlation
//!
//! Naively dividing the abstract output at `code+1` by the abstract
//! output at `code` treats the two as independent, but they share most
//! of their devices: the prescaler stages below the new segment and
//! every mirror leg enabled in both codes cancel *exactly* in the
//! ratio. Ignoring that doubles the apparent worst-case step (≈34 %
//! instead of ≈15 % at the worst boundary) and would spuriously fail
//! the proof. The Table 1 buses are monotone across a code increment
//! (`OscD` is a thermometer code, `OscE` only ever gains bits), so the
//! ratio decomposes as
//!
//! ```text
//! units(c+1) / units(c) = E · (S + A') / (S + A)
//! ```
//!
//! with `E` the product of the *extra* prescaler stages, `S` the sum of
//! legs shared by both codes, and `A`/`A'` the legs exclusive to
//! `c`/`c+1` — all disjoint device sets, hence genuinely independent
//! intervals. `(S + A')/(S + A)` is monotone in each variable (in `S`
//! with the sign of `A − A'`), so its exact range is attained at box
//! corners ([`frac_lo`]/[`frac_hi`]).
//!
//! # The two mirrors
//!
//! The effective current limit is `min(top, bottom)` of two
//! independently sampled mirrors. For per-side ratios `t'/t` and
//! `b'/b`, `min(t', b')/min(t, b)` always lies between `min(t'/t,
//! b'/b)` and `max(t'/t, b'/b)`: whichever side realises the min at
//! both codes gives the ratio exactly, and when the min switches sides
//! the mixed ratio is bracketed by the two pure ones. Both sides have
//! identical abstract structure (same nominals, same σ), so the hull of
//! the two per-side intervals *is* the per-side interval — one
//! evaluation covers the min.

use crate::interval::{frac_hi, frac_lo, Interval};
use lcosc_dac::{Code, ControlWord};

/// Nominal fixed-mirror leg weights in units (Fig 6 / Table 1).
const FIXED_NOMINAL: [f64; 4] = [16.0, 16.0, 32.0, 64.0];

/// Mismatch box of the abstract DAC: the same σ magnitudes as
/// `lcosc_dac::DacMismatchParams`, plus the `k` that turns a σ into a
/// hard envelope (a device's relative error is assumed within `±k·σ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbstractDacParams {
    /// Relative sigma of each ×2 prescaler stage.
    pub sigma_prescale: f64,
    /// Relative sigma of a unit device in the fixed mirror legs
    /// (Pelgrom-scaled by leg area, as in the concrete sampler).
    pub sigma_fixed: f64,
    /// Relative sigma of a unit device in the binary bank.
    pub sigma_unit: f64,
    /// Envelope half-width in sigmas (4 ⇒ ±4σ covers ≈ 99.994 % of
    /// dies per device).
    pub k_sigma: f64,
}

impl Default for AbstractDacParams {
    fn default() -> Self {
        AbstractDacParams {
            sigma_prescale: 0.01,
            sigma_fixed: 0.008,
            sigma_unit: 0.01,
            k_sigma: 4.0,
        }
    }
}

/// Relative-step bound of one code increment, `units(c+1)/units(c) − 1`
/// over every die in the mismatch box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBound {
    /// Starting code of the increment (`c → c+1`).
    pub code: u8,
    /// Sound enclosure of the relative step.
    pub rel_step: Interval,
    /// Whether the increment crosses a segment boundary (different
    /// devices take over — where Fig 14's spikes live).
    pub boundary: bool,
}

impl AbstractDacParams {
    /// Abstract value of one ×2 prescaler stage.
    fn stage(&self) -> Interval {
        Interval::from_rel_tol(2.0, self.k_sigma * self.sigma_prescale)
    }

    /// Abstract value of fixed leg `bit` (16/16/32/64 units), with the
    /// same Pelgrom `1/√area` scaling the concrete sampler applies.
    fn fixed_leg(&self, bit: usize) -> Interval {
        let nom = FIXED_NOMINAL[bit];
        let sigma = self.sigma_fixed / (nom / 16.0).sqrt();
        Interval::from_rel_tol(nom, self.k_sigma * sigma)
    }

    /// Abstract value of binary-bank leg `bit` (`2^bit` units).
    fn bank_leg(&self, bit: usize) -> Interval {
        Interval::from_rel_tol((1u32 << bit) as f64, self.k_sigma * self.sigma_unit)
    }

    /// Abstract output of one mirror side at `code`, in units — the
    /// interval transfer of `MismatchedDac::side_units` over the box.
    pub fn side_units(&self, code: Code) -> Interval {
        let w = ControlWord::encode(code);
        let mut prescale = Interval::point(1.0);
        for bit in 0..3 {
            if w.osc_d & (1 << bit) != 0 {
                prescale = prescale * self.stage();
            }
        }
        let mut inner = Interval::point(0.0);
        for bit in 0..4 {
            if w.osc_e & (1 << bit) != 0 {
                inner = inner + self.fixed_leg(bit);
            }
        }
        for bit in 0..7 {
            if w.osc_f & (1 << bit) != 0 {
                inner = inner + self.bank_leg(bit);
            }
        }
        prescale * inner
    }

    /// Sound enclosure of the relative step `units(c+1)/units(c) − 1`
    /// of the min-of-mirrors output, exploiting shared-device
    /// cancellation (see the module docs). `None` at [`Code::MAX`] and
    /// at code 0 (no current, the ratio is undefined) — matching the
    /// concrete `relative_step`.
    pub fn relative_step(&self, code: Code) -> Option<StepBound> {
        if code == Code::MAX || code == Code::MIN {
            return None;
        }
        let w = ControlWord::encode(code);
        let w2 = ControlWord::encode(code.increment());
        // Table 1 monotonicity across an increment: the prover's
        // decomposition is only valid if devices are never *dropped*.
        debug_assert_eq!(w.osc_d & w2.osc_d, w.osc_d, "OscD is a thermometer code");
        debug_assert_eq!(w.osc_e & w2.osc_e, w.osc_e, "OscE only gains bits");

        // E: the prescaler stages enabled at c+1 but not at c.
        let mut extra = Interval::point(1.0);
        for bit in 0..3 {
            if w2.osc_d & !w.osc_d & (1 << bit) != 0 {
                extra = extra * self.stage();
            }
        }
        // S: shared legs; A / A': legs exclusive to c / c+1.
        let mut shared = Interval::point(0.0);
        let mut only_old = Interval::point(0.0);
        let mut only_new = Interval::point(0.0);
        for bit in 0..4 {
            if w.osc_e & (1 << bit) != 0 {
                shared = shared + self.fixed_leg(bit);
            } else if w2.osc_e & (1 << bit) != 0 {
                only_new = only_new + self.fixed_leg(bit);
            }
        }
        for bit in 0..7 {
            match (w.osc_f & (1 << bit) != 0, w2.osc_f & (1 << bit) != 0) {
                (true, true) => shared = shared + self.bank_leg(bit),
                (true, false) => only_old = only_old + self.bank_leg(bit),
                (false, true) => only_new = only_new + self.bank_leg(bit),
                (false, false) => {}
            }
        }
        let ratio = Interval::new(
            frac_lo(shared, only_new.lo, only_old.hi),
            frac_hi(shared, only_new.hi, only_old.lo),
        );
        let rel_step = extra * ratio - Interval::point(1.0);
        Some(StepBound {
            code: code.value(),
            rel_step,
            boundary: code.lsbs() == 15,
        })
    }

    /// Step bounds for every regulated code increment `c → c+1`,
    /// `c ∈ 16..=126` — the range the paper's §3 window rule governs
    /// (regulation keeps the code above 16; segment 0 steps are whole
    /// multiples of the output and are not window-regulated).
    pub fn regulated_steps(&self) -> Vec<StepBound> {
        (16u32..=126)
            .filter_map(|c| Code::new(c).ok())
            .filter_map(|c| self.relative_step(c))
            .collect()
    }
}

/// One concrete mirror side with explicit device values — the
/// proptest-facing twin of `MismatchedDac`'s private state. Containment
/// soundness is checked against this model (draw devices inside the
/// box, compare with the abstract value), and a conformance test pins
/// its arithmetic to the concrete crate's, so the two cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteDie {
    /// Actual ratios of the three cascaded ×2 prescaler stages.
    pub prescale_stage: [f64; 3],
    /// Actual fixed-mirror leg weights, in units.
    pub fixed: [f64; 4],
    /// Actual binary-bank leg weights (nominally 1, 2, 4, … 64 units).
    pub bank: [f64; 7],
}

impl ConcreteDie {
    /// The nominal die: every device exactly at its drawn value.
    pub fn nominal() -> Self {
        ConcreteDie {
            prescale_stage: [2.0; 3],
            fixed: FIXED_NOMINAL,
            bank: [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        }
    }

    /// Output in units at `code` — the same bus decoding and operation
    /// order as `MismatchedDac::side_units`.
    pub fn units(&self, code: Code) -> f64 {
        let w = ControlWord::encode(code);
        let mut prescale = 1.0;
        for (bit, ratio) in self.prescale_stage.iter().enumerate() {
            if w.osc_d & (1 << bit) != 0 {
                prescale *= ratio;
            }
        }
        let fixed_sum: f64 = (0..4)
            .filter(|bit| w.osc_e & (1 << bit) != 0)
            .map(|bit| self.fixed[bit])
            .sum();
        let bank_sum: f64 = (0..7)
            .filter(|bit| w.osc_f & (1 << bit) != 0)
            .map(|bit| self.bank[bit])
            .sum();
        prescale * (fixed_sum + bank_sum)
    }

    /// Concrete relative step `units(c+1)/units(c) − 1`, `None` where
    /// the abstract counterpart is undefined.
    pub fn relative_step(&self, code: Code) -> Option<f64> {
        if code == Code::MAX || code == Code::MIN {
            return None;
        }
        let i0 = self.units(code);
        if i0 <= 0.0 {
            return None;
        }
        Some(self.units(code.increment()) / i0 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_codes() -> impl Iterator<Item = Code> {
        Code::all()
    }

    #[test]
    fn abstract_side_contains_the_nominal_staircase() {
        let p = AbstractDacParams::default();
        let die = ConcreteDie::nominal();
        for code in all_codes() {
            assert!(p.side_units(code).contains(die.units(code)), "code {code}");
        }
    }

    #[test]
    fn step_enclosure_contains_the_ideal_step() {
        let p = AbstractDacParams::default();
        let die = ConcreteDie::nominal();
        for code in all_codes() {
            let (Some(bound), Some(exact)) = (p.relative_step(code), die.relative_step(code))
            else {
                continue;
            };
            assert!(
                bound.rel_step.contains(exact),
                "code {code}: {exact} not in {:?}",
                bound.rel_step
            );
        }
    }

    #[test]
    fn worst_regulated_step_is_provably_under_the_paper_window() {
        let p = AbstractDacParams::default();
        let worst = p
            .regulated_steps()
            .iter()
            .map(|b| b.rel_step.hi)
            .fold(f64::NEG_INFINITY, f64::max);
        // The chip's window is 15 % of the target; the ±4σ abstract
        // worst step must come in below it (it sits near 11 %).
        assert!(worst < 0.15, "worst abstract step {worst}");
        assert!(worst > 0.0625, "must exceed the ideal 6.25 % step");
    }

    #[test]
    fn correlation_beats_the_naive_quotient() {
        let p = AbstractDacParams::default();
        let code = Code::new(31).expect("31 is a valid code");
        let naive = p.side_units(code.increment()) / p.side_units(code) - Interval::point(1.0);
        let tight = p.relative_step(code).expect("step exists").rel_step;
        assert!(
            tight.hi < naive.hi,
            "correlated {tight:?} vs naive {naive:?}"
        );
        assert!(naive.encloses(tight), "tight bound must still be inside");
    }

    #[test]
    fn boundary_flags_mark_exactly_the_segment_handovers() {
        let p = AbstractDacParams::default();
        for b in p.regulated_steps() {
            assert_eq!(b.boundary, b.code % 16 == 15, "code {}", b.code);
        }
    }

    #[test]
    fn zero_sigma_box_degenerates_to_the_ideal_die() {
        let p = AbstractDacParams {
            sigma_prescale: 0.0,
            sigma_fixed: 0.0,
            sigma_unit: 0.0,
            k_sigma: 4.0,
        };
        let die = ConcreteDie::nominal();
        for code in all_codes().skip(1) {
            let i = p.side_units(code);
            let exact = die.units(code);
            assert!(i.contains(exact) && i.width() < 1e-9, "code {code}");
        }
    }
}
