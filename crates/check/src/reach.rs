//! Exhaustive reachability over the safety automaton — regulation FSM ×
//! failure detectors × safe-state controller.
//!
//! The product automaton is small enough to enumerate outright: a state
//! is `(code, sat_low, sat_high, latch, missing-clock counter)` and an
//! input is `(window class, clock present, low amplitude, asymmetry)`,
//! so the whole space is a few thousand states under the chip's
//! one-tick missing-clock timeout. The model mirrors the workspace's
//! concrete components tick-for-tick:
//!
//! * the regulation decision is `RegulationFsm::tick` verbatim (below →
//!   increment or latch `sat_high` at the top, above → decrement or
//!   latch `sat_low` at the bottom, inside → hold with latches kept);
//! * detectors evaluate **before** the regulation decision, on the
//!   saturation flags of the previous tick, matching the closed-loop
//!   ordering (measure, react, regulate);
//! * a trip latches the safe-state controller, which forces the code to
//!   the maximum (`SafeStateController::react`) — an absorbing state;
//! * the low-amplitude detector only fires once the code is saturated
//!   high (its concrete `evaluate(vpp, saturated_high)` qualifier), and
//!   a low amplitude forces the window comparator below the window —
//!   the physical coupling that makes its trip latency finite.
//!
//! Proved properties (the `A004`–`A007` obligations):
//! absence of unreachable-safe-state, absence of livelock under any
//! constant input, a per-detector bound on the trip → safe-state
//! latency, and preservation of the saturation latches across in-window
//! holds. Failed proofs come with a concrete counterexample path
//! rendered as an `lcosc-trace` event stream.

use lcosc_trace::{DetectorId, StepAction, TraceEvent, WindowClass};

/// Inputs the environment can apply during one regulation tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInput {
    /// Window-comparator classification of the measured amplitude.
    pub window: WindowClass,
    /// Whether the oscillation clock is present this tick.
    pub clock_present: bool,
    /// Whether the measured amplitude is below the low-amplitude
    /// threshold.
    pub low_amplitude: bool,
    /// Whether the LC1/LC2 asymmetry exceeds the detector threshold.
    pub asymmetric: bool,
}

impl ModelInput {
    /// Every physically consistent input: a low amplitude implies the
    /// comparator reads below the window (both compare the same
    /// rectified `VDC`, and the low threshold sits under the window).
    pub fn all() -> Vec<ModelInput> {
        let mut inputs = Vec::new();
        for window in [WindowClass::Below, WindowClass::Inside, WindowClass::Above] {
            for clock_present in [true, false] {
                for low_amplitude in [false, true] {
                    if low_amplitude && window != WindowClass::Below {
                        continue;
                    }
                    for asymmetric in [false, true] {
                        inputs.push(ModelInput {
                            window,
                            clock_present,
                            low_amplitude,
                            asymmetric,
                        });
                    }
                }
            }
        }
        inputs
    }
}

/// One state of the product automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelState {
    /// Regulation code (0..=127).
    pub code: u8,
    /// Bottom-of-range saturation latch.
    pub sat_low: bool,
    /// Top-of-range saturation latch.
    pub sat_high: bool,
    /// Safe-state latch: 0 = regulating, 1..=3 = latched by detector
    /// (missing oscillation / low amplitude / asymmetry).
    pub latched: u8,
    /// Consecutive ticks without the oscillation clock, saturating at
    /// the timeout.
    pub missing_ticks: u8,
}

impl ModelState {
    /// A freshly regulating state at `code` (any NVM-loaded or
    /// POR-preset value — reachability starts from all of them).
    pub fn regulating(code: u8) -> ModelState {
        ModelState {
            code,
            sat_low: false,
            sat_high: false,
            latched: 0,
            missing_ticks: 0,
        }
    }
}

/// Model parameters of one reachability run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachFacts {
    /// Missing-clock timeout in regulation ticks
    /// (`ceil(timeout / tick_period)`, ≥ 1).
    pub timeout_ticks: u8,
    /// Which detectors are fitted: `[missing, low-amplitude, asymmetry]`.
    pub detectors_enabled: [bool; 3],
    /// Reproduce the pre-PR 3 regulator bug where an in-window hold
    /// cleared the saturation latches — the seeded-failure mode for the
    /// `A007` counterexample machinery.
    pub legacy_hold_clears_saturation: bool,
}

impl ReachFacts {
    /// The chip automaton: all three detectors fitted, current
    /// regulator semantics, timeout expressed in ticks.
    pub fn chip(timeout_ticks: u8) -> ReachFacts {
        ReachFacts {
            timeout_ticks: timeout_ticks.max(1),
            detectors_enabled: [true; 3],
            legacy_hold_clears_saturation: false,
        }
    }

    /// One transition of the product automaton.
    pub fn tick(&self, s: ModelState, input: ModelInput) -> ModelState {
        if s.latched != 0 {
            return s; // safe state is absorbing
        }
        let t = self.timeout_ticks.max(1);
        let mut next = s;
        next.missing_ticks = if input.clock_present {
            0
        } else {
            (s.missing_ticks + 1).min(t)
        };
        // Detector evaluation order matches the concrete controller:
        // the first triggered detector wins the latch.
        let trip = if self.detectors_enabled[0] && !input.clock_present && next.missing_ticks >= t {
            Some(1)
        } else if self.detectors_enabled[1] && input.low_amplitude && s.sat_high {
            Some(2)
        } else if self.detectors_enabled[2] && input.asymmetric {
            Some(3)
        } else {
            None
        };
        if let Some(kind) = trip {
            // SafeStateController::react: latch, force the top code.
            // Forcing goes through set_code, which clears both
            // saturation latches.
            next.latched = kind;
            next.code = 127;
            next.sat_low = false;
            next.sat_high = false;
            return next;
        }
        // RegulationFsm::tick.
        match input.window {
            WindowClass::Below => {
                next.sat_low = false;
                if s.code == 127 {
                    next.sat_high = true;
                } else {
                    next.code = s.code + 1;
                }
            }
            WindowClass::Above => {
                next.sat_high = false;
                if s.code == 0 {
                    next.sat_low = true;
                } else {
                    next.code = s.code - 1;
                }
            }
            WindowClass::Inside => {
                if self.legacy_hold_clears_saturation {
                    next.sat_low = false;
                    next.sat_high = false;
                }
            }
        }
        next
    }
}

/// Which detector a latch value refers to.
fn detector_of(latch: u8) -> Option<DetectorId> {
    match latch {
        1 => Some(DetectorId::MissingOscillation),
        2 => Some(DetectorId::LowAmplitude),
        3 => Some(DetectorId::Asymmetry),
        _ => None,
    }
}

/// Everything the exhaustive pass established.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// Reachable product-automaton states.
    pub states: usize,
    /// Explored transitions (reachable states × valid inputs).
    pub transitions: usize,
    /// Per detector: whether a safe state latched by it is reachable.
    pub safe_reachable: [bool; 3],
    /// Per detector: proven worst-case trip → safe-state latency in
    /// ticks (`None` when the detector is disabled or the latency is
    /// unbounded — see [`ReachReport::latency_bounded`]).
    pub latency_ticks: [Option<u32>; 3],
    /// Per detector: whether the latency fixpoint converged at all.
    pub latency_bounded: [bool; 3],
    /// Documented per-detector latency bounds the proof compares
    /// against.
    pub latency_bound: [u32; 3],
    /// A constant-input trajectory that never stabilises, when one
    /// exists (livelock counterexample).
    pub livelock: Option<Vec<TraceEvent>>,
    /// A trajectory on which an in-window hold drops a saturation
    /// latch, when one exists.
    pub saturation_violation: Option<Vec<TraceEvent>>,
}

/// Dense state indexing for the visited/parent tables.
struct Indexer {
    timeout_ticks: u8,
}

impl Indexer {
    fn size(&self) -> usize {
        128 * 2 * 2 * 4 * (self.timeout_ticks as usize + 1)
    }

    fn index(&self, s: ModelState) -> usize {
        let mut i = s.missing_ticks as usize;
        i = i * 4 + s.latched as usize;
        i = i * 2 + usize::from(s.sat_high);
        i = i * 2 + usize::from(s.sat_low);
        i * 128 + s.code as usize
    }

    fn state(&self, mut i: usize) -> ModelState {
        let code = (i % 128) as u8;
        i /= 128;
        let sat_low = i % 2 == 1;
        i /= 2;
        let sat_high = i % 2 == 1;
        i /= 2;
        let latched = (i % 4) as u8;
        i /= 4;
        ModelState {
            code,
            sat_low,
            sat_high,
            latched,
            missing_ticks: i as u8,
        }
    }
}

/// Renders a path of `(state, input, next)` transitions as the event
/// stream the concrete loop would have traced.
fn render_path(facts: &ReachFacts, path: &[(ModelState, ModelInput)]) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for (k, &(s, input)) in path.iter().enumerate() {
        let tick = k as u64 + 1;
        let next = facts.tick(s, input);
        if next.latched != 0 && s.latched == 0 {
            if let Some(detector) = detector_of(next.latched) {
                events.push(TraceEvent::DetectorTrip {
                    tick,
                    detector,
                    latency_ticks: tick,
                });
                events.push(TraceEvent::SafeStateEntry { tick, detector });
            }
            continue;
        }
        let action = match next.code.cmp(&s.code) {
            std::cmp::Ordering::Greater => StepAction::Increment,
            std::cmp::Ordering::Less => StepAction::Decrement,
            std::cmp::Ordering::Equal => StepAction::Hold,
        };
        events.push(TraceEvent::CodeStep {
            tick,
            old: s.code,
            new: next.code,
            action,
            window: input.window,
        });
        if next.sat_high && !s.sat_high {
            events.push(TraceEvent::Saturated { tick, high: true });
        }
        if next.sat_low && !s.sat_low {
            events.push(TraceEvent::Saturated { tick, high: false });
        }
    }
    events
}

/// Exhaustively enumerates the reachable state space and proves (or
/// refutes, with counterexamples) the `A004`–`A007` properties.
pub fn analyze(facts: &ReachFacts) -> ReachReport {
    let facts = ReachFacts {
        timeout_ticks: facts.timeout_ticks.max(1),
        ..*facts
    };
    let idx = Indexer {
        timeout_ticks: facts.timeout_ticks,
    };
    let inputs = ModelInput::all();

    // Breadth-first reachability with parent pointers for trace
    // reconstruction. Initial states: every code, clean flags.
    let mut visited = vec![false; idx.size()];
    let mut parent: Vec<Option<(usize, ModelInput)>> = vec![None; idx.size()];
    let mut queue = std::collections::VecDeque::new();
    for code in 0..=127u8 {
        let s = ModelState::regulating(code);
        visited[idx.index(s)] = true;
        queue.push_back(s);
    }
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut safe_reachable = [false; 3];
    while let Some(s) = queue.pop_front() {
        states += 1;
        if let Some(d) = s.latched.checked_sub(1) {
            safe_reachable[d as usize] = true;
            continue; // absorbing
        }
        for &input in &inputs {
            transitions += 1;
            let next = facts.tick(s, input);
            let ni = idx.index(next);
            if !visited[ni] {
                visited[ni] = true;
                parent[ni] = Some((idx.index(s), input));
                queue.push_back(next);
            }
        }
    }

    // Path from an initial state to `target`, as (state, input) edges.
    let path_to = |target: usize| -> Vec<(ModelState, ModelInput)> {
        let mut rev = Vec::new();
        let mut cursor = target;
        while let Some((prev, input)) = parent[cursor] {
            rev.push((idx.state(prev), input));
            cursor = prev;
        }
        rev.reverse();
        rev
    };

    // A005 — livelock freedom: under every constant input, every
    // reachable state must settle to a fixed point within the longest
    // possible monotone excursion (full code sweep + latching slack).
    let settle_bound = 128 + facts.timeout_ticks as usize + 4;
    let mut livelock = None;
    'livelock: for (i, &seen) in visited.iter().enumerate() {
        if !seen || idx.state(i).latched != 0 {
            continue;
        }
        for &input in &inputs {
            let mut s = idx.state(i);
            let mut settled = false;
            let mut tail = Vec::new();
            for _ in 0..settle_bound {
                let next = facts.tick(s, input);
                if next == s {
                    settled = true;
                    break;
                }
                tail.push((s, input));
                s = next;
            }
            if !settled {
                let mut path = path_to(i);
                path.extend(tail);
                livelock = Some(render_path(&facts, &path));
                break 'livelock;
            }
        }
    }

    // A006 — trip latency: for each fitted detector, the worst number
    // of ticks to reach the safe state from any reachable state, over
    // every input sequence that keeps the detector's fault condition
    // asserted. Computed as a longest-path fixpoint; a cycle means the
    // latency is unbounded.
    let latency_bound = [facts.timeout_ticks as u32, 127 + 2, 1];
    let mut latency_ticks = [None; 3];
    let mut latency_bounded = [true; 3];
    for d in 0..3 {
        if !facts.detectors_enabled[d] {
            continue; // vacuously bounded: no obligation for absent hardware
        }
        let condition = |input: &ModelInput| match d {
            0 => !input.clock_present,
            1 => input.low_amplitude,
            _ => input.asymmetric,
        };
        let held: Vec<ModelInput> = inputs.iter().copied().filter(condition).collect();
        // memo: 0 = unvisited, 1 = on stack, 2 = done.
        let mut mark = vec![0u8; idx.size()];
        let mut lat = vec![0u32; idx.size()];
        let mut worst = Some(0u32);
        for i in 0..idx.size() {
            if !visited[i] {
                continue;
            }
            // Iterative DFS computing lat[i] = max over held inputs of
            // 1 + lat[next]; latched states cost 0.
            let mut stack = vec![(i, 0usize)];
            while let Some(&mut (node, ref mut k)) = stack.last_mut() {
                if idx.state(node).latched != 0 {
                    mark[node] = 2;
                    lat[node] = 0;
                    stack.pop();
                    continue;
                }
                if *k == 0 {
                    if mark[node] == 2 {
                        stack.pop();
                        continue;
                    }
                    mark[node] = 1;
                }
                if *k < held.len() {
                    let input = held[*k];
                    *k += 1;
                    let next = idx.index(facts.tick(idx.state(node), input));
                    if next == node || mark[next] == 1 {
                        // Cycle under a held fault condition: the
                        // detector can be starved forever.
                        worst = None;
                        break;
                    }
                    if mark[next] != 2 {
                        stack.push((next, 0));
                    }
                    continue;
                }
                let mut best = 0u32;
                for &input in &held {
                    let next = idx.index(facts.tick(idx.state(node), input));
                    best = best.max(1 + lat[next]);
                }
                lat[node] = best;
                mark[node] = 2;
                stack.pop();
            }
            if worst.is_none() {
                break;
            }
            worst = worst.map(|w| w.max(lat[i]));
        }
        latency_bounded[d] = worst.is_some();
        latency_ticks[d] = worst;
    }

    // A007 — saturation-latch preservation: an in-window hold must keep
    // both saturation latches.
    let hold = ModelInput {
        window: WindowClass::Inside,
        clock_present: true,
        low_amplitude: false,
        asymmetric: false,
    };
    let mut saturation_violation = None;
    for (i, &seen) in visited.iter().enumerate() {
        if !seen {
            continue;
        }
        let s = idx.state(i);
        if s.latched != 0 || !(s.sat_low || s.sat_high) {
            continue;
        }
        let next = facts.tick(s, hold);
        if next.sat_low != s.sat_low || next.sat_high != s.sat_high {
            let mut path = path_to(i);
            path.push((s, hold));
            saturation_violation = Some(render_path(&facts, &path));
            break;
        }
    }

    ReachReport {
        states,
        transitions,
        safe_reachable,
        latency_ticks,
        latency_bounded,
        latency_bound,
        livelock,
        saturation_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_trace::render_jsonl;

    #[test]
    fn chip_automaton_is_fully_safe() {
        let r = analyze(&ReachFacts::chip(1));
        assert_eq!(r.safe_reachable, [true; 3]);
        assert!(r.livelock.is_none());
        assert!(r.saturation_violation.is_none());
        for d in 0..3 {
            assert!(r.latency_bounded[d], "detector {d}");
            let lat = r.latency_ticks[d].expect("latency computed");
            assert!(
                lat <= r.latency_bound[d],
                "detector {d}: {lat} > {}",
                r.latency_bound[d]
            );
        }
    }

    #[test]
    fn latencies_match_the_analytic_worst_cases() {
        let r = analyze(&ReachFacts::chip(1));
        // Missing clock: one tick of timeout.
        assert_eq!(r.latency_ticks[0], Some(1));
        // Low amplitude: climb 0 → 127, latch sat_high, trip.
        assert_eq!(r.latency_ticks[1], Some(129));
        // Asymmetry trips immediately.
        assert_eq!(r.latency_ticks[2], Some(1));
    }

    #[test]
    fn longer_timeout_stretches_the_missing_clock_latency() {
        let r = analyze(&ReachFacts::chip(3));
        assert_eq!(r.latency_ticks[0], Some(3));
        assert_eq!(r.latency_bound[0], 3);
    }

    #[test]
    fn all_detectors_disabled_makes_safe_state_unreachable() {
        let facts = ReachFacts {
            detectors_enabled: [false; 3],
            ..ReachFacts::chip(1)
        };
        let r = analyze(&facts);
        assert_eq!(r.safe_reachable, [false; 3]);
        // Still no livelock: the loop parks at a saturation fixed point.
        assert!(r.livelock.is_none());
    }

    #[test]
    fn legacy_hold_bug_yields_a_rendered_counterexample() {
        let facts = ReachFacts {
            legacy_hold_clears_saturation: true,
            ..ReachFacts::chip(1)
        };
        let r = analyze(&facts);
        let trace = r.saturation_violation.expect("violation found");
        let jsonl = render_jsonl(&trace, |_| true);
        assert!(jsonl.contains("\"ev\":\"saturated\""), "{jsonl}");
        assert!(jsonl.contains("\"window\":\"inside\""), "{jsonl}");
    }

    #[test]
    fn reachable_space_is_the_expected_size() {
        let r = analyze(&ReachFacts::chip(1));
        // The reachable region is exactly: 128 clean regulating states,
        // the two saturation states (sat_low only at code 0, sat_high
        // only at code 127 — saturation clears on the first step away),
        // and the three absorbing safe states (missing-clock latch
        // carries its timed-out counter; the other two latch with the
        // counter at zero). Exhaustive enumeration, not sampling.
        assert_eq!(r.states, 128 + 2 + 3, "{}", r.states);
        assert!(r.transitions > r.states, "{}", r.transitions);
        // A longer timeout widens the counter dimension.
        let r3 = analyze(&ReachFacts::chip(3));
        assert!(r3.states > r.states, "{} vs {}", r3.states, r.states);
    }

    #[test]
    fn analysis_is_deterministic() {
        let a = analyze(&ReachFacts::chip(1));
        let b = analyze(&ReachFacts::chip(1));
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.latency_ticks, b.latency_ticks);
    }
}
