//! Configuration and safety-invariant checks (the `C0xx` and `S0xx`
//! families).
//!
//! The rules operate on plain-data *facts* structs rather than on
//! `lcosc-core`'s `OscillatorConfig` directly, so that this crate stays at
//! the bottom of the dependency graph: `lcosc-core` (and `lcosc-safety`)
//! build the facts from their own types and feed them down.

use crate::diag::{Provenance, Report};
use lcosc_dac::{multiplication_factor, Code, ControlWord, SEGMENTS};

/// Plain-data snapshot of an oscillator configuration, as needed by the
/// `C0xx` rules. Built by `OscillatorConfig::facts()` in `lcosc-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFacts {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Pin DC operating point, volts.
    pub vref: f64,
    /// Regulation target (differential peak-to-peak), volts.
    pub target_vpp: f64,
    /// Maximum per-pin amplitude the rails allow, volts.
    pub rail_clamp: f64,
    /// Window width relative to the target (total).
    pub window_rel_width: f64,
    /// Detector low-pass time constant, seconds.
    pub detector_tau: f64,
    /// Regulation tick period, seconds.
    pub tick_period: f64,
    /// POR-to-NVM-load delay, seconds.
    pub nvm_delay: f64,
    /// Cycle-mode ODE steps per oscillation period.
    pub steps_per_period: usize,
    /// Envelope-mode integrator substeps per tick.
    pub envelope_substeps: usize,
    /// RMS measurement noise on the detector output, volts.
    pub detector_noise_rms: f64,
    /// NVM startup code as a raw integer (pre-validation).
    pub nvm_code: u32,
}

/// Plain-data snapshot of the safety-detector parameters, as needed by the
/// `S0xx` rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyFacts {
    /// Window width relative to the regulation target (total).
    pub window_rel_width: f64,
    /// Largest relative DAC step in the regulated region (codes above 16).
    pub max_rel_step: f64,
    /// Lower window-comparator threshold on `VDC1`, volts.
    pub window_low: f64,
    /// Upper window-comparator threshold on `VDC1`, volts.
    pub window_high: f64,
    /// Missing-clock detector time-out, seconds.
    pub missing_clock_timeout: f64,
    /// Expected LC oscillation period, seconds.
    pub lc_period: f64,
    /// Low-amplitude detector threshold as a fraction of the target.
    pub low_amplitude_fraction: f64,
    /// Asymmetry detector trip threshold, volts.
    pub asymmetry_threshold: f64,
    /// RMS measurement noise on the detector output, volts.
    pub detector_noise_rms: f64,
}

fn field(name: &'static str) -> Option<Provenance> {
    Some(Provenance::Field(name))
}

/// Checks the `C0xx` rules on a configuration snapshot, including the
/// Table 1 bus encoding of the NVM code.
pub fn check_config_facts(f: &ConfigFacts) -> Report {
    let mut report = Report::new();
    if !(f.target_vpp > 0.0 && f.target_vpp.is_finite()) {
        report.error(
            "C001",
            format!("target_vpp = {} must be positive and finite", f.target_vpp),
            field("target_vpp"),
        );
    }
    if !(f.vdd > 0.0 && f.vref > 0.0 && f.vref < f.vdd) {
        report.error(
            "C002",
            format!(
                "vref = {} must sit strictly between 0 and vdd = {}",
                f.vref, f.vdd
            ),
            field("vref"),
        );
    }
    if f.target_vpp.is_finite() && !(f.target_vpp < 4.0 * f.rail_clamp) {
        report.error(
            "C003",
            format!(
                "target_vpp = {} exceeds the 4×rail_clamp = {} swing the rails allow",
                f.target_vpp,
                4.0 * f.rail_clamp
            ),
            field("target_vpp"),
        );
    }
    if !(f.detector_tau > 0.0 && f.detector_tau.is_finite()) {
        report.error(
            "C004",
            format!("detector_tau = {} must be positive", f.detector_tau),
            field("detector_tau"),
        );
    }
    if !(f.tick_period > 10.0 * f.detector_tau) {
        report.error(
            "C005",
            format!(
                "tick_period = {} must exceed 10×detector_tau = {} (the detector must settle within a tick)",
                f.tick_period,
                10.0 * f.detector_tau
            ),
            field("tick_period"),
        );
    }
    if !(f.nvm_delay > 0.0 && f.nvm_delay < f.tick_period) {
        report.error(
            "C006",
            format!(
                "nvm_delay = {} must fall inside the first tick (0, {})",
                f.nvm_delay, f.tick_period
            ),
            field("nvm_delay"),
        );
    }
    if f.steps_per_period < 20 {
        report.error(
            "C007",
            format!(
                "steps_per_period = {} is below the minimum of 20",
                f.steps_per_period
            ),
            field("steps_per_period"),
        );
    }
    if f.envelope_substeps == 0 {
        report.error(
            "C008",
            "envelope_substeps must be at least 1".into(),
            field("envelope_substeps"),
        );
    }
    if !(f.detector_noise_rms >= 0.0 && f.detector_noise_rms.is_finite()) {
        report.error(
            "C009",
            format!(
                "detector_noise_rms = {} must be finite and non-negative",
                f.detector_noise_rms
            ),
            field("detector_noise_rms"),
        );
    }
    if !(f.window_rel_width > 0.0625) {
        report.error(
            "S001",
            format!(
                "window_rel_width = {} must exceed the 6.25 % maximum relative DAC step (paper §3)",
                f.window_rel_width
            ),
            field("window_rel_width"),
        );
    }
    match Code::new(f.nvm_code) {
        Err(_) => {
            report.error(
                "C010",
                format!(
                    "nvm_code = {} is outside the 7-bit range 0..=127",
                    f.nvm_code
                ),
                field("nvm_code"),
            );
        }
        Ok(code) => {
            report.merge(check_control_word(&ControlWord::encode(code)));
            if code.value() < 16 {
                report.info(
                    "C010",
                    format!(
                        "nvm_code = {} sits in segment 0 where the relative DAC step exceeds 6.25 % (paper §3 keeps the regulated code above 16)",
                        code.value()
                    ),
                    field("nvm_code"),
                );
            }
        }
    }
    report.merge(check_segment_table());
    report.merge(check_dac_monotonicity());
    report
}

/// C011: a [`ControlWord`] must be one of Table 1's rows — thermometer
/// `OscD`, ascending-enable `OscE`, and `OscF` data bits confined to the
/// segment's nibble position.
pub fn check_control_word(w: &ControlWord) -> Report {
    let mut report = Report::new();
    const OSC_D_VALID: [u8; 4] = [0b000, 0b001, 0b011, 0b111];
    const OSC_E_VALID: [u8; 5] = [0b0000, 0b0001, 0b0011, 0b0111, 0b1111];
    if !OSC_D_VALID.contains(&w.osc_d) {
        report.error(
            "C011",
            format!(
                "OscD = {:03b} is not a thermometer pattern (000/001/011/111)",
                w.osc_d
            ),
            field("osc_d"),
        );
    }
    if !OSC_E_VALID.contains(&w.osc_e) {
        report.error(
            "C011",
            format!(
                "OscE = {:04b} is not an ascending enable pattern (0000/0001/0011/0111/1111)",
                w.osc_e
            ),
            field("osc_e"),
        );
    }
    if w.osc_f > 0x7F {
        report.error(
            "C011",
            format!("OscF = {:#04x} does not fit the 7-bit bus", w.osc_f),
            field("osc_f"),
        );
    }
    // Only flag placement when the buses themselves were valid.
    if !report.has_errors() && w.decode().is_err() {
        report.error(
            "C011",
            format!("{w} does not correspond to any Table 1 row"),
            field("osc_f"),
        );
    }
    report
}

/// C012: structural invariants of the 8-segment PWL table — ranges tile
/// `0..=1984` seamlessly, steps double from segment 2 on, and each segment's
/// `prescale`/`OscF` shift reproduces its step and fixed offset.
pub fn check_segment_table() -> Report {
    let mut report = Report::new();
    let mut prev: Option<(u32, u32)> = None;
    for seg in &SEGMENTS {
        let p = Provenance::Field("dac segment table");
        if seg.range_max != seg.range_min + 15 * seg.step {
            report.error(
                "C012",
                format!(
                    "segment {}: range {}..{} does not span 15 steps of {}",
                    seg.index, seg.range_min, seg.range_max, seg.step
                ),
                Some(p.clone()),
            );
        }
        if seg.prescale * (1 << seg.oscf_shift) != seg.step {
            report.error(
                "C012",
                format!(
                    "segment {}: prescale {} × 2^{} does not reproduce the step {}",
                    seg.index, seg.prescale, seg.oscf_shift, seg.step
                ),
                Some(p.clone()),
            );
        }
        if seg.prescale * seg.fixed_units() != seg.range_min {
            report.error(
                "C012",
                format!(
                    "segment {}: prescale {} × fixed {} does not reproduce the range start {}",
                    seg.index,
                    seg.prescale,
                    seg.fixed_units(),
                    seg.range_min
                ),
                Some(p.clone()),
            );
        }
        if let Some((pm, ps)) = prev {
            if seg.range_min != pm + ps {
                report.error(
                    "C012",
                    format!(
                        "segment {}: range start {} does not continue the previous segment (expected {})",
                        seg.index,
                        seg.range_min,
                        pm + ps
                    ),
                    Some(p),
                );
            }
        }
        prev = Some((seg.range_max, seg.step));
    }
    report
}

/// C013: the ideal code-to-units transfer must be strictly increasing —
/// a non-monotonic staircase makes the ±1 regulation loop hunt.
pub fn check_dac_monotonicity() -> Report {
    let mut report = Report::new();
    let mut prev: Option<(Code, u32)> = None;
    for code in Code::all() {
        let units = multiplication_factor(code);
        if let Some((pc, pu)) = prev {
            if units <= pu && code.value() > 0 {
                report.warning(
                    "C013",
                    format!(
                        "transfer is not increasing: M({}) = {} but M({}) = {}",
                        pc, pu, code, units
                    ),
                    field("dac transfer"),
                );
            }
        }
        prev = Some((code, units));
    }
    report
}

/// Checks the `S0xx` safety-invariant rules on a detector snapshot.
pub fn check_safety_facts(f: &SafetyFacts) -> Report {
    let mut report = Report::new();
    if !(f.window_rel_width > f.max_rel_step) {
        report.error(
            "S001",
            format!(
                "window_rel_width = {} must exceed the maximum relative DAC step {} (paper §4: otherwise no code lands inside the window and the loop hunts forever)",
                f.window_rel_width, f.max_rel_step
            ),
            field("window_rel_width"),
        );
    }
    if !(f.window_low < f.window_high) {
        report.error(
            "S002",
            format!(
                "window thresholds are not ordered: low = {} must be below high = {}",
                f.window_low, f.window_high
            ),
            field("window_low"),
        );
    }
    if !(f.missing_clock_timeout > 0.0) || f.missing_clock_timeout < 4.0 * f.lc_period {
        report.error(
            "S003",
            format!(
                "missing-clock timeout = {} is shorter than 4 LC periods ({}): the detector would trip on a healthy clock",
                f.missing_clock_timeout,
                4.0 * f.lc_period
            ),
            field("missing_clock_timeout"),
        );
    } else if f.missing_clock_timeout > 1e5 * f.lc_period {
        report.warning(
            "S004",
            format!(
                "missing-clock timeout = {} spans more than 1e5 LC periods: fault detection may be too slow for the fault-tolerant time interval",
                f.missing_clock_timeout
            ),
            field("missing_clock_timeout"),
        );
    }
    if !(f.low_amplitude_fraction > 0.0 && f.low_amplitude_fraction < 1.0) {
        report.error(
            "S005",
            format!(
                "low_amplitude_fraction = {} must lie strictly inside (0, 1)",
                f.low_amplitude_fraction
            ),
            field("low_amplitude_fraction"),
        );
    }
    if !(f.asymmetry_threshold > 0.0 && f.asymmetry_threshold.is_finite()) {
        report.error(
            "S006",
            format!(
                "asymmetry_threshold = {} must be positive and finite",
                f.asymmetry_threshold
            ),
            field("asymmetry_threshold"),
        );
    }
    let half_window = 0.5 * (f.window_high - f.window_low);
    if half_window > 0.0 && f.detector_noise_rms > 0.5 * half_window {
        report.warning(
            "S007",
            format!(
                "detector_noise_rms = {} exceeds half the window half-width {}: the comparator decision will chatter",
                f.detector_noise_rms, half_window
            ),
            field("detector_noise_rms"),
        );
    }
    report
}

/// The largest relative step of the ideal DAC transfer over the regulated
/// region (codes above 16, paper §3's 6.25 % bound).
pub fn ideal_max_rel_step_above_16() -> f64 {
    let mut max_rel = 0.0f64;
    for code in Code::all().filter(|c| c.value() >= 16) {
        let here = multiplication_factor(code) as f64;
        let next = code.increment();
        if next == code {
            break;
        }
        let there = multiplication_factor(next) as f64;
        if here > 0.0 {
            max_rel = max_rel.max((there - here) / here);
        }
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_config() -> ConfigFacts {
        ConfigFacts {
            vdd: 3.3,
            vref: 1.65,
            target_vpp: 2.7,
            rail_clamp: 1.65,
            window_rel_width: 0.15,
            detector_tau: 30e-6,
            tick_period: 1e-3,
            nvm_delay: 5e-6,
            steps_per_period: 60,
            envelope_substeps: 256,
            detector_noise_rms: 0.0,
            nvm_code: 105,
        }
    }

    fn good_safety() -> SafetyFacts {
        SafetyFacts {
            window_rel_width: 0.15,
            max_rel_step: 0.0625,
            window_low: 0.397,
            window_high: 0.462,
            missing_clock_timeout: 100e-6,
            lc_period: 0.37e-6,
            low_amplitude_fraction: 0.6,
            asymmetry_threshold: 0.05,
            detector_noise_rms: 0.0,
        }
    }

    #[test]
    fn nominal_facts_are_clean() {
        let r = check_config_facts(&good_config());
        assert!(r.is_clean(), "{}", r.render_human());
        let r = check_safety_facts(&good_safety());
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn c001_bad_target() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut f = good_config();
            f.target_vpp = bad;
            let r = check_config_facts(&f);
            assert!(r.contains("C001"), "target {bad}: {}", r.render_human());
            assert!(r.has_errors());
        }
    }

    #[test]
    fn c002_vref_outside_rails() {
        let mut f = good_config();
        f.vref = 3.4;
        assert!(check_config_facts(&f).contains("C002"));
        f.vref = -0.1;
        assert!(check_config_facts(&f).contains("C002"));
    }

    #[test]
    fn c003_target_beyond_rails() {
        let mut f = good_config();
        f.target_vpp = 7.0; // > 4 × 1.65
        let r = check_config_facts(&f);
        assert!(r.contains("C003"), "{}", r.render_human());
    }

    #[test]
    fn c004_c005_detector_timing() {
        let mut f = good_config();
        f.detector_tau = 0.0;
        let r = check_config_facts(&f);
        assert!(r.contains("C004"));
        let mut f = good_config();
        f.detector_tau = f.tick_period; // slower than the loop
        assert!(check_config_facts(&f).contains("C005"));
    }

    #[test]
    fn c006_nvm_delay() {
        let mut f = good_config();
        f.nvm_delay = 2e-3;
        assert!(check_config_facts(&f).contains("C006"));
        f.nvm_delay = 0.0;
        assert!(check_config_facts(&f).contains("C006"));
    }

    #[test]
    fn c007_c008_discretization() {
        let mut f = good_config();
        f.steps_per_period = 5;
        assert!(check_config_facts(&f).contains("C007"));
        let mut f = good_config();
        f.envelope_substeps = 0;
        assert!(check_config_facts(&f).contains("C008"));
    }

    #[test]
    fn c009_noise() {
        let mut f = good_config();
        f.detector_noise_rms = -1.0;
        assert!(check_config_facts(&f).contains("C009"));
        f.detector_noise_rms = f64::NAN;
        assert!(check_config_facts(&f).contains("C009"));
    }

    #[test]
    fn c010_code_out_of_range() {
        let mut f = good_config();
        f.nvm_code = 200;
        let r = check_config_facts(&f);
        assert!(r.contains("C010"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn c010_low_code_is_informational() {
        let mut f = good_config();
        f.nvm_code = 5;
        let r = check_config_facts(&f);
        assert!(r.contains("C010"));
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn c011_bad_bus_patterns() {
        let w = ControlWord {
            osc_d: 0b010,
            osc_e: 0b0101,
            osc_f: 0,
        };
        let r = check_control_word(&w);
        assert!(r.contains("C011"));
        assert_eq!(r.error_count(), 2, "{}", r.render_human());
    }

    #[test]
    fn c011_stray_oscf_bits() {
        // Valid buses for segment 7 but data bits below the shift position.
        let w = ControlWord {
            osc_d: 0b111,
            osc_e: 0b1111,
            osc_f: 0b0000101,
        };
        let r = check_control_word(&w);
        assert!(r.contains("C011"), "{}", r.render_human());
    }

    #[test]
    fn every_table1_row_is_accepted() {
        for code in Code::all() {
            let r = check_control_word(&ControlWord::encode(code));
            assert!(r.is_clean(), "code {code}: {}", r.render_human());
        }
    }

    #[test]
    fn segment_table_and_monotonicity_hold() {
        assert!(check_segment_table().is_clean());
        assert!(check_dac_monotonicity().is_clean());
    }

    #[test]
    fn s001_fires_from_the_config_pass_too() {
        let mut f = good_config();
        f.window_rel_width = 0.05;
        let r = check_config_facts(&f);
        assert!(r.contains("S001"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn s001_narrow_window() {
        let mut f = good_safety();
        f.window_rel_width = 0.05;
        let r = check_safety_facts(&f);
        assert!(r.contains("S001"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn s002_inverted_thresholds() {
        let mut f = good_safety();
        f.window_low = f.window_high + 0.1;
        assert!(check_safety_facts(&f).contains("S002"));
    }

    #[test]
    fn s003_timeout_too_short() {
        let mut f = good_safety();
        f.missing_clock_timeout = f.lc_period; // one period: trips on healthy clock
        let r = check_safety_facts(&f);
        assert!(r.contains("S003"), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn s004_timeout_too_long_warns() {
        let mut f = good_safety();
        f.missing_clock_timeout = 1.0; // 1 s at MHz clocks
        let r = check_safety_facts(&f);
        assert!(r.contains("S004"));
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn s005_fraction_bounds() {
        for bad in [0.0, 1.0, -0.5, 1.5] {
            let mut f = good_safety();
            f.low_amplitude_fraction = bad;
            assert!(check_safety_facts(&f).contains("S005"), "fraction {bad}");
        }
    }

    #[test]
    fn s006_asymmetry_threshold() {
        let mut f = good_safety();
        f.asymmetry_threshold = 0.0;
        assert!(check_safety_facts(&f).contains("S006"));
    }

    #[test]
    fn s007_noise_chatter_warns() {
        let mut f = good_safety();
        f.detector_noise_rms = 0.03; // vs half-window ≈ 0.0325
        let r = check_safety_facts(&f);
        assert!(r.contains("S007"));
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn ideal_max_rel_step_is_one_sixteenth() {
        let m = ideal_max_rel_step_above_16();
        assert!((m - 0.0625).abs() < 1e-12, "max rel step {m}");
    }
}
