//! Ratiometric position decoding.
//!
//! The two demodulated channels are proportional to `k·sin(θ)` and
//! `k·cos(θ)`; `atan2` recovers θ independent of the absolute excitation
//! amplitude (the regulation loop keeps it stable anyway, which the
//! magnitude check exploits as a diagnostic).

/// A decoded position sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedPosition {
    /// Electrical angle in radians, wrapped to `(-π, π]`.
    pub angle: f64,
    /// Signal-vector magnitude `√(sin² + cos²)` in the demodulator's units.
    pub magnitude: f64,
}

/// Stateless angle decoder with a magnitude window for validity checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionDecoder {
    magnitude_nominal: f64,
    magnitude_tolerance: f64,
}

impl PositionDecoder {
    /// Creates a decoder expecting the signal-vector magnitude
    /// `magnitude_nominal` within a relative `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(magnitude_nominal: f64, tolerance: f64) -> Self {
        assert!(
            magnitude_nominal > 0.0,
            "nominal magnitude must be positive"
        );
        assert!(tolerance > 0.0, "tolerance must be positive");
        PositionDecoder {
            magnitude_nominal,
            magnitude_tolerance: tolerance,
        }
    }

    /// Expected magnitude.
    pub fn magnitude_nominal(&self) -> f64 {
        self.magnitude_nominal
    }

    /// Decodes one sample pair from the sine/cosine channels.
    pub fn decode(&self, ch_sin: f64, ch_cos: f64) -> DecodedPosition {
        DecodedPosition {
            angle: ch_sin.atan2(ch_cos),
            magnitude: ch_sin.hypot(ch_cos),
        }
    }

    /// Whether a decoded sample's magnitude is inside the validity window.
    pub fn is_valid(&self, p: &DecodedPosition) -> bool {
        (p.magnitude / self.magnitude_nominal - 1.0).abs() <= self.magnitude_tolerance
    }
}

/// Smallest signed difference `a − b` between two wrapped angles.
pub fn angle_difference(a: f64, b: f64) -> f64 {
    let mut d = a - b;
    while d > std::f64::consts::PI {
        d -= 2.0 * std::f64::consts::PI;
    }
    while d <= -std::f64::consts::PI {
        d += 2.0 * std::f64::consts::PI;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn decodes_all_quadrants() {
        let d = PositionDecoder::new(0.25, 0.2);
        for i in 0..16 {
            let theta = -PI + (i as f64 + 0.5) * 2.0 * PI / 16.0;
            let p = d.decode(0.25 * theta.sin(), 0.25 * theta.cos());
            assert!(angle_difference(p.angle, theta).abs() < 1e-12, "at {theta}");
            assert!((p.magnitude - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_is_amplitude_independent() {
        let d = PositionDecoder::new(0.25, 0.2);
        let theta = 1.234f64;
        for scale in [0.5, 1.0, 3.0] {
            let p = d.decode(scale * theta.sin(), scale * theta.cos());
            assert!(
                angle_difference(p.angle, theta).abs() < 1e-12,
                "scale {scale}"
            );
        }
    }

    #[test]
    fn validity_window() {
        let d = PositionDecoder::new(1.0, 0.1);
        assert!(d.is_valid(&d.decode(0.0, 1.0)));
        assert!(d.is_valid(&d.decode(0.0, 1.09)));
        assert!(!d.is_valid(&d.decode(0.0, 1.2)));
        assert!(!d.is_valid(&d.decode(0.0, 0.5)));
        assert!(!d.is_valid(&d.decode(0.0, 0.0)));
    }

    #[test]
    fn angle_difference_wraps() {
        assert!((angle_difference(3.0, -3.0) - (6.0 - 2.0 * PI)).abs() < 1e-12);
        assert!((angle_difference(-3.0, 3.0) + (6.0 - 2.0 * PI)).abs() < 1e-12);
        assert_eq!(angle_difference(1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_nominal() {
        let _ = PositionDecoder::new(0.0, 0.1);
    }
}
