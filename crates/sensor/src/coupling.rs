//! Rotor-dependent coupling between the excitation coil and the two
//! receiving coils.
//!
//! A classic inductive resolver: the receiving coils are laid out so their
//! coupling to the excitation field varies as the sine and cosine of the
//! (electrical) rotor angle. Signs carry through — the demodulator output
//! is signed, which is what makes the full-circle `atan2` decode possible.

/// Quadrature coupling profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotorCoupling {
    k_peak: f64,
    pole_pairs: u32,
}

impl RotorCoupling {
    /// Creates a profile with peak coupling `k_peak` (fraction of the
    /// excitation amplitude reaching a receiving coil at best alignment)
    /// and the number of electrical pole pairs per mechanical revolution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k_peak <= 1` and `pole_pairs >= 1`.
    pub fn new(k_peak: f64, pole_pairs: u32) -> Self {
        assert!(k_peak > 0.0 && k_peak <= 1.0, "coupling must be in (0, 1]");
        assert!(pole_pairs >= 1, "need at least one pole pair");
        RotorCoupling { k_peak, pole_pairs }
    }

    /// A typical sensor: 25 % peak coupling, one pole pair.
    pub fn typical() -> Self {
        RotorCoupling::new(0.25, 1)
    }

    /// Peak coupling factor.
    pub fn k_peak(&self) -> f64 {
        self.k_peak
    }

    /// Electrical pole pairs.
    pub fn pole_pairs(&self) -> u32 {
        self.pole_pairs
    }

    /// Signed coupling factors `(k_sin, k_cos)` at mechanical angle
    /// `theta` radians.
    pub fn at(&self, theta: f64) -> (f64, f64) {
        let e = self.pole_pairs as f64 * theta;
        (self.k_peak * e.sin(), self.k_peak * e.cos())
    }

    /// Electrical angle corresponding to a mechanical angle (wrapped to
    /// `(-π, π]`).
    pub fn electrical_angle(&self, theta: f64) -> f64 {
        let e = self.pole_pairs as f64 * theta;
        e.sin().atan2(e.cos())
    }
}

impl Default for RotorCoupling {
    fn default() -> Self {
        RotorCoupling::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn quadrature_at_cardinal_angles() {
        let c = RotorCoupling::typical();
        let (s, k) = c.at(0.0);
        assert!((s - 0.0).abs() < 1e-12 && (k - 0.25).abs() < 1e-12);
        let (s, k) = c.at(FRAC_PI_2);
        assert!((s - 0.25).abs() < 1e-12 && k.abs() < 1e-12);
        let (s, k) = c.at(PI);
        assert!(s.abs() < 1e-9 && (k + 0.25).abs() < 1e-12);
    }

    #[test]
    fn magnitude_is_angle_independent() {
        let c = RotorCoupling::typical();
        for i in 0..32 {
            let theta = i as f64 * 2.0 * PI / 32.0;
            let (s, k) = c.at(theta);
            assert!(((s * s + k * k).sqrt() - 0.25).abs() < 1e-12, "at {theta}");
        }
    }

    #[test]
    fn pole_pairs_multiply_electrical_angle() {
        let c = RotorCoupling::new(0.25, 4);
        // Mechanical 45° = one full electrical half-turn for 4 pole pairs.
        let e = c.electrical_angle(PI / 4.0);
        assert!((e - PI).abs() < 1e-9 || (e + PI).abs() < 1e-9, "e {e}");
    }

    #[test]
    fn electrical_angle_wraps() {
        let c = RotorCoupling::typical();
        let e = c.electrical_angle(2.0 * PI + 0.1);
        assert!((e - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn rejects_bad_coupling() {
        let _ = RotorCoupling::new(1.5, 1);
    }
}
