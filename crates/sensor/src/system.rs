//! The complete position sensor: regulated excitation + coupling +
//! receivers + decoder + diagnostics.

use crate::coupling::RotorCoupling;
use crate::decoder::{DecodedPosition, PositionDecoder};
use crate::diagnostics::{ReceiverDiagnostics, ReceiverFault};
use crate::receiver::SynchronousDemodulator;
use crate::SensorError;
use lcosc_core::config::OscillatorConfig;
use lcosc_core::sim::ClosedLoopSim;

/// One complete position measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionMeasurement {
    /// Decoded electrical angle and magnitude.
    pub position: DecodedPosition,
    /// Whether the magnitude passed the validity window.
    pub valid: bool,
    /// Receiving-side faults (empty when healthy).
    pub faults: Vec<ReceiverFault>,
    /// Excitation amplitude used, volts differential peak.
    pub excitation_peak: f64,
}

/// The sensor system.
#[derive(Debug, Clone)]
pub struct PositionSensor {
    excitation: ClosedLoopSim,
    coupling: RotorCoupling,
    decoder: PositionDecoder,
    diagnostics: ReceiverDiagnostics,
    /// Demodulation carrier frequency and step used for waveform-level
    /// measurements.
    carrier_hz: f64,
    /// Fault-injection hooks: per-channel scaling (1.0 healthy, 0.0 open).
    channel_gain: [f64; 2],
    /// Resistance to the excitation coil (∞ healthy).
    r_short: f64,
}

impl PositionSensor {
    /// Builds the sensor and settles the excitation loop.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError`] when the oscillator configuration is invalid
    /// or the excitation loop fails to settle.
    pub fn new(config: OscillatorConfig, coupling: RotorCoupling) -> Result<Self, SensorError> {
        let carrier_hz = config.tank.f0().value();
        let mut excitation = ClosedLoopSim::new(config)?;
        let report = excitation.run_until_settled()?;
        if !report.settled {
            return Err(SensorError::InvalidConfig(
                "excitation loop did not settle on this tank",
            ));
        }
        // Expected demod magnitude: coupling × differential peak / 2
        // (normalized demodulation; see SynchronousDemodulator docs).
        let excitation_peak = report.final_vpp / 2.0;
        let magnitude_nominal = coupling.k_peak() * excitation_peak / 2.0;
        Ok(PositionSensor {
            excitation,
            coupling,
            decoder: PositionDecoder::new(magnitude_nominal, 0.3),
            diagnostics: ReceiverDiagnostics::chip_default(magnitude_nominal),
            carrier_hz,
            channel_gain: [1.0, 1.0],
            r_short: f64::INFINITY,
        })
    }

    /// The regulated excitation simulation.
    pub fn excitation(&self) -> &ClosedLoopSim {
        &self.excitation
    }

    /// Injects an open receiving coil (channel 0 = sin, 1 = cos).
    ///
    /// # Panics
    ///
    /// Panics if `channel > 1`.
    pub fn inject_open_coil(&mut self, channel: usize) {
        assert!(channel < 2, "channel must be 0 or 1");
        self.channel_gain[channel] = 0.0;
    }

    /// Injects a short between a receiving coil and the excitation coil
    /// with the given fault resistance.
    ///
    /// # Panics
    ///
    /// Panics if `r_short` is not positive.
    pub fn inject_short_to_excitation(&mut self, r_short: f64) {
        assert!(r_short > 0.0, "fault resistance must be positive");
        self.r_short = r_short;
        // The low-impedance excitation winding dumps the full carrier into
        // the receiving channel.
        self.channel_gain[0] = 1.0 / self.coupling.k_peak();
    }

    /// Measures the position at mechanical angle `theta` by running the
    /// waveform-level demodulation for `cycles` carrier cycles.
    pub fn measure(&mut self, theta: f64, cycles: usize) -> PositionMeasurement {
        let a = self.excitation.amplitude_vpp() / 2.0; // differential peak
        let (k_sin, k_cos) = self.coupling.at(theta);
        let dt = 1.0 / (self.carrier_hz * 40.0);
        let mut demod_sin = SynchronousDemodulator::typical(dt);
        let mut demod_cos = SynchronousDemodulator::typical(dt);
        let steps = (cycles as f64 / self.carrier_hz / dt) as usize;
        for i in 0..steps {
            let ph = 2.0 * std::f64::consts::PI * self.carrier_hz * i as f64 * dt;
            let carrier = a * ph.sin();
            let reference = ph.sin(); // unit reference from the fast comparator
            demod_sin.update(self.channel_gain[0] * k_sin * carrier, reference);
            demod_cos.update(self.channel_gain[1] * k_cos * carrier, reference);
        }
        let position = self.decoder.decode(demod_sin.output(), demod_cos.output());
        let valid = self.decoder.is_valid(&position);
        let faults = self.diagnostics.evaluate(position.magnitude, self.r_short);
        PositionMeasurement {
            position,
            valid: valid && faults.is_empty(),
            faults,
            excitation_peak: a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::angle_difference;

    fn sensor() -> PositionSensor {
        PositionSensor::new(OscillatorConfig::fast_test(), RotorCoupling::typical())
            .expect("fast-test sensor builds")
    }

    #[test]
    fn measures_angles_accurately() {
        let mut s = sensor();
        for i in 0..8 {
            let theta = -3.0 + i as f64 * 0.75;
            let m = s.measure(theta, 150);
            let expect = s.coupling.electrical_angle(theta);
            assert!(
                angle_difference(m.position.angle, expect).abs() < 0.01,
                "theta {theta}: decoded {} vs {expect}",
                m.position.angle
            );
            assert!(m.valid, "theta {theta}: {m:?}");
        }
    }

    #[test]
    fn open_coil_invalidates_measurement() {
        let mut s = sensor();
        s.inject_open_coil(0);
        let m = s.measure(0.8, 150);
        assert!(!m.valid);
        // With the sine channel dead the magnitude drops below nominal at
        // angles where sine should dominate.
        assert!(m.position.magnitude < s.decoder.magnitude_nominal());
    }

    #[test]
    fn short_to_excitation_detected() {
        let mut s = sensor();
        s.inject_short_to_excitation(100.0);
        let m = s.measure(0.3, 150);
        assert!(!m.valid);
        assert!(
            m.faults.contains(&ReceiverFault::ShortToExcitation),
            "{:?}",
            m.faults
        );
    }

    #[test]
    fn magnitude_tracks_regulated_excitation() {
        // 400 carrier cycles = 8 demodulator time constants: the filter is
        // fully settled and the magnitude matches the analytic value.
        let mut s = sensor();
        let m = s.measure(0.5, 400);
        let expect = s.coupling.k_peak() * m.excitation_peak / 2.0;
        assert!(
            (m.position.magnitude / expect - 1.0).abs() < 0.02,
            "{} vs {expect}",
            m.position.magnitude
        );
    }
}
