//! # lcosc-sensor — the inductive position sensor application
//!
//! The paper's introduction motivates the oscillator driver with a sensor:
//! the regulated harmonic current in the excitation coil couples into
//! receiving coils whose coupling varies with rotor position; *"the
//! amplitudes of the received signals are compared and then used to
//! determine position of the sensor."*
//!
//! This crate builds that application layer on top of the regulated
//! oscillator:
//!
//! - [`coupling::RotorCoupling`] — signed quadrature coupling factors as a
//!   function of rotor angle (a classic inductive resolver profile),
//! - [`receiver::SynchronousDemodulator`] — the receive chain: gain,
//!   offset, multiplication by the excitation reference and low-pass
//!   filtering (coherent detection rejects uncorrelated interference),
//! - [`decoder::PositionDecoder`] — ratiometric `atan2` angle decode with a
//!   signal-magnitude quality metric,
//! - [`diagnostics`] — the paper's §7 *system-level* checks on the
//!   receiving side: DC-level monitoring that catches a short between the
//!   oscillator coil and a receiving coil, and open/weak receiving coils,
//! - [`system::PositionSensor`] — everything wired to a
//!   [`lcosc_core::ClosedLoopSim`].

#![warn(missing_docs)]

pub mod coupling;
pub mod decoder;
pub mod diagnostics;
pub mod receiver;
pub mod system;

pub use coupling::RotorCoupling;
pub use decoder::{DecodedPosition, PositionDecoder};
pub use diagnostics::{ReceiverDiagnostics, ReceiverFault};
pub use receiver::SynchronousDemodulator;
pub use system::{PositionMeasurement, PositionSensor};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorError {
    /// Invalid configuration value.
    InvalidConfig(&'static str),
    /// Error from the underlying oscillator simulation.
    Core(lcosc_core::CoreError),
}

impl std::fmt::Display for SensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SensorError::Core(e) => write!(f, "oscillator simulation failed: {e}"),
        }
    }
}

impl std::error::Error for SensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensorError::InvalidConfig(_) => None,
            SensorError::Core(e) => Some(e),
        }
    }
}

impl From<lcosc_core::CoreError> for SensorError {
    fn from(e: lcosc_core::CoreError) -> Self {
        SensorError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = SensorError::from(lcosc_core::CoreError::InvalidConfig("x"));
        assert!(e.to_string().contains("x"));
        assert!(e.source().is_some());
        assert!(SensorError::InvalidConfig("y").source().is_none());
    }
}
