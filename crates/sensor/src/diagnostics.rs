//! Receiving-side diagnostics (paper §7, last paragraph): *"On complete
//! system level other detections are also performed, e.g. ... detection of
//! a short between the oscillator coil and receiving coils (monitoring if
//! dc level on receiving coils can be easy changed)"*.
//!
//! Two checks are modeled:
//!
//! - **DC-level monitor** — a receiving coil is a floating winding whose DC
//!   level is set by a weak bias; the diagnostic injects a small test
//!   current and verifies the DC level *can* be moved. A short to the
//!   (strongly driven) excitation coil pins the level, which is exactly
//!   what the paper monitors.
//! - **Magnitude monitor** — an open receiving coil (or broken receiver)
//!   collapses the demodulated vector magnitude; a short to the excitation
//!   coil blows it far above nominal.

/// Receiving-coil fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReceiverFault {
    /// Receiving coil shorted to the excitation coil.
    ShortToExcitation,
    /// Receiving coil open / receiver chain dead.
    OpenCoil,
    /// Signal magnitude outside the validity window (either direction).
    MagnitudeOutOfRange,
}

impl std::fmt::Display for ReceiverFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiverFault::ShortToExcitation => write!(f, "short to excitation coil"),
            ReceiverFault::OpenCoil => write!(f, "open receiving coil"),
            ReceiverFault::MagnitudeOutOfRange => write!(f, "signal magnitude out of range"),
        }
    }
}

/// Receiving-side diagnostic block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverDiagnostics {
    /// Bias network output impedance, ohms (the test current works against
    /// this).
    pub r_bias: f64,
    /// Injected test current, amps.
    pub i_test: f64,
    /// Minimum DC shift the test must achieve, volts.
    pub dv_min: f64,
    /// Nominal demodulated vector magnitude.
    pub magnitude_nominal: f64,
    /// Relative magnitude tolerance.
    pub magnitude_tolerance: f64,
}

impl ReceiverDiagnostics {
    /// Chip-like defaults: 100 kΩ bias, 5 µA test current (0.5 V expected
    /// shift), 100 mV minimum, magnitude window ±30 %.
    pub fn chip_default(magnitude_nominal: f64) -> Self {
        ReceiverDiagnostics {
            r_bias: 100e3,
            i_test: 5e-6,
            dv_min: 0.1,
            magnitude_nominal,
            magnitude_tolerance: 0.3,
        }
    }

    /// Evaluates the DC-level check: `r_to_excitation` is the resistance of
    /// any fault path from the receiving coil to the (low-impedance)
    /// excitation coil — `f64::INFINITY` when healthy.
    ///
    /// Returns `true` when the DC level moves as expected (healthy).
    pub fn dc_level_movable(&self, r_to_excitation: f64) -> bool {
        // The test current sees r_bias in parallel with the fault path.
        let r_eff = if r_to_excitation.is_finite() {
            self.r_bias * r_to_excitation / (self.r_bias + r_to_excitation)
        } else {
            self.r_bias
        };
        self.i_test * r_eff >= self.dv_min
    }

    /// Full evaluation: demodulated magnitude plus the DC-level check.
    pub fn evaluate(&self, magnitude: f64, r_to_excitation: f64) -> Vec<ReceiverFault> {
        let mut faults = Vec::new();
        if !self.dc_level_movable(r_to_excitation) {
            faults.push(ReceiverFault::ShortToExcitation);
        }
        if magnitude < 0.05 * self.magnitude_nominal {
            faults.push(ReceiverFault::OpenCoil);
        } else if (magnitude / self.magnitude_nominal - 1.0).abs() > self.magnitude_tolerance {
            faults.push(ReceiverFault::MagnitudeOutOfRange);
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> ReceiverDiagnostics {
        ReceiverDiagnostics::chip_default(0.25)
    }

    #[test]
    fn healthy_coil_dc_level_moves() {
        assert!(diag().dc_level_movable(f64::INFINITY));
        // A weak leakage (1 MΩ) still leaves the level movable.
        assert!(diag().dc_level_movable(1e6));
    }

    #[test]
    fn short_to_excitation_pins_dc_level() {
        // A hard short (or even a few kΩ) pins the DC level: 5 µA into
        // ≤ 20 kΩ cannot reach the 100 mV threshold.
        assert!(!diag().dc_level_movable(100.0));
        assert!(!diag().dc_level_movable(10e3));
    }

    #[test]
    fn healthy_magnitude_reports_clean() {
        assert!(diag().evaluate(0.25, f64::INFINITY).is_empty());
        assert!(diag().evaluate(0.20, f64::INFINITY).is_empty());
    }

    #[test]
    fn open_coil_detected() {
        let faults = diag().evaluate(0.001, f64::INFINITY);
        assert_eq!(faults, vec![ReceiverFault::OpenCoil]);
    }

    #[test]
    fn short_detected_by_both_checks() {
        // A short couples the full excitation amplitude in: magnitude blows
        // up AND the DC level is pinned.
        let faults = diag().evaluate(1.3, 100.0);
        assert!(faults.contains(&ReceiverFault::ShortToExcitation));
        assert!(faults.contains(&ReceiverFault::MagnitudeOutOfRange));
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ReceiverFault::ShortToExcitation.to_string(),
            "short to excitation coil"
        );
        assert_eq!(ReceiverFault::OpenCoil.to_string(), "open receiving coil");
    }
}
