//! The receive chain: amplifier + synchronous (coherent) demodulator.
//!
//! The received coil voltage is the excitation carrier scaled by the signed
//! coupling factor, plus interference. Multiplying by the excitation
//! reference and low-pass filtering recovers the signed coupling — coherent
//! detection attenuates anything uncorrelated with the carrier, which is
//! why the sensor survives the harsh automotive EMC environment.

use lcosc_num::filter::OnePoleLowPass;

/// Synchronous demodulator for one receiving coil.
///
/// Feed the raw received sample and the excitation-reference sample every
/// step; the output settles to `gain · k · A²/2` where `A` is the carrier
/// amplitude and `k` the signed coupling (the `A²/2` comes from
/// `sin² = (1 − cos 2ωt)/2`). Use [`SynchronousDemodulator::normalized`]
/// with the known carrier amplitude to recover `k` itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SynchronousDemodulator {
    gain: f64,
    offset: f64,
    lpf: OnePoleLowPass,
}

impl SynchronousDemodulator {
    /// Creates a demodulator with amplifier `gain`, input-referred
    /// `offset` (volts) and a low-pass time constant `tau` sampled at `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `gain > 0`, `tau > 0` and `dt > 0`.
    pub fn new(gain: f64, offset: f64, tau: f64, dt: f64) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        SynchronousDemodulator {
            gain,
            offset,
            lpf: OnePoleLowPass::new(tau, dt),
        }
    }

    /// A typical chain: unity gain, no offset, 50 µs filter at 10 ns steps.
    pub fn typical(dt: f64) -> Self {
        SynchronousDemodulator::new(1.0, 0.0, 50e-6, dt)
    }

    /// Processes one sample pair; returns the filtered demodulator output.
    pub fn update(&mut self, received: f64, reference: f64) -> f64 {
        let amplified = self.gain * (received + self.offset);
        self.lpf.update(amplified * reference)
    }

    /// Current filtered output.
    pub fn output(&self) -> f64 {
        self.lpf.output()
    }

    /// Converts the output back to a coupling estimate given the carrier
    /// peak amplitude: `k ≈ 2·out / (gain·A²)`.
    ///
    /// # Panics
    ///
    /// Panics if `carrier_peak` is not positive.
    pub fn normalized(&self, carrier_peak: f64) -> f64 {
        assert!(carrier_peak > 0.0, "carrier amplitude must be positive");
        2.0 * self.output() / (self.gain * carrier_peak * carrier_peak)
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.lpf.reset_to(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 1e6;
    const DT: f64 = 1e-8;

    fn run(demod: &mut SynchronousDemodulator, k: f64, a: f64, cycles: usize) -> f64 {
        let steps = (cycles as f64 / F / DT) as usize;
        let mut out = 0.0;
        for i in 0..steps {
            let carrier = a * (2.0 * std::f64::consts::PI * F * i as f64 * DT).sin();
            out = demod.update(k * carrier, carrier / a.max(1e-12));
        }
        out
    }

    #[test]
    fn recovers_signed_coupling() {
        for k in [-0.25, -0.1, 0.0, 0.1, 0.25] {
            let mut d = SynchronousDemodulator::typical(DT);
            run(&mut d, k, 1.35, 400);
            // reference normalized to unit amplitude: out = k·A/2·... with
            // ref = carrier/A: out -> k·A/2.
            let expect = k * 1.35 / 2.0;
            assert!(
                (d.output() - expect).abs() < 0.01,
                "k {k}: {} vs {expect}",
                d.output()
            );
        }
    }

    #[test]
    fn normalized_recovers_k_with_raw_reference() {
        // Using the raw carrier as reference: out = k·A²/2.
        let mut d = SynchronousDemodulator::typical(DT);
        let (k, a) = (0.2, 1.35);
        let steps = (400.0 / F / DT) as usize;
        for i in 0..steps {
            let carrier = a * (2.0 * std::f64::consts::PI * F * i as f64 * DT).sin();
            d.update(k * carrier, carrier);
        }
        assert!((d.normalized(a) - k).abs() < 0.01, "{}", d.normalized(a));
    }

    #[test]
    fn rejects_uncorrelated_interference() {
        // A strong interferer at an incommensurate frequency averages out.
        let mut d = SynchronousDemodulator::typical(DT);
        let steps = (400.0 / F / DT) as usize;
        for i in 0..steps {
            let t = i as f64 * DT;
            let carrier = (2.0 * std::f64::consts::PI * F * t).sin();
            let interference = 5.0 * (2.0 * std::f64::consts::PI * 1.37e6 * t).sin();
            d.update(0.1 * carrier + interference, carrier);
        }
        assert!((d.output() - 0.05).abs() < 0.01, "{}", d.output());
    }

    #[test]
    fn gain_scales_output() {
        let mut unity = SynchronousDemodulator::new(1.0, 0.0, 50e-6, DT);
        let mut x10 = SynchronousDemodulator::new(10.0, 0.0, 50e-6, DT);
        run(&mut unity, 0.2, 1.0, 300);
        run(&mut x10, 0.2, 1.0, 300);
        assert!((x10.output() / unity.output() - 10.0).abs() < 0.01);
    }

    #[test]
    fn dc_offset_is_rejected_by_coherent_detection() {
        // A constant input offset multiplies a zero-mean reference: no DC
        // at the output.
        let mut d = SynchronousDemodulator::new(1.0, 0.5, 50e-6, DT);
        run(&mut d, 0.0, 1.0, 400);
        assert!(d.output().abs() < 5e-3, "{}", d.output());
    }

    #[test]
    fn reset_clears_state() {
        let mut d = SynchronousDemodulator::typical(DT);
        run(&mut d, 0.25, 1.0, 100);
        d.reset();
        assert_eq!(d.output(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn rejects_zero_gain() {
        let _ = SynchronousDemodulator::new(0.0, 0.0, 1e-6, 1e-8);
    }
}
