//! Property-based tests for the sensor application layer.

use lcosc_sensor::coupling::RotorCoupling;
use lcosc_sensor::decoder::{angle_difference, PositionDecoder};
use lcosc_sensor::diagnostics::ReceiverDiagnostics;
use lcosc_sensor::receiver::SynchronousDemodulator;
use proptest::prelude::*;

proptest! {
    /// Decode is exact for any angle and any positive channel scaling
    /// (ratiometric: independent of excitation amplitude).
    #[test]
    fn decode_roundtrip_any_angle(theta in -3.1f64..3.1, scale in 0.01f64..10.0) {
        let d = PositionDecoder::new(1.0, 0.5);
        let p = d.decode(scale * theta.sin(), scale * theta.cos());
        prop_assert!(angle_difference(p.angle, theta).abs() < 1e-9);
        prop_assert!((p.magnitude - scale).abs() < 1e-9 * scale);
    }

    /// Coupling magnitude is invariant in angle; electrical angle wraps to
    /// (−π, π].
    #[test]
    fn coupling_invariants(theta in -100.0f64..100.0, k in 0.01f64..1.0, pp in 1u32..8) {
        let c = RotorCoupling::new(k, pp);
        let (s, cc) = c.at(theta);
        prop_assert!((s.hypot(cc) - k).abs() < 1e-9);
        let e = c.electrical_angle(theta);
        prop_assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&e));
    }

    /// Demodulator output is linear in the coupling factor.
    #[test]
    fn demodulator_linear_in_coupling(k in 0.01f64..0.3) {
        let dt = 1e-8;
        let f = 1e6;
        let run = |k: f64| {
            let mut d = SynchronousDemodulator::typical(dt);
            for i in 0..30_000 {
                let ph = 2.0 * std::f64::consts::PI * f * i as f64 * dt;
                d.update(k * ph.sin(), ph.sin());
            }
            d.output()
        };
        let one = run(k);
        let two = run(2.0 * k);
        prop_assert!((two / one - 2.0).abs() < 0.01, "{one} vs {two}");
    }

    /// Angle difference is antisymmetric and bounded by π.
    #[test]
    fn angle_difference_properties(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let d = angle_difference(a, b);
        prop_assert!(d > -std::f64::consts::PI - 1e-12);
        prop_assert!(d <= std::f64::consts::PI + 1e-12);
        let r = angle_difference(b, a);
        // Antisymmetric up to the ±π boundary case.
        if d.abs() < std::f64::consts::PI - 1e-9 {
            prop_assert!((d + r).abs() < 1e-9, "{d} vs {r}");
        }
    }

    /// The DC-level diagnostic is monotone in the fault resistance: a
    /// harder short is never *less* detectable.
    #[test]
    fn dc_level_check_monotone(r1 in 10.0f64..1e7, r2 in 10.0f64..1e7) {
        let diag = ReceiverDiagnostics::chip_default(0.25);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        if diag.dc_level_movable(lo) {
            prop_assert!(diag.dc_level_movable(hi));
        }
    }
}
