//! SPICE `.sp` netlist front end for the lcosc workspace.
//!
//! The workspace's native circuit interchange is the deck JSON of
//! `lcosc_circuit::deck`; this crate adds the classic line-oriented
//! SPICE form on top of it:
//!
//! - [`lex`] folds `.sp` text into position-tracked cards (comments,
//!   `+` continuations, `(`/`)`/`,` separators, case folding);
//! - [`parse_spice`] builds a [`lcosc_circuit::Netlist`] plus analysis
//!   plan from the cards, rejecting bad input with stable, positioned
//!   `P0xx` diagnostics (registered in `lcosc_check::ALL_CODES`);
//! - [`render_netlist`] writes a netlist back out as `.sp` text, the
//!   inverse of the parser up to node/element naming;
//! - [`fuzz`] drives deterministic grammar/mutation fuzzing over all
//!   three input surfaces (`.sp` text, deck JSON, serve protocol
//!   lines) with a seed-reproducible digest.
//!
//! The dialect is documented card by card in `DESIGN.md` §17. It is a
//! deliberate subset: element cards `R C L V I G D M S`, source
//! waveforms `DC SIN PULSE PWL`, dot-cards `.title .param .model .tran
//! .dc .end`, engineering suffixes `f p n u m k meg g t`, node `0`/`gnd`
//! as ground. Everything else is a positioned `P001`.

pub mod fuzz;
pub mod lex;
pub mod parse;
pub mod render;

pub use fuzz::{run_fuzz, stub_protocol, FuzzConfig, FuzzFailure, FuzzReport};
pub use lex::{lex, Card, Token};
pub use parse::{parse_spice, Analysis, SpiceDeck, SpiceError};
pub use render::render_netlist;

#[cfg(test)]
mod tests {
    /// Every `P0xx` code this crate can emit must be registered in the
    /// stable diagnostic registry, so `describe()` and the README code
    /// table cover SPICE parse errors exactly like netlist ERC codes.
    #[test]
    fn every_emitted_p_code_is_registered() {
        let source = concat!(include_str!("parse.rs"), include_str!("lex.rs"));
        let mut emitted: Vec<&str> = Vec::new();
        let mut rest = source;
        while let Some(i) = rest.find("\"P0") {
            let code = &rest[i + 1..i + 5];
            if code.len() == 4 && code[1..].chars().all(|c| c.is_ascii_digit()) {
                emitted.push(code);
            }
            rest = &rest[i + 5..];
        }
        assert!(!emitted.is_empty(), "parser emits no P codes?");
        for code in &emitted {
            assert!(
                lcosc_check::ALL_CODES.iter().any(|(c, _)| c == code),
                "{code} is emitted by the parser but not registered in ALL_CODES"
            );
        }
        // And the reverse: every registered P code is actually emitted.
        for (code, _) in lcosc_check::ALL_CODES
            .iter()
            .filter(|(c, _)| c.starts_with('P'))
        {
            assert!(
                emitted.contains(code),
                "{code} is registered but never emitted by the parser"
            );
        }
    }
}
