//! Parsing of lexed `.sp` cards into a [`Netlist`] plus analysis plan.
//!
//! Every rejection carries a stable `P0xx` code (registered in
//! `lcosc_check::ALL_CODES`) and the source line/column of the offending
//! token, so tooling can key on the code while humans get a position.
//! The parser is two-pass: `.param` and `.model` cards are collected
//! first (SPICE decks routinely use models before defining them), then
//! element and analysis cards build the netlist in card order.

use crate::lex::{lex, Card, Token};
use lcosc_check::{check_netlist, Report};
use lcosc_circuit::{Element, Netlist, NodeId, TransientOptions, Waveform};
use lcosc_device::diode::DiodeModel;
use lcosc_device::mos::{MosModel, Polarity};
use std::collections::HashMap;

/// A positioned, stable-coded SPICE parse diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpiceError {
    /// Stable `P0xx` code (see `lcosc_check::ALL_CODES`).
    pub code: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl SpiceError {
    fn at(code: &'static str, tok: &Token, message: impl Into<String>) -> Self {
        SpiceError {
            code,
            line: tok.line,
            col: tok.col,
            message: message.into(),
        }
    }

    fn on_card(code: &'static str, card: &Card, message: impl Into<String>) -> Self {
        SpiceError {
            code,
            line: card.line,
            col: 1,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, col {}: {}",
            self.code, self.line, self.col, self.message
        )
    }
}

impl std::error::Error for SpiceError {}

/// One analysis card of the deck.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// `.tran tstep tstop [uic]`.
    Tran {
        /// Time step in seconds.
        tstep: f64,
        /// Stop time in seconds.
        tstop: f64,
        /// Start from element initial conditions (SPICE `UIC`).
        uic: bool,
    },
    /// `.dc source start stop step` (a DC sweep plan; the source is
    /// named by its card name, e.g. `v1`).
    Dc {
        /// Swept source name, lowercased.
        source: String,
        /// Sweep start value.
        start: f64,
        /// Sweep stop value.
        stop: f64,
        /// Sweep increment (non-zero).
        step: f64,
    },
}

/// A parsed SPICE deck: netlist, analysis plan and non-fatal warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiceDeck {
    /// `.title` text, if any.
    pub title: Option<String>,
    /// The parsed circuit.
    pub netlist: Netlist,
    /// Card name of each element, in element order (`r1`, `vdd`, …).
    pub element_names: Vec<String>,
    /// Analysis cards in deck order.
    pub analyses: Vec<Analysis>,
    /// Non-fatal parse diagnostics (P010 missing-ground, P011 dangling
    /// node), still positioned and P-coded.
    pub warnings: Vec<SpiceError>,
}

impl SpiceDeck {
    /// Maps the first `.tran` card onto [`TransientOptions`], if present.
    pub fn tran_options(&self) -> Option<TransientOptions> {
        self.analyses.iter().find_map(|a| match a {
            Analysis::Tran { tstep, tstop, uic } => {
                let mut opts = TransientOptions::new(*tstep, *tstop);
                opts.use_initial_conditions = *uic;
                Some(opts)
            }
            Analysis::Dc { .. } => None,
        })
    }

    /// Gates the parsed deck through `lcosc-check`, exactly like a JSON
    /// deck: the full ERC report for the netlist, plus this parse's own
    /// P-coded warnings (rendered with their source positions).
    pub fn check(&self) -> Report {
        let mut report = check_netlist(&self.netlist);
        for w in &self.warnings {
            report.warning(
                w.code,
                format!("line {}, col {}: {}", w.line, w.col, w.message),
                None,
            );
        }
        report
    }
}

/// Parses a numeric token: engineering suffixes (`f p n u m k meg g t`),
/// ignored trailing unit letters (`10pF`, `5V`) and `.param` references
/// (bare name or `{name}`).
fn parse_value(params: &HashMap<String, f64>, tok: &Token) -> Result<f64, SpiceError> {
    let text = tok.text.as_str();
    if let Some(name) = text.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
        return params
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::at("P007", tok, format!("undefined .param {name:?}")));
    }
    if text.starts_with(|c: char| c.is_ascii_alphabetic()) {
        return params
            .get(text)
            .copied()
            .ok_or_else(|| SpiceError::at("P007", tok, format!("undefined .param {text:?}")));
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(v);
    }
    // Longest numeric prefix + scale suffix + ignored unit letters.
    for cut in (1..text.len()).rev() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let Ok(mantissa) = text[..cut].parse::<f64>() else {
            continue;
        };
        let suffix = &text[cut..];
        let (scale, units) = if let Some(rest) = suffix.strip_prefix("meg") {
            (1e6, rest)
        } else {
            let mut chars = suffix.chars();
            let first = chars.next().unwrap_or(' ');
            let scale = match first {
                'f' => 1e-15,
                'p' => 1e-12,
                'n' => 1e-9,
                'u' => 1e-6,
                'm' => 1e-3,
                'k' => 1e3,
                'g' => 1e9,
                't' => 1e12,
                _ => 1.0,
            };
            if scale == 1.0 {
                (1.0, suffix)
            } else {
                (scale, chars.as_str())
            }
        };
        // A physical-unit tail after the scale is decorative: `10pF`,
        // `5V`, `1kOhm`. Anything else is a malformed suffix.
        if matches!(units, "" | "f" | "h" | "v" | "a" | "s" | "hz" | "ohm") {
            return Ok(mantissa * scale);
        }
        break;
    }
    Err(SpiceError::at(
        "P003",
        tok,
        format!("malformed number or unknown unit suffix {text:?}"),
    ))
}

/// Positional fields plus trailing `key=value` option pairs of a card.
type Fields<'a> = (&'a [Token], Vec<(&'a Token, &'a Token)>);

/// Splits a card's post-name tokens into positional fields and trailing
/// `key=value` options.
fn split_fields(tokens: &[Token]) -> Result<Fields<'_>, SpiceError> {
    let first_key = tokens
        .iter()
        .position(|t| t.text == "=")
        .map(|eq| eq.saturating_sub(1))
        .unwrap_or(tokens.len());
    let (positional, keyed) = tokens.split_at(first_key);
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let key = &keyed[i];
        if key.text == "=" {
            return Err(SpiceError::at("P002", key, "stray '=' without a key"));
        }
        let Some(eq) = keyed.get(i + 1) else {
            return Err(SpiceError::at("P002", key, "expected '=' after option key"));
        };
        if eq.text != "=" {
            return Err(SpiceError::at("P002", eq, "expected '=' after option key"));
        }
        let Some(value) = keyed.get(i + 2) else {
            return Err(SpiceError::at("P002", key, "option key is missing a value"));
        };
        pairs.push((key, value));
        i += 3;
    }
    Ok((positional, pairs))
}

/// The parser's working state.
struct Parser {
    nl: Netlist,
    nodes: HashMap<String, NodeId>,
    /// Per node index: terminal reference count and first-reference span.
    node_refs: Vec<(usize, usize, usize)>,
    element_names: Vec<String>,
    seen_names: HashMap<String, usize>,
    params: HashMap<String, f64>,
    diode_models: HashMap<String, DiodeModel>,
    mos_models: HashMap<String, MosModel>,
    analyses: Vec<Analysis>,
    title: Option<String>,
}

impl Parser {
    fn new() -> Self {
        Parser {
            nl: Netlist::new(),
            nodes: HashMap::new(),
            node_refs: vec![(0, 0, 0)],
            element_names: Vec::new(),
            seen_names: HashMap::new(),
            params: HashMap::new(),
            diode_models: HashMap::new(),
            mos_models: HashMap::new(),
            analyses: Vec::new(),
            title: None,
        }
    }

    fn node(&mut self, tok: &Token) -> NodeId {
        let name = tok.text.as_str();
        let id = if name == "0" || name == "gnd" {
            Netlist::GROUND
        } else if let Some(&id) = self.nodes.get(name) {
            id
        } else {
            let id = self.nl.node(name);
            self.nodes.insert(name.to_string(), id);
            self.node_refs.push((0, tok.line, tok.col));
            id
        };
        self.node_refs[id.index()].0 += 1;
        id
    }

    fn value(&self, tok: &Token) -> Result<f64, SpiceError> {
        parse_value(&self.params, tok)
    }

    /// A value required to be strictly positive (R/C/L, switch resistances).
    fn positive(&self, tok: &Token, what: &str) -> Result<f64, SpiceError> {
        let v = self.value(tok)?;
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(SpiceError::at(
                "P012",
                tok,
                format!("{what} must be positive and finite, got {v:e}"),
            ))
        }
    }

    /// A value required to be finite.
    fn finite(&self, tok: &Token, what: &str) -> Result<f64, SpiceError> {
        let v = self.value(tok)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(SpiceError::at(
                "P012",
                tok,
                format!("{what} must be finite"),
            ))
        }
    }

    fn register_name(&mut self, tok: &Token) -> Result<(), SpiceError> {
        if let Some(prev) = self.seen_names.insert(tok.text.clone(), tok.line) {
            return Err(SpiceError::at(
                "P008",
                tok,
                format!(
                    "duplicate element name {:?} (first defined on line {prev})",
                    tok.text
                ),
            ));
        }
        self.element_names.push(tok.text.clone());
        Ok(())
    }

    /// `.param a=1k b=2.5 …`
    fn dot_param(&mut self, card: &Card) -> Result<(), SpiceError> {
        let (positional, pairs) = split_fields(&card.tokens[1..])?;
        if !positional.is_empty() || pairs.is_empty() {
            return Err(SpiceError::on_card(
                "P002",
                card,
                ".param expects name=value assignments",
            ));
        }
        for (key, value) in pairs {
            let v = self.value(value)?;
            self.params.insert(key.text.clone(), v);
        }
        Ok(())
    }

    /// `.model name d|nmos|pmos (key=value …)`
    fn dot_model(&mut self, card: &Card) -> Result<(), SpiceError> {
        let (positional, pairs) = split_fields(&card.tokens[1..])?;
        let [name, kind] = positional else {
            return Err(SpiceError::on_card(
                "P002",
                card,
                ".model expects a name and a kind",
            ));
        };
        match kind.text.as_str() {
            "d" => {
                let (mut is, mut n, mut temp) = (1e-14, 1.0, 300.0);
                for (key, value) in pairs {
                    let v = self.finite(value, &key.text)?;
                    match key.text.as_str() {
                        "is" => is = v,
                        "n" => n = v,
                        "temp" => temp = v,
                        other => {
                            return Err(SpiceError::at(
                                "P006",
                                key,
                                format!("unknown diode model parameter {other:?}"),
                            ))
                        }
                    }
                }
                if !(is > 0.0 && n > 0.0 && temp > 0.0) {
                    return Err(SpiceError::on_card(
                        "P006",
                        card,
                        "diode model parameters must be positive (is, n, temp)",
                    ));
                }
                self.diode_models
                    .insert(name.text.clone(), DiodeModel::new(is, n, temp));
            }
            polarity @ ("nmos" | "pmos") => {
                let base = if polarity == "nmos" {
                    MosModel::nmos_035um()
                } else {
                    MosModel::pmos_035um()
                };
                let (mut kp, mut vth, mut n, mut lambda) =
                    (base.kp(), base.vth(), base.slope_factor(), base.lambda());
                for (key, value) in pairs {
                    let v = self.finite(value, &key.text)?;
                    match key.text.as_str() {
                        "kp" => kp = v,
                        "vto" | "vth" => vth = v,
                        "n" => n = v,
                        "lambda" => lambda = v,
                        "level" => {
                            if v != 1.0 {
                                return Err(SpiceError::at(
                                    "P006",
                                    key,
                                    format!("only MOS level 1 is supported, got {v}"),
                                ));
                            }
                        }
                        other => {
                            return Err(SpiceError::at(
                                "P006",
                                key,
                                format!("unknown MOS model parameter {other:?}"),
                            ))
                        }
                    }
                }
                if !(kp > 0.0 && vth >= 0.0 && n >= 1.0 && lambda >= 0.0) {
                    return Err(SpiceError::on_card(
                        "P006",
                        card,
                        "MOS model needs kp > 0, vto >= 0, n >= 1, lambda >= 0",
                    ));
                }
                let polarity = if polarity == "nmos" {
                    Polarity::N
                } else {
                    Polarity::P
                };
                self.mos_models.insert(
                    name.text.clone(),
                    MosModel::new(polarity, kp, vth, n, lambda),
                );
            }
            other => {
                return Err(SpiceError::at(
                    "P006",
                    kind,
                    format!("unknown .model kind {other:?} (d, nmos, pmos)"),
                ))
            }
        }
        Ok(())
    }

    /// Source waveform from the card tokens after the two node fields.
    fn waveform(&self, card: &Card, tokens: &[Token]) -> Result<Waveform, SpiceError> {
        let Some(head) = tokens.first() else {
            return Err(SpiceError::on_card(
                "P004",
                card,
                "source needs a waveform (DC, SIN, PULSE or PWL)",
            ));
        };
        let values = |toks: &[Token]| -> Result<Vec<f64>, SpiceError> {
            toks.iter()
                .map(|t| self.finite(t, "waveform value"))
                .collect()
        };
        let wave = match head.text.as_str() {
            "dc" => match tokens {
                [_, v] => Waveform::Dc(self.finite(v, "dc value")?),
                _ => {
                    return Err(SpiceError::at("P004", head, "DC expects exactly one value"));
                }
            },
            "sin" => {
                let args = values(&tokens[1..])?;
                if !(3..=6).contains(&args.len()) {
                    return Err(SpiceError::at(
                        "P004",
                        head,
                        format!("SIN expects 3..6 arguments, got {}", args.len()),
                    ));
                }
                if args.get(3).copied().unwrap_or(0.0) != 0.0
                    || args.get(4).copied().unwrap_or(0.0) != 0.0
                {
                    return Err(SpiceError::at(
                        "P004",
                        head,
                        "SIN delay/damping (td, theta) are not supported; use 0",
                    ));
                }
                Waveform::Sine {
                    offset: args[0],
                    amplitude: args[1],
                    frequency: args[2],
                    phase: args.get(5).copied().unwrap_or(0.0).to_radians(),
                }
            }
            "pulse" => {
                let args = values(&tokens[1..])?;
                if !(2..=7).contains(&args.len()) {
                    return Err(SpiceError::at(
                        "P004",
                        head,
                        format!("PULSE expects 2..7 arguments, got {}", args.len()),
                    ));
                }
                let arg = |i: usize| args.get(i).copied().unwrap_or(0.0);
                Waveform::Pulse {
                    v1: args[0],
                    v2: args[1],
                    td: arg(2),
                    tr: arg(3),
                    tf: arg(4),
                    pw: arg(5),
                    per: arg(6),
                }
            }
            "pwl" => {
                let args = values(&tokens[1..])?;
                if args.is_empty() || args.len() % 2 != 0 {
                    return Err(SpiceError::at(
                        "P004",
                        head,
                        "PWL expects an even, non-zero number of t v values",
                    ));
                }
                Waveform::Pwl(args.chunks_exact(2).map(|p| (p[0], p[1])).collect())
            }
            _ if tokens.len() == 1 => Waveform::Dc(self.finite(head, "source value")?),
            other => {
                return Err(SpiceError::at(
                    "P004",
                    head,
                    format!("unknown source waveform {other:?}"),
                ))
            }
        };
        wave.validate()
            .map_err(|e| SpiceError::at("P004", head, e.to_string()))?;
        Ok(wave)
    }

    fn element(&mut self, card: &Card) -> Result<(), SpiceError> {
        let name = &card.tokens[0];
        self.register_name(name)?;
        let rest = &card.tokens[1..];
        let (positional, pairs) = split_fields(rest)?;
        let arity = |want: &str| SpiceError::on_card("P002", card, format!("expected {want}"));
        let no_opts = |pairs: &[(&Token, &Token)]| -> Result<(), SpiceError> {
            match pairs.first() {
                Some((key, _)) => Err(SpiceError::at(
                    "P002",
                    key,
                    format!("unexpected option {:?}", key.text),
                )),
                None => Ok(()),
            }
        };
        let first = name.text.chars().next().unwrap_or(' ');
        let element = match first {
            'r' => {
                let [a, b, val] = positional else {
                    return Err(arity("Rname node node value"));
                };
                no_opts(&pairs)?;
                Element::Resistor {
                    a: self.node(a),
                    b: self.node(b),
                    ohms: self.positive(val, "resistance")?,
                }
            }
            'c' => {
                let [a, b, val] = positional else {
                    return Err(arity("Cname node node value [ic=v0]"));
                };
                let mut v0 = 0.0;
                for (key, value) in pairs {
                    match key.text.as_str() {
                        "ic" => v0 = self.finite(value, "ic")?,
                        other => {
                            return Err(SpiceError::at(
                                "P002",
                                key,
                                format!("unexpected option {other:?}"),
                            ))
                        }
                    }
                }
                Element::Capacitor {
                    a: self.node(a),
                    b: self.node(b),
                    farads: self.positive(val, "capacitance")?,
                    v0,
                }
            }
            'l' => {
                let [a, b, val] = positional else {
                    return Err(arity("Lname node node value [ic=i0]"));
                };
                let mut i0 = 0.0;
                for (key, value) in pairs {
                    match key.text.as_str() {
                        "ic" => i0 = self.finite(value, "ic")?,
                        other => {
                            return Err(SpiceError::at(
                                "P002",
                                key,
                                format!("unexpected option {other:?}"),
                            ))
                        }
                    }
                }
                Element::Inductor {
                    a: self.node(a),
                    b: self.node(b),
                    henries: self.positive(val, "inductance")?,
                    i0,
                }
            }
            'v' | 'i' => {
                no_opts(&pairs)?;
                if positional.len() < 2 {
                    return Err(arity("V/Iname node node waveform"));
                }
                let wave = self.waveform(card, &positional[2..])?;
                let p = self.node(&positional[0]);
                let n = self.node(&positional[1]);
                if first == 'v' {
                    Element::VoltageSource { p, n, wave }
                } else {
                    Element::CurrentSource { p, n, wave }
                }
            }
            'g' => {
                let [op, on, ip, inn, gm] = positional else {
                    return Err(arity("Gname node node node node gm"));
                };
                no_opts(&pairs)?;
                Element::Vccs {
                    out_p: self.node(op),
                    out_n: self.node(on),
                    in_p: self.node(ip),
                    in_n: self.node(inn),
                    gm: self.finite(gm, "gm")?,
                }
            }
            'd' => {
                no_opts(&pairs)?;
                let (nodes, model) = match positional {
                    [a, c] => (([a, c]), None),
                    [a, c, m] => (([a, c]), Some(m)),
                    _ => return Err(arity("Dname anode cathode [model]")),
                };
                let model = match model {
                    None => DiodeModel::default(),
                    Some(m) => self.diode_models.get(&m.text).copied().ok_or_else(|| {
                        SpiceError::at("P005", m, format!("undefined .model {:?}", m.text))
                    })?,
                };
                Element::Diode {
                    anode: self.node(nodes[0]),
                    cathode: self.node(nodes[1]),
                    model,
                }
            }
            'm' => {
                no_opts(&pairs)?;
                let (nodes, model) = match positional {
                    [d, g, s, b] => ([d, g, s, b], None),
                    [d, g, s, b, m] => ([d, g, s, b], Some(m)),
                    _ => return Err(arity("Mname drain gate source bulk [model]")),
                };
                let model = match model.map(|m| (m, m.text.as_str())) {
                    None | Some((_, "nmos")) => MosModel::nmos_035um(),
                    Some((_, "pmos")) => MosModel::pmos_035um(),
                    Some((m, other)) => self.mos_models.get(other).copied().ok_or_else(|| {
                        SpiceError::at("P005", m, format!("undefined .model {other:?}"))
                    })?,
                };
                Element::Mosfet {
                    d: self.node(nodes[0]),
                    g: self.node(nodes[1]),
                    s: self.node(nodes[2]),
                    b: self.node(nodes[3]),
                    model,
                }
            }
            's' => {
                let (nodes, state) = match positional {
                    [a, b] => ([a, b], None),
                    [a, b, st] => ([a, b], Some(st)),
                    _ => return Err(arity("Sname node node [on|off] [ron=..] [roff=..]")),
                };
                let closed = match state.map(|s| (s, s.text.as_str())) {
                    None | Some((_, "off")) => false,
                    Some((_, "on")) => true,
                    Some((s, other)) => {
                        return Err(SpiceError::at(
                            "P002",
                            s,
                            format!("switch state must be on or off, got {other:?}"),
                        ))
                    }
                };
                let (mut r_on, mut r_off) = (1.0, 1e9);
                for (key, value) in pairs {
                    match key.text.as_str() {
                        "ron" => r_on = self.positive(value, "ron")?,
                        "roff" => r_off = self.positive(value, "roff")?,
                        other => {
                            return Err(SpiceError::at(
                                "P002",
                                key,
                                format!("unexpected option {other:?}"),
                            ))
                        }
                    }
                }
                Element::Switch {
                    a: self.node(nodes[0]),
                    b: self.node(nodes[1]),
                    closed,
                    r_on,
                    r_off,
                }
            }
            other => {
                return Err(SpiceError::at(
                    "P001",
                    name,
                    format!("unknown element letter {other:?} (R C L V I G D M S)"),
                ))
            }
        };
        self.nl.push_element(element);
        Ok(())
    }

    fn dot_tran(&mut self, card: &Card) -> Result<(), SpiceError> {
        let rest = &card.tokens[1..];
        let uic = rest.last().is_some_and(|t| t.text == "uic");
        let args = &rest[..rest.len() - usize::from(uic)];
        let [tstep, tstop] = args else {
            return Err(SpiceError::on_card(
                "P009",
                card,
                ".tran expects tstep tstop [uic]",
            ));
        };
        let tstep_v = self
            .finite(tstep, "tstep")
            .map_err(|e| SpiceError { code: "P009", ..e })?;
        let tstop_v = self
            .finite(tstop, "tstop")
            .map_err(|e| SpiceError { code: "P009", ..e })?;
        if !(tstep_v > 0.0 && tstop_v > tstep_v) {
            return Err(SpiceError::on_card(
                "P009",
                card,
                format!(".tran needs 0 < tstep < tstop, got tstep={tstep_v:e} tstop={tstop_v:e}"),
            ));
        }
        self.analyses.push(Analysis::Tran {
            tstep: tstep_v,
            tstop: tstop_v,
            uic,
        });
        Ok(())
    }

    fn dot_dc(&mut self, card: &Card) -> Result<(), SpiceError> {
        let [source, start, stop, step] = &card.tokens[1..] else {
            return Err(SpiceError::on_card(
                "P009",
                card,
                ".dc expects source start stop step",
            ));
        };
        let to9 = |e: SpiceError| SpiceError { code: "P009", ..e };
        let start_v = self.finite(start, "start").map_err(to9)?;
        let stop_v = self.finite(stop, "stop").map_err(to9)?;
        let step_v = self.finite(step, "step").map_err(to9)?;
        if step_v == 0.0 {
            return Err(SpiceError::on_card(
                "P009",
                card,
                ".dc step must be non-zero",
            ));
        }
        self.analyses.push(Analysis::Dc {
            source: source.text.clone(),
            start: start_v,
            stop: stop_v,
            step: step_v,
        });
        Ok(())
    }

    fn finish(mut self) -> SpiceDeck {
        let mut warnings = Vec::new();
        if !self.nl.elements().is_empty() && self.node_refs[0].0 == 0 {
            warnings.push(SpiceError {
                code: "P010",
                line: 1,
                col: 1,
                message: "deck never references the ground node (0 or gnd)".to_string(),
            });
        }
        for (idx, &(refs, line, col)) in self.node_refs.iter().enumerate().skip(1) {
            if refs == 1 {
                let name = self
                    .nodes
                    .iter()
                    .find(|(_, id)| id.index() == idx)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_default();
                warnings.push(SpiceError {
                    code: "P011",
                    line,
                    col,
                    message: format!("node {name:?} dangles from a single element terminal"),
                });
            }
        }
        SpiceDeck {
            title: self.title.take(),
            netlist: self.nl,
            element_names: self.element_names,
            analyses: self.analyses,
            warnings,
        }
    }
}

/// Parses `.sp` text into a [`SpiceDeck`].
///
/// # Errors
///
/// Fails fast on the first hard error with a positioned, P-coded
/// [`SpiceError`]. Non-fatal findings (missing ground reference,
/// dangling nodes) come back as [`SpiceDeck::warnings`] instead.
pub fn parse_spice(text: &str) -> Result<SpiceDeck, SpiceError> {
    let cards = lex(text);
    let mut parser = Parser::new();
    // Pass 1: .param and .model, so later cards can reference them
    // regardless of ordering.
    for card in &cards {
        match card.tokens.first().map(|t| t.text.as_str()) {
            Some(".param") => parser.dot_param(card)?,
            Some(".model") => parser.dot_model(card)?,
            Some(".end") => break,
            _ => {}
        }
    }
    // Pass 2: elements and analysis cards, in deck order.
    for card in &cards {
        let Some(head) = card.tokens.first() else {
            continue;
        };
        match head.text.as_str() {
            ".param" | ".model" => {}
            ".end" => {
                if card.tokens.len() > 1 {
                    return Err(SpiceError::at(
                        "P002",
                        &card.tokens[1],
                        "unexpected text after .end",
                    ));
                }
                break;
            }
            ".title" => {
                let words: Vec<&str> = card.tokens[1..].iter().map(|t| t.text.as_str()).collect();
                parser.title = Some(words.join(" "));
            }
            ".tran" => parser.dot_tran(card)?,
            ".dc" => parser.dot_dc(card)?,
            other if other.starts_with('.') => {
                return Err(SpiceError::at(
                    "P001",
                    head,
                    format!("unknown card {other:?}"),
                ));
            }
            _ => parser.element(card)?,
        }
    }
    Ok(parser.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_circuit::Waveform;

    #[test]
    fn parses_the_paper_tank_deck() {
        let deck = parse_spice(
            "* paper LC tank\n\
             .title fig2 tank\n\
             L1 tank 0 10u ic=0\n\
             C1 tank 0 2.2n ic=3.3\n\
             R1 tank 0 1k\n\
             .tran 10n 2u uic\n\
             .end\n",
        )
        .expect("clean deck");
        assert_eq!(deck.title.as_deref(), Some("fig2 tank"));
        assert_eq!(deck.element_names, ["l1", "c1", "r1"]);
        assert_eq!(deck.netlist.elements().len(), 3);
        assert!(deck.warnings.is_empty());
        let opts = deck.tran_options().expect("tran card");
        assert_eq!(opts.dt, 1e-8);
        assert_eq!(opts.t_end, 2e-6);
        assert!(opts.use_initial_conditions);
        match &deck.netlist.elements()[1] {
            Element::Capacitor { farads, v0, .. } => {
                assert_eq!(*farads, 2.2 * 1e-9);
                assert_eq!(*v0, 3.3);
            }
            other => panic!("expected capacitor, got {other:?}"),
        }
    }

    #[test]
    fn params_models_and_waveforms_resolve() {
        let deck = parse_spice(
            ".param rload=2k cpar={rload}\n\
             .model dd d is=2e-14 n=1.1\n\
             .model mm pmos kp=60u vto=0.6\n\
             R1 a 0 rload\n\
             V1 a 0 SIN(0 1.65 1MEG 0 0 90)\n\
             I1 a 0 pulse(0 1m 0 1n 1n 0.5u 1u)\n\
             D1 a 0 dd\n\
             M1 a a 0 0 mm\n\
             S1 a 0 on ron=2 roff=1g\n\
             G1 a 0 a 0 1m\n",
        )
        .expect("clean deck");
        assert_eq!(deck.netlist.elements().len(), 7);
        match &deck.netlist.elements()[1] {
            Element::VoltageSource {
                wave: Waveform::Sine { phase, .. },
                ..
            } => {
                assert!((phase - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
            }
            other => panic!("expected sine source, got {other:?}"),
        }
        match &deck.netlist.elements()[3] {
            Element::Diode { model, .. } => assert_eq!(model.is, 2e-14),
            other => panic!("expected diode, got {other:?}"),
        }
    }

    #[test]
    fn engineering_suffixes_and_unit_letters() {
        let deck = parse_spice("C1 a 0 10pF\nR1 a 0 3meg\nL1 a 0 1m\n").expect("parses");
        match deck.netlist.elements() {
            [Element::Capacitor { farads, .. }, Element::Resistor { ohms, .. }, Element::Inductor { henries, .. }] =>
            {
                assert_eq!(*farads, 10e-12);
                assert_eq!(*ohms, 3e6);
                assert_eq!(*henries, 1e-3);
            }
            other => panic!("unexpected elements {other:?}"),
        }
    }

    fn code_of(text: &str) -> &'static str {
        parse_spice(text).expect_err("should fail").code
    }

    #[test]
    fn every_error_code_fires_with_a_position() {
        assert_eq!(code_of("Q1 a 0 1k\n"), "P001");
        assert_eq!(code_of(".nodeset v(a)=0\n"), "P001");
        assert_eq!(code_of("R1 a 0\n"), "P002");
        assert_eq!(code_of("R1 a 0 1k extra\n"), "P002");
        assert_eq!(code_of("R1 a 0 12zz\n"), "P003");
        assert_eq!(code_of("V1 a 0 exp(0 1)\n"), "P004");
        assert_eq!(code_of("V1 a 0 pwl(1u 0 0 1)\n"), "P004");
        assert_eq!(code_of("D1 a 0 nosuch\n"), "P005");
        assert_eq!(code_of(".model x q a=1\n"), "P006");
        assert_eq!(code_of(".model x d is=-1\n"), "P006");
        assert_eq!(code_of("R1 a 0 {w}\n"), "P007");
        assert_eq!(code_of("R1 a 0 1k\nR1 a 0 2k\n"), "P008");
        assert_eq!(code_of("R1 a 0 1k\n.tran 0 1u\n"), "P009");
        assert_eq!(code_of("R1 a 0 1k\n.dc v1 0 1 0\n"), "P009");
        assert_eq!(code_of("R1 a 0 -1k\n"), "P012");
        let err = parse_spice("R1 a 0 12zz\n").expect_err("bad suffix");
        assert_eq!((err.line, err.col), (1, 8));
        assert!(err.to_string().starts_with("P003 at line 1, col 8:"));
    }

    #[test]
    fn ground_and_dangling_warnings() {
        let deck = parse_spice("R1 a b 1k\nC1 a b 1n\n").expect("parses");
        assert_eq!(deck.warnings.len(), 1);
        assert_eq!(deck.warnings[0].code, "P010");
        let deck = parse_spice("R1 a 0 1k\nC1 b 0 1n\n").expect("parses");
        let codes: Vec<_> = deck.warnings.iter().map(|w| w.code).collect();
        assert_eq!(codes, ["P011", "P011"]);
        let report = deck.check();
        assert!(report.warning_count() >= 2);
    }

    #[test]
    fn end_card_stops_parsing() {
        let deck = parse_spice("R1 a 0 1k\n.end\ngarbage beyond end\n").expect("parses");
        assert_eq!(deck.netlist.elements().len(), 1);
    }

    #[test]
    fn dc_card_parses() {
        let deck = parse_spice("V1 a 0 dc 0\nR1 a 0 1k\n.dc v1 0 3.3 0.1\n").expect("parses");
        assert_eq!(
            deck.analyses,
            [Analysis::Dc {
                source: "v1".to_string(),
                start: 0.0,
                stop: 3.3,
                step: 0.1
            }]
        );
        assert!(deck.tran_options().is_none());
    }

    #[test]
    fn bare_value_and_keyword_dc_sources_agree() {
        let a = parse_spice("V1 a 0 3.3\nR1 a 0 1k\n").expect("bare");
        let b = parse_spice("V1 a 0 dc 3.3\nR1 a 0 1k\n").expect("keyword");
        assert_eq!(a.netlist.elements(), b.netlist.elements());
    }
}
