//! Deterministic grammar/mutation fuzzing of every input surface.
//!
//! Three surfaces, one seed, bit-reproducible results:
//!
//! 1. **`.sp` text** — a grammar-directed generator emits plausible decks
//!    (elements, `.param`/`.model`/`.tran` cards, comments, continuation
//!    lines), then byte-level mutations corrupt them. Each case must
//!    either parse (and survive `lcosc-check` plus a step-budgeted
//!    transient) or fail with a typed, positioned [`SpiceError`].
//! 2. **deck JSON** — the same decks round-tripped through
//!    `netlist_to_json`, mutated as JSON text, then fed to
//!    `netlist_from_json`. Typed `JsonParseError`/`DeckError` only.
//! 3. **serve protocol lines** — NDJSON request lines (including the
//!    `"spice"` alternative body) handed to a caller-supplied executor;
//!    `lcosc-bench` passes the real serve engine, unit tests a stub.
//!
//! Every case's (surface, input, outcome) triple folds into one running
//! digest, so two runs with the same seed can be byte-compared in CI. A
//! panic anywhere is caught, minimized with a bounded ddmin pass, and
//! reported as a self-contained repro string — never swallowed.

use crate::parse::parse_spice;
use lcosc_campaign::{digest_bytes, job_seed, Json};
use lcosc_circuit::analysis::transient::run_transient;
use lcosc_circuit::deck::{netlist_from_json, netlist_to_json};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fuzzing configuration. All fields feed the digest: two runs agree
/// byte-for-byte iff their configs agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Master seed; every case derives its own stream from it.
    pub seed: u64,
    /// Cases generated per surface (three surfaces total).
    pub cases_per_surface: usize,
    /// Transient step budget per parse-clean deck (hang bound).
    pub step_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x1c05_c0de,
            cases_per_surface: 3500,
            step_budget: 512,
        }
    }
}

/// One caught failure (a panic — typed errors are expected outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Which surface the case exercised (`sp`, `deck-json`, `protocol`).
    pub surface: &'static str,
    /// Case index within the surface.
    pub case: usize,
    /// The full failing input.
    pub input: String,
    /// ddmin-reduced input that still fails.
    pub minimized: String,
    /// The panic payload.
    pub what: String,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Total cases executed across all surfaces.
    pub cases: usize,
    /// Cases whose input was accepted end to end.
    pub accepted: usize,
    /// Cases rejected with a typed error (the other expected outcome).
    pub typed_errors: usize,
    /// Caught panics — must be zero for a healthy tree.
    pub panics: usize,
    /// Order-sensitive digest over every (surface, input, outcome).
    pub digest: u64,
    /// Details of every caught panic.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Renders the report as the JSON object `repro --fuzz-smoke` prints.
    pub fn to_json(&self, cfg: &FuzzConfig) -> Json {
        Json::obj([
            (
                "seed",
                Json::Int(i64::from_ne_bytes(cfg.seed.to_ne_bytes())),
            ),
            ("cases", Json::Int(self.cases as i64)),
            ("accepted", Json::Int(self.accepted as i64)),
            ("typed_errors", Json::Int(self.typed_errors as i64)),
            ("panics", Json::Int(self.panics as i64)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            (
                "failures",
                Json::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("surface", Json::Str(f.surface.to_string())),
                                ("case", Json::Int(f.case as i64)),
                                ("what", Json::Str(f.what.clone())),
                                ("minimized", Json::Str(f.minimized.clone())),
                                ("input", Json::Str(f.input.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// SplitMix64-derived stream: cheap, portable, and reproducible.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, stream: u64) -> Self {
        Rng(job_seed(seed, stream))
    }

    fn next(&mut self) -> u64 {
        self.0 = job_seed(self.0, 0x9e37);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    fn pick_str(&mut self, items: &[&'static str]) -> &'static str {
        items[self.below(items.len())]
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

const NODES: &[&str] = &["0", "gnd", "a", "b", "c", "out", "tank"];
const VALUES: &[&str] = &[
    "1k", "10", "2.2u", "100n", "47p", "3meg", "1e-9", "0.5", "1f", "5t", "3g", "1m", "{w}", "w",
    "10pf", "1e3", "-1", "0", "1e308", "nan", "9x", "..", "1k5",
];
const WAVES: &[&str] = &[
    "dc 3.3",
    "5",
    "sin(0 1 1meg)",
    "sin(0 1 1meg 0 0 90)",
    "pulse(0 3.3 1u 10n 10n 0.5u 1u)",
    "pulse(0 3.3)",
    "pwl(0 0 1u 3.3)",
    "pwl(0 0 1u 3.3 1u 0)",
    "pwl(0 0 1u)",
    "sin(0 1)",
    "dc",
    "exp(0 1)",
];
const DOTS: &[&str] = &[
    ".param w=1u l=2",
    ".model dd d is=1e-14 n=1.05",
    ".model mm nmos kp=100u vto=0.5",
    ".model bad q x=1",
    ".tran 1n 1u",
    ".tran 1n 1u uic",
    ".tran 0 0",
    ".dc v1 0 3.3 0.1",
    ".title fuzz deck",
    ".opts reltol=1e-3",
    ".end",
];

/// Grammar-directed `.sp` deck generator: mostly well-formed, with
/// deliberate rough edges drawn from the pools above.
fn gen_sp(rng: &mut Rng) -> String {
    let mut deck = String::from("* fuzz deck\n");
    let cards = 1 + rng.below(7);
    for k in 0..cards {
        if rng.chance(25) {
            deck.push_str(rng.pick_str(DOTS));
            deck.push('\n');
            continue;
        }
        let letter = rng.pick_str(&["r", "c", "l", "v", "i", "d", "m", "s", "g", "q", "x"]);
        let a = rng.pick_str(NODES);
        let b = rng.pick_str(NODES);
        let card = match letter {
            "v" | "i" => format!("{letter}{k} {a} {b} {}", rng.pick_str(WAVES)),
            "d" => format!("d{k} {a} {b} dd"),
            "m" => format!("m{k} {a} {b} {} 0 nmos", rng.pick_str(NODES)),
            "s" => format!("s{k} {a} {b} on ron=1 roff=1g"),
            "g" => format!("g{k} {a} {b} {} 0 1m", rng.pick_str(NODES)),
            _ => format!("{letter}{k} {a} {b} {}", rng.pick_str(VALUES)),
        };
        deck.push_str(&card);
        if rng.chance(15) {
            deck.push_str(" ; trailing\n+ ");
            deck.push_str(rng.pick_str(VALUES));
        }
        deck.push('\n');
    }
    if rng.chance(60) {
        deck.push_str(".tran 10n 1u uic\n");
    }
    if rng.chance(70) {
        deck.push_str(".end\n");
    }
    deck
}

/// Byte-level mutation: flips, inserts, deletes and duplications.
fn mutate(rng: &mut Rng, input: &str) -> String {
    let mut bytes: Vec<u8> = input.bytes().collect();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        if bytes.is_empty() {
            break;
        }
        match rng.below(5) {
            0 => {
                let i = rng.below(bytes.len());
                bytes[i] = (rng.next() % 128) as u8;
            }
            1 => {
                let i = rng.below(bytes.len());
                bytes.insert(i, *rng.pick(b"(){}=+*;.,e- \n\t0123456789knpu"));
            }
            2 => {
                let i = rng.below(bytes.len());
                bytes.remove(i);
            }
            3 => {
                let i = rng.below(bytes.len());
                let j = rng.below(bytes.len());
                bytes.swap(i, j);
            }
            _ => {
                let i = rng.below(bytes.len());
                let chunk: Vec<u8> = bytes[i..bytes.len().min(i + 8)].to_vec();
                bytes.extend_from_slice(&chunk);
            }
        }
    }
    // Keep inputs valid UTF-8 so every layer sees a &str, as in prod.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Executes one `.sp` case: parse, check, and a step-budgeted transient
/// when the deck comes with a `.tran` card. Returns an outcome tag.
fn run_sp_case(input: &str, step_budget: usize) -> Result<&'static str, String> {
    let deck = match parse_spice(input) {
        Ok(deck) => deck,
        Err(e) => return Err(format!("{e}")),
    };
    let report = deck.check();
    if report.error_count() > 0 {
        return Err(format!("check: {} errors", report.error_count()));
    }
    if let Some(mut opts) = deck.tran_options() {
        // Hang bound: clamp the run to the per-case step budget and skip
        // pathological matrices the generator cannot meaningfully solve.
        if deck.netlist.node_count() <= 64 && step_budget > 0 {
            let max_end = opts.dt * step_budget as f64;
            if opts.t_end > max_end {
                opts.t_end = max_end.max(opts.dt * 2.0);
            }
            opts.max_iter = opts.max_iter.min(50);
            if let Err(e) = run_transient(&deck.netlist, &opts) {
                return Err(format!("transient: {e}"));
            }
        }
    }
    Ok("accepted")
}

/// Executes one deck-JSON case: JSON parse, netlist decode, check.
fn run_deck_case(input: &str) -> Result<&'static str, String> {
    let json = Json::parse(input).map_err(|e| format!("{e}"))?;
    let nl = netlist_from_json(&json).map_err(|e| format!("{e}"))?;
    let report = lcosc_check::check_netlist(&nl);
    if report.error_count() > 0 {
        return Err(format!("check: {} errors", report.error_count()));
    }
    Ok("accepted")
}

/// Builds a protocol request line for the protocol surface: JSON-deck
/// transient requests, `"spice"` requests, and junk.
fn gen_protocol_line(rng: &mut Rng) -> String {
    match rng.below(4) {
        0 => {
            let sp = gen_sp(rng);
            Json::obj([
                ("id", Json::Str(format!("f{}", rng.below(1000)))),
                ("kind", Json::Str("transient".to_string())),
                ("spice", Json::Str(sp)),
            ])
            .render()
        }
        1 => {
            let sp = gen_sp(rng);
            match parse_spice(&sp) {
                Ok(deck) => Json::obj([
                    ("id", Json::Str("j".to_string())),
                    ("kind", Json::Str("transient".to_string())),
                    ("deck", netlist_to_json(&deck.netlist)),
                    ("dt", Json::Float(1e-8)),
                    ("t_end", Json::Float(1e-7)),
                ])
                .render(),
                Err(_) => "{\"kind\":\"ping\"}".to_string(),
            }
        }
        2 => "{\"kind\":\"ping\",\"id\":\"p\"}".to_string(),
        _ => mutate(rng, "{\"id\":\"x\",\"kind\":\"transient\",\"deck\":{}}"),
    }
}

/// Bounded ddmin: repeatedly drops line and byte chunks while the
/// predicate still fails, within a fixed attempt budget.
fn minimize(input: &str, still_fails: &dyn Fn(&str) -> bool) -> String {
    let mut best = input.to_string();
    let mut attempts = 0usize;
    // Line-level pass.
    loop {
        let lines: Vec<&str> = best.lines().collect();
        if lines.len() <= 1 {
            break;
        }
        let mut shrunk = false;
        for skip in 0..lines.len() {
            attempts += 1;
            if attempts > 200 {
                return best;
            }
            let candidate: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            if still_fails(&candidate) {
                best = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    // Byte-chunk pass: halve chunks from the ends.
    let mut chunk = best.len() / 2;
    while chunk >= 1 && attempts < 400 {
        let mut shrunk = false;
        for start in [0usize, best.len().saturating_sub(chunk)] {
            if best.len() <= chunk {
                break;
            }
            attempts += 1;
            let mut candidate = String::new();
            for (i, c) in best.char_indices() {
                if i < start || i >= start + chunk {
                    candidate.push(c);
                }
            }
            if still_fails(&candidate) {
                best = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            chunk /= 2;
        }
    }
    best
}

fn outcome_of(result: &std::thread::Result<Result<&'static str, String>>) -> (String, bool) {
    match result {
        Ok(Ok(tag)) => ((*tag).to_string(), false),
        Ok(Err(msg)) => (format!("typed: {msg}"), false),
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (format!("panic: {what}"), true)
        }
    }
}

/// Runs the full three-surface fuzz campaign.
///
/// `protocol` executes one raw request line and returns the response
/// line; pass the serve engine's `submit_line` (via `lcosc-bench`) or a
/// stub. The returned report is a pure function of `cfg` and the
/// protocol executor's behaviour.
pub fn run_fuzz(cfg: &FuzzConfig, protocol: &dyn Fn(&str) -> String) -> FuzzReport {
    let mut report = FuzzReport {
        cases: 0,
        accepted: 0,
        typed_errors: 0,
        panics: 0,
        digest: digest_bytes(&cfg.seed.to_le_bytes()),
        failures: Vec::new(),
    };
    let surfaces: [(&'static str, u64); 3] = [("sp", 1), ("deck-json", 2), ("protocol", 3)];
    for (surface, stream) in surfaces {
        for case in 0..cfg.cases_per_surface {
            let mut rng = Rng::new(cfg.seed, stream * 0x1_0000_0000 + case as u64);
            let input = match surface {
                "sp" => {
                    let base = gen_sp(&mut rng);
                    if rng.chance(50) {
                        mutate(&mut rng, &base)
                    } else {
                        base
                    }
                }
                "deck-json" => {
                    let base = match parse_spice(&gen_sp(&mut rng)) {
                        Ok(deck) => netlist_to_json(&deck.netlist).render(),
                        Err(_) => "{\"nodes\":[],\"elements\":[]}".to_string(),
                    };
                    if rng.chance(60) {
                        mutate(&mut rng, &base)
                    } else {
                        base
                    }
                }
                _ => gen_protocol_line(&mut rng),
            };
            let exec = |text: &str| -> std::thread::Result<Result<&'static str, String>> {
                catch_unwind(AssertUnwindSafe(|| match surface {
                    "sp" => run_sp_case(text, cfg.step_budget),
                    "deck-json" => run_deck_case(text),
                    _ => {
                        let response = protocol(text);
                        if response.contains("\"error\"") {
                            Err(response)
                        } else {
                            Ok("accepted")
                        }
                    }
                }))
            };
            let result = exec(&input);
            let (outcome, panicked) = outcome_of(&result);
            report.cases += 1;
            if panicked {
                report.panics += 1;
                let still_fails =
                    |candidate: &str| matches!(outcome_of(&exec(candidate)), (_, true));
                let minimized = minimize(&input, &still_fails);
                report.failures.push(FuzzFailure {
                    surface,
                    case,
                    input: input.clone(),
                    minimized,
                    what: outcome.clone(),
                });
            } else if outcome.starts_with("typed") {
                report.typed_errors += 1;
            } else {
                report.accepted += 1;
            }
            let mut record = Vec::new();
            record.extend_from_slice(&report.digest.to_le_bytes());
            record.extend_from_slice(surface.as_bytes());
            record.extend_from_slice(&(case as u64).to_le_bytes());
            record.extend_from_slice(input.as_bytes());
            record.extend_from_slice(outcome.as_bytes());
            report.digest = digest_bytes(&record);
        }
    }
    report
}

/// A protocol stub for tests and standalone runs: accepts `ping`,
/// answers everything else with a typed error line.
pub fn stub_protocol(line: &str) -> String {
    match Json::parse(line) {
        Ok(Json::Object(fields)) => {
            let kind = fields.iter().find(|(k, _)| k == "kind");
            match kind {
                Some((_, Json::Str(k))) if k == "ping" => "{\"status\":\"ok\"}".to_string(),
                _ => "{\"status\":\"error\",\"error\":\"unsupported\"}".to_string(),
            }
        }
        Ok(_) => "{\"status\":\"error\",\"error\":\"not an object\"}".to_string(),
        Err(e) => format!(
            "{{\"status\":\"error\",\"error\":{}}}",
            Json::Str(e.to_string()).render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic_for_a_fixed_seed() {
        let cfg = FuzzConfig {
            seed: 7,
            cases_per_surface: 60,
            step_budget: 64,
        };
        let a = run_fuzz(&cfg, &stub_protocol);
        let b = run_fuzz(&cfg, &stub_protocol);
        assert_eq!(a, b);
        assert_eq!(a.cases, 180);
    }

    #[test]
    fn fuzz_finds_no_panics_in_the_front_end() {
        let cfg = FuzzConfig {
            seed: 42,
            cases_per_surface: 200,
            step_budget: 64,
        };
        let report = run_fuzz(&cfg, &stub_protocol);
        assert_eq!(report.panics, 0, "failures: {:?}", report.failures);
        assert!(
            report.typed_errors > 0,
            "mutations never produced an error?"
        );
        assert!(
            report.accepted > 0,
            "generator never produced a clean deck?"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg_a = FuzzConfig {
            seed: 1,
            cases_per_surface: 30,
            step_budget: 16,
        };
        let cfg_b = FuzzConfig { seed: 2, ..cfg_a };
        let a = run_fuzz(&cfg_a, &stub_protocol);
        let b = run_fuzz(&cfg_b, &stub_protocol);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn minimizer_shrinks_while_preserving_failure() {
        let fails = |s: &str| s.contains("boom");
        let shrunk = minimize("good line\nhas boom inside\nmore noise\n", &fails);
        assert!(shrunk.contains("boom"));
        assert!(shrunk.len() < "good line\nhas boom inside\nmore noise\n".len());
    }

    #[test]
    fn report_json_is_stable() {
        let cfg = FuzzConfig {
            seed: 7,
            cases_per_surface: 5,
            step_budget: 8,
        };
        let report = run_fuzz(&cfg, &stub_protocol);
        let rendered = report.to_json(&cfg).render();
        assert!(rendered.contains("\"digest\":\""));
        assert!(rendered.contains("\"panics\":0"));
    }
}
