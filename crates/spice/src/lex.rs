//! Lexing of `.sp` text into logical cards.
//!
//! SPICE input is line-oriented: one card per logical line, where a
//! physical line starting with `+` continues the previous card. This
//! module folds the physical lines into [`Card`]s and splits each card
//! into position-tracked [`Token`]s, so every later diagnostic can point
//! at the exact source line and column.
//!
//! Lexical rules of the dialect (documented in DESIGN §17):
//!
//! - a line whose first non-blank character is `*` is a comment;
//! - `;` and `$` start a trailing comment anywhere in a line;
//! - `+` in column 1 continues the previous card;
//! - `(`, `)` and `,` are decorative separators (so `SIN(0 1V 1MEG)`
//!   and `sin 0 1v 1meg` lex identically);
//! - `=` is a token of its own (`ic=1n` lexes as `ic`, `=`, `1n`);
//! - everything is case-insensitive; tokens are lowercased here once.

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased token text.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// 1-based column the token starts at.
    pub col: usize,
}

/// One logical card: a non-comment line plus its `+` continuations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Card {
    /// 1-based source line the card starts on.
    pub line: usize,
    /// The card's tokens, in order.
    pub tokens: Vec<Token>,
}

/// Strips a trailing `;` or `$` comment from one physical line.
fn strip_trailing_comment(line: &str) -> &str {
    match line.find([';', '$']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Splits one physical line into tokens, appending to `out`.
fn tokenize_line(line: &str, line_no: usize, start_col: usize, out: &mut Vec<Token>) {
    let mut token = String::new();
    let mut token_col = 0usize;
    let flush = |token: &mut String, token_col: usize, out: &mut Vec<Token>| {
        if !token.is_empty() {
            out.push(Token {
                text: std::mem::take(token),
                line: line_no,
                col: token_col,
            });
        }
    };
    for (i, c) in line.chars().enumerate() {
        let col = start_col + i;
        match c {
            c if c.is_whitespace() => flush(&mut token, token_col, out),
            '(' | ')' | ',' => flush(&mut token, token_col, out),
            '=' => {
                flush(&mut token, token_col, out);
                out.push(Token {
                    text: "=".to_string(),
                    line: line_no,
                    col,
                });
            }
            c => {
                if token.is_empty() {
                    token_col = col;
                }
                token.extend(c.to_lowercase());
            }
        }
    }
    flush(&mut token, token_col, out);
}

/// Lexes `.sp` text into logical cards.
///
/// Never fails: unknown characters become part of tokens and are
/// rejected by the parser with a positioned diagnostic instead. A `+`
/// continuation with no preceding card starts a fresh card (the parser
/// then rejects its first token).
pub fn lex(text: &str) -> Vec<Card> {
    let mut cards: Vec<Card> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_trailing_comment(raw);
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let leading = line.len() - trimmed.len();
        if let Some(rest) = trimmed.strip_prefix('+') {
            // Continuation: append to the previous card, or start a new
            // card if there is none to continue.
            let card = match cards.last_mut() {
                Some(card) => card,
                None => {
                    cards.push(Card {
                        line: line_no,
                        tokens: Vec::new(),
                    });
                    cards.last_mut().expect("card just pushed")
                }
            };
            tokenize_line(rest, line_no, leading + 2, &mut card.tokens);
        } else {
            let mut tokens = Vec::new();
            tokenize_line(trimmed, line_no, leading + 1, &mut tokens);
            cards.push(Card {
                line: line_no,
                tokens,
            });
        }
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(card: &Card) -> Vec<&str> {
        card.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn cards_fold_continuations_and_skip_comments() {
        let cards = lex("* a comment\nR1 a b 1k ; trailing\n+ 2k\n\nC1 a 0 1n\n");
        assert_eq!(cards.len(), 2);
        assert_eq!(texts(&cards[0]), ["r1", "a", "b", "1k", "2k"]);
        assert_eq!(cards[0].line, 2);
        assert_eq!(texts(&cards[1]), ["c1", "a", "0", "1n"]);
    }

    #[test]
    fn parens_commas_and_equals_separate_tokens() {
        let cards = lex("V1 in 0 SIN(0, 1V, 1MEG)\nC2 out 0 10p ic=0.5\n");
        assert_eq!(
            texts(&cards[0]),
            ["v1", "in", "0", "sin", "0", "1v", "1meg"]
        );
        assert_eq!(
            texts(&cards[1]),
            ["c2", "out", "0", "10p", "ic", "=", "0.5"]
        );
    }

    #[test]
    fn token_positions_point_into_the_source() {
        let cards = lex("R1 a b 1k\n");
        assert_eq!(cards[0].tokens[3].line, 1);
        assert_eq!(cards[0].tokens[3].col, 8);
    }

    #[test]
    fn dollar_comment_and_lone_continuation() {
        let cards = lex("$ all comment\n+ orphan 1 2\n");
        assert_eq!(cards.len(), 1);
        assert_eq!(texts(&cards[0]), ["orphan", "1", "2"]);
    }
}
