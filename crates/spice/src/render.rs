//! Rendering a [`Netlist`] back to `.sp` text.
//!
//! The renderer is the inverse of [`crate::parse_spice`] up to naming:
//! nodes render by index (`0` for ground, `n3` for node 3) and elements
//! by kind letter plus element index, so `render → parse → render` is a
//! fixed point whenever the original netlist wires nodes in
//! first-reference order. Values render with `{:e}` — Rust's shortest
//! round-trip exponent form — so numeric fidelity is bit-exact.

use lcosc_circuit::{Element, Netlist, NodeId, TransientOptions, Waveform};
use lcosc_device::mos::Polarity;
use std::fmt::Write as _;

fn node(n: NodeId) -> String {
    if n.is_ground() {
        "0".to_string()
    } else {
        format!("n{}", n.index())
    }
}

fn waveform(wave: &Waveform) -> String {
    match wave {
        Waveform::Dc(v) => format!("dc {v:e}"),
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            phase,
        } => {
            if *phase == 0.0 {
                format!("sin({offset:e} {amplitude:e} {frequency:e})")
            } else {
                format!(
                    "sin({offset:e} {amplitude:e} {frequency:e} 0 0 {:e})",
                    phase.to_degrees()
                )
            }
        }
        // The dialect has no STEP card; a step is its 3-point PWL
        // equivalent (clamped outside the range, exactly like eval()).
        Waveform::Step {
            v0,
            v1,
            t_step,
            t_rise,
        } => format!("pwl({t_step:e} {v0:e} {:e} {v1:e})", t_step + t_rise),
        Waveform::Pwl(points) => {
            let mut s = String::from("pwl(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{t:e} {v:e}");
            }
            s.push(')');
            s
        }
        Waveform::Pulse {
            v1,
            v2,
            td,
            tr,
            tf,
            pw,
            per,
        } => format!("pulse({v1:e} {v2:e} {td:e} {tr:e} {tf:e} {pw:e} {per:e})"),
    }
}

/// Renders a netlist (plus an optional `.tran` plan) as `.sp` text.
///
/// Non-default diode and MOS models are emitted as numbered `.model`
/// cards ahead of the element cards that reference them.
pub fn render_netlist(nl: &Netlist, title: &str, tran: Option<&TransientOptions>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".title {title}");
    // Model cards first, one per element that needs a non-builtin model.
    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Diode { model, .. }
                if *model != lcosc_device::diode::DiodeModel::default() =>
            {
                let _ = writeln!(
                    out,
                    ".model dmod{k} d is={:e} n={:e} temp={:e}",
                    model.is, model.n, model.temp_k
                );
            }
            Element::Mosfet { model, .. }
                if *model != lcosc_device::mos::MosModel::nmos_035um()
                    && *model != lcosc_device::mos::MosModel::pmos_035um() =>
            {
                let kind = match model.polarity() {
                    Polarity::N => "nmos",
                    Polarity::P => "pmos",
                };
                let _ = writeln!(
                    out,
                    ".model mmod{k} {kind} kp={:e} vto={:e} n={:e} lambda={:e}",
                    model.kp(),
                    model.vth(),
                    model.slope_factor(),
                    model.lambda()
                );
            }
            _ => {}
        }
    }
    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let _ = writeln!(out, "r{k} {} {} {ohms:e}", node(*a), node(*b));
            }
            Element::Capacitor { a, b, farads, v0 } => {
                let _ = write!(out, "c{k} {} {} {farads:e}", node(*a), node(*b));
                if *v0 != 0.0 {
                    let _ = write!(out, " ic={v0:e}");
                }
                out.push('\n');
            }
            Element::Inductor { a, b, henries, i0 } => {
                let _ = write!(out, "l{k} {} {} {henries:e}", node(*a), node(*b));
                if *i0 != 0.0 {
                    let _ = write!(out, " ic={i0:e}");
                }
                out.push('\n');
            }
            Element::VoltageSource { p, n, wave } => {
                let _ = writeln!(out, "v{k} {} {} {}", node(*p), node(*n), waveform(wave));
            }
            Element::CurrentSource { p, n, wave } => {
                let _ = writeln!(out, "i{k} {} {} {}", node(*p), node(*n), waveform(wave));
            }
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                gm,
            } => {
                let _ = writeln!(
                    out,
                    "g{k} {} {} {} {} {gm:e}",
                    node(*out_p),
                    node(*out_n),
                    node(*in_p),
                    node(*in_n)
                );
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let _ = write!(out, "d{k} {} {}", node(*anode), node(*cathode));
                if *model != lcosc_device::diode::DiodeModel::default() {
                    let _ = write!(out, " dmod{k}");
                }
                out.push('\n');
            }
            Element::Mosfet { d, g, s, b, model } => {
                let name = if *model == lcosc_device::mos::MosModel::nmos_035um() {
                    "nmos".to_string()
                } else if *model == lcosc_device::mos::MosModel::pmos_035um() {
                    "pmos".to_string()
                } else {
                    format!("mmod{k}")
                };
                let _ = writeln!(
                    out,
                    "m{k} {} {} {} {} {name}",
                    node(*d),
                    node(*g),
                    node(*s),
                    node(*b)
                );
            }
            Element::Switch {
                a,
                b,
                closed,
                r_on,
                r_off,
            } => {
                let state = if *closed { "on" } else { "off" };
                let _ = writeln!(
                    out,
                    "s{k} {} {} {state} ron={r_on:e} roff={r_off:e}",
                    node(*a),
                    node(*b)
                );
            }
        }
    }
    if let Some(opts) = tran {
        let _ = write!(out, ".tran {:e} {:e}", opts.dt, opts.t_end);
        if opts.use_initial_conditions {
            out.push_str(" uic");
        }
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}
