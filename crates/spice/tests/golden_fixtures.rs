//! Golden `.sp` fixtures: each deck under `tests/golden/spice/` parses to
//! a byte-stable deck JSON document, compared against its committed
//! `.deck.json` twin. Regenerate after an intentional dialect change with
//!
//! ```text
//! LCOSC_BLESS=1 cargo test -q -p lcosc-spice --test golden_fixtures
//! ```
//!
//! and review the fixture diff like any other code change.

use lcosc_campaign::Json;
use lcosc_circuit::netlist_to_json;
use lcosc_spice::{parse_spice, render_netlist, Analysis};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    [
        env!("CARGO_MANIFEST_DIR"),
        "..",
        "..",
        "tests",
        "golden",
        "spice",
    ]
    .iter()
    .collect()
}

fn golden(name: &str, rendered: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("LCOSC_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {}: {e}\n(regenerate with LCOSC_BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, rendered,
        "golden mismatch for {name} (regenerate with LCOSC_BLESS=1 if intentional)"
    );
}

/// Parses one `.sp` fixture and renders its full observable outcome —
/// title, netlist deck JSON, analyses, warnings — as a stable document.
fn deck_document(sp: &str) -> String {
    let deck = parse_spice(sp).expect("golden fixtures parse cleanly");
    let analyses: Vec<Json> = deck
        .analyses
        .iter()
        .map(|a| match a {
            Analysis::Tran { tstep, tstop, uic } => Json::obj([
                ("kind", Json::Str("tran".to_string())),
                ("tstep", Json::Float(*tstep)),
                ("tstop", Json::Float(*tstop)),
                ("uic", Json::Bool(*uic)),
            ]),
            Analysis::Dc {
                source,
                start,
                stop,
                step,
            } => Json::obj([
                ("kind", Json::Str("dc".to_string())),
                ("source", Json::Str(source.clone())),
                ("start", Json::Float(*start)),
                ("stop", Json::Float(*stop)),
                ("step", Json::Float(*step)),
            ]),
        })
        .collect();
    let warnings: Vec<Json> = deck
        .warnings
        .iter()
        .map(|w| Json::Str(format!("{w}")))
        .collect();
    Json::obj([
        (
            "title",
            match &deck.title {
                Some(t) => Json::Str(t.clone()),
                None => Json::Null,
            },
        ),
        (
            "elements",
            Json::Array(
                deck.element_names
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        ("deck", netlist_to_json(&deck.netlist)),
        ("analyses", Json::Array(analyses)),
        ("warnings", Json::Array(warnings)),
    ])
    .render_pretty(2)
}

fn check_fixture(stem: &str) {
    let sp_path = fixture_dir().join(format!("{stem}.sp"));
    let sp = std::fs::read_to_string(&sp_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", sp_path.display()));
    golden(&format!("{stem}.deck.json"), &deck_document(&sp));
    // The renderer must be a parse fixed point: render(parse(sp)) parses
    // back to the identical netlist.
    let deck = parse_spice(&sp).expect("fixture parses");
    let rendered = render_netlist(&deck.netlist, stem, deck.tran_options().as_ref());
    let reparsed = parse_spice(&rendered).expect("rendered deck parses");
    assert_eq!(
        deck.netlist.elements(),
        reparsed.netlist.elements(),
        "{stem}"
    );
}

#[test]
fn paper_tank_deck_is_stable() {
    check_fixture("paper_tank");
}

#[test]
fn rc_ladder_deck_is_stable() {
    check_fixture("rc_ladder");
}

#[test]
fn pulse_switch_deck_is_stable() {
    check_fixture("pulse_switch");
}

#[test]
fn antiparallel_diodes_deck_is_stable() {
    check_fixture("antiparallel_diodes");
}
