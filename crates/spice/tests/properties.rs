//! Property tests for the `.sp` round trip: a randomized netlist renders
//! to text, parses back to the identical element list, survives the deck
//! JSON round trip, and the renderer is a parse fixed point.
//!
//! The generator builds chain-topology netlists: every node is created at
//! its first use, so the parser (which numbers nodes in first-reference
//! order) reconstructs the exact same [`NodeId`] assignment and element
//! equality is meaningful.

use lcosc_campaign::job_seed;
use lcosc_circuit::{netlist_from_json, netlist_to_json, Element, Netlist, NodeId, Waveform};
use lcosc_device::diode::DiodeModel;
use lcosc_spice::{parse_spice, render_netlist};
use proptest::prelude::*;

/// SplitMix64-style generator: one `u64` seed fully determines the deck.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(job_seed(seed, 0x5eed))
    }

    fn next(&mut self) -> u64 {
        self.0 = job_seed(self.0, 0x9e37);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A value in `[lo, hi)`, uniform enough for structure generation.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Picks an element terminal: mostly an existing node, sometimes ground,
/// sometimes a brand-new node. Nodes are only ever created here, at the
/// moment they are first used, so netlist creation order equals the
/// rendered text's first-reference order — the property the renderer's
/// fixed point depends on.
fn terminal(rng: &mut Rng, nl: &mut Netlist, nodes: &mut Vec<NodeId>) -> NodeId {
    match rng.below(4) {
        0 => Netlist::GROUND,
        1 | 2 if nodes.is_empty() || (rng.below(3) == 0 && nodes.len() < 12) => {
            let n = nl.node("n");
            nodes.push(n);
            n
        }
        _ if nodes.is_empty() => Netlist::GROUND,
        _ => nodes[rng.below(nodes.len() as u64) as usize],
    }
}

fn waveform(rng: &mut Rng) -> Waveform {
    match rng.below(4) {
        0 => Waveform::Dc(rng.range(-10.0, 10.0)),
        1 => Waveform::Sine {
            offset: rng.range(-2.0, 2.0),
            amplitude: rng.range(0.1, 5.0),
            frequency: rng.range(1e3, 1e7),
            // The dialect carries phase in degrees; degrees→radians is not
            // an exact float round trip, so the generator sticks to 0.
            phase: 0.0,
        },
        2 => {
            let mut t = 0.0;
            let points = (0..2 + rng.below(4))
                .map(|_| {
                    t += rng.range(1e-7, 1e-5);
                    (t, rng.range(-5.0, 5.0))
                })
                .collect();
            Waveform::Pwl(points)
        }
        _ => Waveform::Pulse {
            v1: rng.range(-1.0, 1.0),
            v2: rng.range(1.5, 5.0),
            td: rng.range(0.0, 1e-6),
            tr: rng.range(1e-9, 1e-7),
            tf: rng.range(1e-9, 1e-7),
            pw: rng.range(1e-7, 1e-6),
            per: rng.range(1e-5, 1e-4),
        },
    }
}

/// A random chain-topology netlist with 1–8 elements.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut nl = Netlist::new();
    let mut nodes = Vec::new();
    for _ in 0..1 + rng.below(8) {
        // Terminals are created in card order so first-reference order
        // matches creation order.
        match rng.below(9) {
            0 => {
                let (a, b) = pair(&mut rng, &mut nl, &mut nodes);
                nl.resistor(a, b, rng.range(1.0, 1e6));
            }
            1 => {
                let (a, b) = pair(&mut rng, &mut nl, &mut nodes);
                let v0 = if rng.below(2) == 0 {
                    rng.range(-5.0, 5.0)
                } else {
                    0.0
                };
                nl.capacitor_ic(a, b, rng.range(1e-12, 1e-6), v0);
            }
            2 => {
                let (a, b) = pair(&mut rng, &mut nl, &mut nodes);
                let i0 = if rng.below(2) == 0 {
                    rng.range(-0.1, 0.1)
                } else {
                    0.0
                };
                nl.inductor_ic(a, b, rng.range(1e-9, 1e-3), i0);
            }
            3 => {
                let (p, n) = pair(&mut rng, &mut nl, &mut nodes);
                let wave = waveform(&mut rng);
                nl.voltage_source(p, n, wave);
            }
            4 => {
                let (p, n) = pair(&mut rng, &mut nl, &mut nodes);
                let wave = waveform(&mut rng);
                nl.current_source(p, n, wave);
            }
            5 => {
                let out_p = terminal(&mut rng, &mut nl, &mut nodes);
                let out_n = terminal(&mut rng, &mut nl, &mut nodes);
                let in_p = terminal(&mut rng, &mut nl, &mut nodes);
                let in_n = terminal(&mut rng, &mut nl, &mut nodes);
                nl.vccs(out_p, out_n, in_p, in_n, rng.range(1e-4, 1.0));
            }
            6 => {
                let (a, c) = pair(&mut rng, &mut nl, &mut nodes);
                let model = if rng.below(2) == 0 {
                    DiodeModel::default()
                } else {
                    DiodeModel::new(rng.range(1e-16, 1e-12), rng.range(1.0, 2.0), 300.0)
                };
                nl.diode(a, c, model);
            }
            7 => {
                let d = terminal(&mut rng, &mut nl, &mut nodes);
                let g = terminal(&mut rng, &mut nl, &mut nodes);
                let s = terminal(&mut rng, &mut nl, &mut nodes);
                let b = terminal(&mut rng, &mut nl, &mut nodes);
                let model = if rng.below(2) == 0 {
                    lcosc_device::mos::MosModel::nmos_035um()
                } else {
                    lcosc_device::mos::MosModel::pmos_035um()
                };
                nl.mosfet(d, g, s, b, model);
            }
            _ => {
                let (a, b) = pair(&mut rng, &mut nl, &mut nodes);
                nl.push_element(Element::Switch {
                    a,
                    b,
                    closed: rng.below(2) == 0,
                    r_on: rng.range(0.1, 10.0),
                    r_off: rng.range(1e6, 1e9),
                });
            }
        }
    }
    nl
}

fn pair(rng: &mut Rng, nl: &mut Netlist, nodes: &mut Vec<NodeId>) -> (NodeId, NodeId) {
    let a = terminal(rng, nl, nodes);
    let b = terminal(rng, nl, nodes);
    (a, b)
}

proptest! {
    /// netlist → `.sp` → netlist reproduces the exact element list, and
    /// the rendered text is a parse fixed point (render ∘ parse = id).
    #[test]
    fn sp_render_parse_round_trip(seed in 0u64..768) {
        let nl = random_netlist(seed);
        let sp = render_netlist(&nl, "round trip", None);
        let deck = parse_spice(&sp)
            .unwrap_or_else(|e| panic!("seed {seed}: rendered deck rejected: {e}\n{sp}"));
        prop_assert_eq!(nl.node_count(), deck.netlist.node_count(), "seed {}\n{}", seed, &sp);
        prop_assert_eq!(nl.elements(), deck.netlist.elements(), "seed {}\n{}", seed, &sp);
        let again = render_netlist(&deck.netlist, "round trip", None);
        prop_assert_eq!(&sp, &again, "render not a fixed point for seed {}", seed);
    }

    /// netlist → `.sp` → deck JSON → netlist keeps elements and node names.
    #[test]
    fn sp_to_deck_json_round_trip(seed in 0u64..384) {
        let nl = random_netlist(seed);
        let sp = render_netlist(&nl, "json trip", None);
        let deck = parse_spice(&sp)
            .unwrap_or_else(|e| panic!("seed {seed}: rendered deck rejected: {e}\n{sp}"));
        let json = netlist_to_json(&deck.netlist);
        let back = netlist_from_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: deck JSON rejected: {e:?}"));
        prop_assert_eq!(deck.netlist.elements(), back.elements(), "seed {}", seed);
        prop_assert_eq!(deck.netlist.node_count(), back.node_count(), "seed {}", seed);
        // Node names survive too: re-serializing the round-tripped netlist
        // must reproduce the deck JSON byte for byte.
        prop_assert_eq!(json.render(), netlist_to_json(&back).render(), "seed {}", seed);
    }
}
