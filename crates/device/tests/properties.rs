//! Property-based tests on the device models.

use lcosc_device::comparator::{WindowComparator, WindowState};
use lcosc_device::diode::DiodeModel;
use lcosc_device::mirror::BinaryWeightedBank;
use lcosc_device::mismatch::MismatchModel;
use lcosc_device::mos::MosModel;
use proptest::prelude::*;

proptest! {
    /// Diode current is monotone in bias and finite everywhere.
    #[test]
    fn diode_monotone_and_finite(v1 in -10.0f64..10.0, v2 in -10.0f64..10.0) {
        let d = DiodeModel::default();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let (ilo, ihi) = (d.current(lo), d.current(hi));
        prop_assert!(ilo.is_finite() && ihi.is_finite());
        prop_assert!(ihi >= ilo);
        prop_assert!(d.conductance(v1) >= 0.0);
    }

    /// The diode companion model reconstructs the current at the expansion
    /// point for any bias.
    #[test]
    fn diode_companion_consistent(v in -5.0f64..2.0) {
        let d = DiodeModel::bulk_junction_035um();
        let (g, ieq) = d.companion(v);
        prop_assert!((g * v + ieq - d.current(v)).abs() < 1e-9 * d.current(v).abs().max(1.0));
    }

    /// NMOS drain current is antisymmetric under drain/source exchange
    /// (without channel-length modulation the EKV model is exact here).
    #[test]
    fn mos_source_drain_antisymmetry(
        vg in -1.0f64..3.5,
        vd in -1.0f64..3.5,
        vs in -1.0f64..3.5,
    ) {
        let m = MosModel::nmos_035um().with_lambda(0.0);
        let fwd = m.evaluate_4t(vg, vd, vs).id;
        let rev = m.evaluate_4t(vg, vs, vd).id;
        prop_assert!((fwd + rev).abs() <= 1e-9 * fwd.abs().max(1e-12), "{fwd} vs {rev}");
    }

    /// The analytic gm matches a numeric derivative everywhere sampled.
    #[test]
    fn mos_gm_matches_numeric(vg in 0.0f64..3.0, vd in 0.0f64..3.0) {
        let m = MosModel::nmos_035um();
        let h = 1e-6;
        let op = m.evaluate(vg, vd);
        let num = (m.evaluate(vg + h, vd).id - m.evaluate(vg - h, vd).id) / (2.0 * h);
        prop_assert!((op.gm - num).abs() <= 1e-4 * num.abs().max(1e-12));
    }

    /// MOS current never exceeds the square-law ceiling with margin.
    #[test]
    fn mos_current_bounded(vg in 0.0f64..3.3, vd in 0.0f64..3.3) {
        let m = MosModel::nmos_035um();
        let id = m.evaluate(vg, vd).id;
        // Square-law worst case (triode peak) with generous margin.
        let ceiling = 2.0 * m.kp() * (vg + 1.0) * (vg + 1.0);
        prop_assert!(id >= -1e-9 && id <= ceiling, "id {id}, ceiling {ceiling}");
    }

    /// Binary bank multiplication is within mismatch bounds of the code.
    #[test]
    fn bank_multiplication_near_code(seed in 0u64..1000, code in 0u32..128) {
        let mut die = MismatchModel::new(0.01, seed);
        let bank = BinaryWeightedBank::sampled(7, &mut die);
        let m = bank.multiplication(code);
        if code > 0 {
            prop_assert!((m / code as f64 - 1.0).abs() < 0.2, "code {code}: {m}");
        } else {
            prop_assert_eq!(m, 0.0);
        }
    }

    /// Window comparator classification is consistent with its thresholds.
    #[test]
    fn window_classification_consistent(
        center in 0.1f64..10.0,
        width in 0.01f64..0.5,
        v in -1.0f64..12.0,
    ) {
        let w = WindowComparator::centered(center, width);
        let state = w.classify(v);
        match state {
            WindowState::Below => prop_assert!(v < w.low()),
            WindowState::Above => prop_assert!(v > w.high()),
            WindowState::Inside => prop_assert!(v >= w.low() && v <= w.high()),
        }
    }

    /// Mismatch ratios are always positive and reproducible per seed.
    #[test]
    fn mismatch_ratio_positive(seed in 0u64..1000, nominal in 0.5f64..64.0) {
        let mut a = MismatchModel::new(0.05, seed);
        let mut b = MismatchModel::new(0.05, seed);
        let ra = a.ratio(nominal);
        prop_assert!(ra > 0.0);
        prop_assert_eq!(ra, b.ratio(nominal));
    }
}
