//! Pelgrom-style random mismatch for matched device ratios.
//!
//! The paper's Fig 13/14 "measured" DAC transfer differs from the ideal
//! staircase because the prescaler, the fixed mirror legs and the binary
//! weights are built from finite-area matched devices. Mismatch between two
//! nominally identical devices has a standard deviation `σ ∝ 1/√(W·L)`
//! (Pelgrom's law); we expose that as a per-component relative sigma and a
//! seeded sampler so every "die" is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mismatch sampler: draws relative errors for matched-device ratios.
///
/// # Example
///
/// ```
/// use lcosc_device::mismatch::MismatchModel;
///
/// let mut die = MismatchModel::new(0.01, 42); // 1 % sigma, die seed 42
/// let ratio = die.ratio(8.0);                 // a nominal 8:1 mirror
/// assert!((ratio / 8.0 - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct MismatchModel {
    sigma_rel: f64,
    rng: StdRng,
    seed: u64,
}

impl MismatchModel {
    /// Creates a sampler with the given relative sigma (e.g. `0.005` for
    /// 0.5 %) and die seed.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_rel` is negative or not finite.
    pub fn new(sigma_rel: f64, seed: u64) -> Self {
        assert!(
            sigma_rel >= 0.0 && sigma_rel.is_finite(),
            "sigma must be finite and non-negative"
        );
        MismatchModel {
            sigma_rel,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// An ideal sampler that never produces mismatch (sigma = 0).
    pub fn ideal() -> Self {
        MismatchModel::new(0.0, 0)
    }

    /// Relative sigma this sampler was built with.
    pub fn sigma_rel(&self) -> f64 {
        self.sigma_rel
    }

    /// Seed this sampler was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws one standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws a relative error `1 + σ·N(0,1)`, clamped to stay positive.
    pub fn relative_error(&mut self) -> f64 {
        (1.0 + self.sigma_rel * self.standard_normal()).max(1e-6)
    }

    /// Samples an actual ratio for a nominal matched-device ratio.
    ///
    /// Larger ratios are built from more unit devices, so their relative
    /// error shrinks as `1/√ratio` (unit errors average out).
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive.
    pub fn ratio(&mut self, nominal: f64) -> f64 {
        assert!(nominal > 0.0, "nominal ratio must be positive");
        let sigma_eff = self.sigma_rel / nominal.sqrt();
        nominal * (1.0 + sigma_eff * self.standard_normal()).max(1e-6)
    }

    /// Samples an absolute offset voltage with the given sigma in volts
    /// (comparator/opamp input offsets).
    pub fn offset_voltage(&mut self, sigma_v: f64) -> f64 {
        sigma_v * self.standard_normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sampler_returns_exact_values() {
        let mut m = MismatchModel::ideal();
        assert_eq!(m.relative_error(), 1.0);
        assert_eq!(m.ratio(8.0), 8.0);
        assert_eq!(m.offset_voltage(0.0), 0.0);
    }

    #[test]
    fn same_seed_reproduces_same_die() {
        let mut a = MismatchModel::new(0.01, 7);
        let mut b = MismatchModel::new(0.01, 7);
        for _ in 0..32 {
            assert_eq!(a.relative_error(), b.relative_error());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MismatchModel::new(0.01, 1);
        let mut b = MismatchModel::new(0.01, 2);
        let same = (0..16).all(|_| a.relative_error() == b.relative_error());
        assert!(!same);
    }

    #[test]
    fn standard_normal_moments() {
        let mut m = MismatchModel::new(1.0, 99);
        let xs: Vec<f64> = (0..20_000).map(|_| m.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ratio_error_shrinks_with_nominal() {
        // Empirical sigma of ratio/nominal should scale ~ 1/sqrt(nominal).
        let spread = |nominal: f64| {
            let mut m = MismatchModel::new(0.05, 1234);
            let xs: Vec<f64> = (0..5000)
                .map(|_| m.ratio(nominal) / nominal - 1.0)
                .collect();
            (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s1 = spread(1.0);
        let s16 = spread(16.0);
        assert!((s1 / s16 - 4.0).abs() < 0.5, "s1 {s1}, s16 {s16}");
    }

    #[test]
    fn relative_error_never_non_positive() {
        let mut m = MismatchModel::new(5.0, 3); // absurd sigma
        for _ in 0..1000 {
            assert!(m.relative_error() > 0.0);
        }
    }

    #[test]
    fn accessors_round_trip() {
        let m = MismatchModel::new(0.02, 55);
        assert_eq!(m.sigma_rel(), 0.02);
        assert_eq!(m.seed(), 55);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_sigma() {
        let _ = MismatchModel::new(-0.1, 0);
    }
}
