//! Behavioral negative charge pump.
//!
//! Fig 11 of the paper biases the bulk-switch node `Nbulk` below ground with
//! a negative charge pump so the output NMOS stays off while the pin swings
//! negative. This behavioral model captures the pieces that matter to the
//! pad analysis: target voltage, output impedance, ripple and the fact that
//! the pump only works while the chip is supplied.

/// Behavioral negative charge pump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeChargePump {
    v_target: f64,
    r_out: f64,
    ripple_pp: f64,
    clock_hz: f64,
    enabled: bool,
}

impl NegativeChargePump {
    /// Creates a pump regulating to `v_target` volts (must be negative) with
    /// output resistance `r_out` ohms, peak-to-peak `ripple_pp` volts at
    /// pump clock `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics unless `v_target < 0`, `r_out > 0`, `ripple_pp >= 0` and
    /// `clock_hz > 0`.
    pub fn new(v_target: f64, r_out: f64, ripple_pp: f64, clock_hz: f64) -> Self {
        assert!(v_target < 0.0, "negative pump target must be negative");
        assert!(r_out > 0.0, "output resistance must be positive");
        assert!(ripple_pp >= 0.0, "ripple must be non-negative");
        assert!(clock_hz > 0.0, "clock must be positive");
        NegativeChargePump {
            v_target,
            r_out,
            ripple_pp,
            clock_hz,
            enabled: true,
        }
    }

    /// A typical on-chip pump: −1.5 V target, 50 kΩ output, 20 mV ripple at
    /// 10 MHz.
    pub fn typical() -> Self {
        NegativeChargePump::new(-1.5, 50e3, 0.02, 10e6)
    }

    /// Enables or disables the pump (disabled when the supply is lost).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the pump is running.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Regulation target in volts.
    pub fn v_target(&self) -> f64 {
        self.v_target
    }

    /// Output voltage at time `t` while sourcing `i_load` amperes
    /// (conventional current *out of* the pump node, i.e. a positive load
    /// pulls the node up).
    ///
    /// When disabled the pump presents a high-impedance node that floats to
    /// 0 V (its reservoir discharges); callers model any residual charge
    /// themselves.
    pub fn voltage(&self, t: f64, i_load: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let ripple = 0.5 * self.ripple_pp * (2.0 * std::f64::consts::PI * self.clock_hz * t).sin();
        self.v_target + self.r_out * i_load + ripple
    }
}

impl Default for NegativeChargePump {
    fn default() -> Self {
        NegativeChargePump::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_pump_sits_at_target() {
        let p = NegativeChargePump::typical();
        let v = p.voltage(0.0, 0.0);
        assert!((v - (-1.5)).abs() < 0.011); // within half ripple
    }

    #[test]
    fn load_current_droops_voltage_toward_zero() {
        let p = NegativeChargePump::typical();
        let v = p.voltage(0.0, 10e-6);
        assert!(v > -1.5 && v < 0.0, "drooped to {v}");
        assert!((v - (-1.0)).abs() < 0.011); // -1.5 + 50k * 10u = -1.0
    }

    #[test]
    fn ripple_bounded_by_spec() {
        let p = NegativeChargePump::typical();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..1000 {
            let v = p.voltage(i as f64 * 1e-9, 0.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!((hi - lo) <= 0.02 + 1e-12, "ripple {}", hi - lo);
    }

    #[test]
    fn disabled_pump_floats_to_zero() {
        let mut p = NegativeChargePump::typical();
        p.set_enabled(false);
        assert!(!p.is_enabled());
        assert_eq!(p.voltage(1.0, 5e-6), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be negative")]
    fn rejects_positive_target() {
        let _ = NegativeChargePump::new(1.0, 1e3, 0.0, 1e6);
    }
}
