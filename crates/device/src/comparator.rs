//! Behavioral comparators.
//!
//! Two flavors used by the paper's driver:
//!
//! - [`Comparator`] — the *fast* comparator between LC1 and LC2 whose output
//!   is the recovered clock for the missing-oscillation time-out (§7). It
//!   has input offset, hysteresis and a propagation delay.
//! - [`WindowComparator`] — the amplitude-regulation window (§4): reports
//!   whether the filtered amplitude is below, inside or above [low, high].

/// Output state of a [`WindowComparator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowState {
    /// Input below the lower threshold — the loop must increase amplitude.
    Below,
    /// Input inside the window — hold.
    Inside,
    /// Input above the upper threshold — the loop must decrease amplitude.
    Above,
}

impl std::fmt::Display for WindowState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowState::Below => write!(f, "below"),
            WindowState::Inside => write!(f, "inside"),
            WindowState::Above => write!(f, "above"),
        }
    }
}

/// Latching comparator with input offset, hysteresis and propagation delay.
///
/// Discrete-time: call [`Comparator::update`] once per simulation step with
/// the differential input and the step size.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    offset: f64,
    hysteresis: f64,
    delay: f64,
    output: bool,
    pending: Option<(bool, f64)>,
}

impl Comparator {
    /// Creates a comparator with input-referred `offset` (volts), total
    /// `hysteresis` (volts, centered on the trip point) and propagation
    /// `delay` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` or `delay` is negative.
    pub fn new(offset: f64, hysteresis: f64, delay: f64) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(delay >= 0.0, "delay must be non-negative");
        Comparator {
            offset,
            hysteresis,
            delay,
            output: false,
            pending: None,
        }
    }

    /// An ideal comparator: no offset, no hysteresis, no delay.
    pub fn ideal() -> Self {
        Comparator::new(0.0, 0.0, 0.0)
    }

    /// Current output.
    pub fn output(&self) -> bool {
        self.output
    }

    /// Advances the comparator by `dt` seconds with differential input
    /// `v_diff` and returns the (possibly delayed) output.
    pub fn update(&mut self, v_diff: f64, dt: f64) -> bool {
        let v = v_diff - self.offset;
        let half = 0.5 * self.hysteresis;
        // Decision with hysteresis around the current *decided* level.
        let decided = match self.pending {
            Some((level, _)) => level,
            None => self.output,
        };
        let new_level = if decided { v > -half } else { v > half };

        if new_level != decided {
            // Schedule a transition after the propagation delay.
            self.pending = Some((new_level, self.delay));
        }
        if let Some((level, remaining)) = self.pending {
            let remaining = remaining - dt;
            if remaining <= 0.0 {
                self.output = level;
                self.pending = None;
            } else {
                self.pending = Some((level, remaining));
            }
        }
        self.output
    }
}

/// Window comparator for the amplitude-regulation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowComparator {
    low: f64,
    high: f64,
}

impl WindowComparator {
    /// Creates a window `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics unless `high > low`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(high > low, "window must have high > low");
        WindowComparator { low, high }
    }

    /// Creates a window centered on `target` with total relative width
    /// `rel_width` (e.g. `0.15` for ±7.5 %).
    ///
    /// # Panics
    ///
    /// Panics unless `target > 0` and `rel_width > 0`.
    pub fn centered(target: f64, rel_width: f64) -> Self {
        assert!(target > 0.0, "target must be positive");
        assert!(rel_width > 0.0, "relative width must be positive");
        let half = 0.5 * rel_width * target;
        WindowComparator::new(target - half, target + half)
    }

    /// Lower threshold.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper threshold.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Window width relative to its center.
    pub fn relative_width(&self) -> f64 {
        (self.high - self.low) / (0.5 * (self.high + self.low))
    }

    /// Classifies an input against the window.
    pub fn classify(&self, v: f64) -> WindowState {
        if v < self.low {
            WindowState::Below
        } else if v > self.high {
            WindowState::Above
        } else {
            WindowState::Inside
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_follows_sign() {
        let mut c = Comparator::ideal();
        assert!(c.update(1.0, 1e-9));
        assert!(!c.update(-1.0, 1e-9));
        assert!(c.update(0.5, 1e-9));
    }

    #[test]
    fn offset_shifts_trip_point() {
        let mut c = Comparator::new(0.1, 0.0, 0.0);
        assert!(!c.update(0.05, 1e-9));
        assert!(c.update(0.15, 1e-9));
    }

    #[test]
    fn hysteresis_rejects_small_wiggle() {
        let mut c = Comparator::new(0.0, 0.2, 0.0);
        // From low state, must exceed +0.1 to trip high.
        assert!(!c.update(0.05, 1e-9));
        assert!(c.update(0.15, 1e-9));
        // From high state, must fall below -0.1 to trip low.
        assert!(c.update(-0.05, 1e-9));
        assert!(!c.update(-0.15, 1e-9));
    }

    #[test]
    fn propagation_delay_postpones_edge() {
        let mut c = Comparator::new(0.0, 0.0, 10e-9);
        // Input steps high; output should lag by ~10 ns.
        assert!(!c.update(1.0, 4e-9));
        assert!(!c.update(1.0, 4e-9));
        assert!(c.update(1.0, 4e-9)); // 12 ns elapsed
    }

    #[test]
    fn delayed_glitch_can_cancel() {
        let mut c = Comparator::new(0.0, 0.0, 10e-9);
        c.update(1.0, 2e-9); // schedule rise
        c.update(-1.0, 2e-9); // input returns low: schedule replaced by low
        for _ in 0..10 {
            assert!(!c.update(-1.0, 2e-9));
        }
    }

    #[test]
    fn comparator_as_clock_recovery() {
        // A sine through the comparator yields one rising edge per period.
        let mut c = Comparator::new(0.0, 0.05, 0.0);
        let fs = 100.0e6;
        let f = 3.0e6;
        let mut edges = 0;
        let mut prev = false;
        for i in 0..(fs / f) as usize * 10 {
            let v = (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin();
            let out = c.update(v, 1.0 / fs);
            if out && !prev {
                edges += 1;
            }
            prev = out;
        }
        assert_eq!(edges, 10);
    }

    #[test]
    fn window_classification() {
        let w = WindowComparator::new(1.0, 2.0);
        assert_eq!(w.classify(0.5), WindowState::Below);
        assert_eq!(w.classify(1.5), WindowState::Inside);
        assert_eq!(w.classify(2.5), WindowState::Above);
        assert_eq!(w.classify(1.0), WindowState::Inside); // inclusive edges
        assert_eq!(w.classify(2.0), WindowState::Inside);
    }

    #[test]
    fn centered_window_width() {
        let w = WindowComparator::centered(2.0, 0.15);
        assert!((w.low() - 1.85).abs() < 1e-12);
        assert!((w.high() - 2.15).abs() < 1e-12);
        assert!((w.relative_width() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn window_state_display() {
        assert_eq!(WindowState::Below.to_string(), "below");
        assert_eq!(WindowState::Inside.to_string(), "inside");
        assert_eq!(WindowState::Above.to_string(), "above");
    }

    #[test]
    #[should_panic(expected = "high > low")]
    fn window_rejects_inverted_bounds() {
        let _ = WindowComparator::new(2.0, 1.0);
    }
}
