//! Process corners and temperature scaling.
//!
//! A DATE'05-era automotive part is verified across process corners and
//! −40…125 °C. [`ProcessParams`] produces consistently skewed device
//! parameters so the same netlists can be re-run per corner (used by the
//! FMEA and ablation benches).

use crate::mos::{MosModel, Polarity};

/// Classic five process corners (NMOS/PMOS speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Typical/typical.
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All five corners, for exhaustive sweeps.
    pub const ALL: [Corner; 5] = [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf];

    /// Mobility / threshold skew factors `(n_fast, p_fast)` for this corner;
    /// `+1.0` means fast, `-1.0` slow, `0.0` typical.
    fn skews(self) -> (f64, f64) {
        match self {
            Corner::Tt => (0.0, 0.0),
            Corner::Ff => (1.0, 1.0),
            Corner::Ss => (-1.0, -1.0),
            Corner::Fs => (1.0, -1.0),
            Corner::Sf => (-1.0, 1.0),
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        };
        write!(f, "{s}")
    }
}

/// A process/temperature operating condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    corner: Corner,
    temp_k: f64,
    /// ±3σ kp spread at a fast/slow corner (relative).
    kp_spread: f64,
    /// ±3σ vth spread at a fast/slow corner (volts).
    vth_spread: f64,
}

impl ProcessParams {
    /// Creates a condition at the given corner and temperature (kelvin) with
    /// default 0.35 µm spreads (±12 % kp, ±60 mV vth at the corners).
    ///
    /// # Panics
    ///
    /// Panics if `temp_k` is not positive.
    pub fn new(corner: Corner, temp_k: f64) -> Self {
        assert!(temp_k > 0.0, "temperature must be positive kelvin");
        ProcessParams {
            corner,
            temp_k,
            kp_spread: 0.12,
            vth_spread: 0.06,
        }
    }

    /// Typical condition: TT corner at 300 K.
    pub fn nominal() -> Self {
        ProcessParams::new(Corner::Tt, 300.0)
    }

    /// The corner.
    pub fn corner(&self) -> Corner {
        self.corner
    }

    /// The temperature in kelvin.
    pub fn temp_k(&self) -> f64 {
        self.temp_k
    }

    /// Applies this condition to a base (TT, 300 K) MOS model.
    ///
    /// Fast devices get more `kp` and less `vth`; temperature degrades
    /// mobility as `(T/300)^-1.5` and reduces `vth` by ~1 mV/K.
    pub fn apply(&self, base: &MosModel) -> MosModel {
        let (n_fast, p_fast) = self.corner.skews();
        let skew = match base.polarity() {
            Polarity::N => n_fast,
            Polarity::P => p_fast,
        };
        let t_ratio = self.temp_k / 300.0;
        let kp = base.kp() * (1.0 + skew * self.kp_spread) * t_ratio.powf(-1.5);
        let vth = (base.vth() - skew * self.vth_spread - 1.0e-3 * (self.temp_k - 300.0)).max(0.0);
        MosModel::new(base.polarity(), kp, vth, 1.35, 0.03)
    }
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity_on_kp_and_vth() {
        let base = MosModel::nmos_035um();
        let m = ProcessParams::nominal().apply(&base);
        assert!((m.kp() / base.kp() - 1.0).abs() < 1e-12);
        assert!((m.vth() - base.vth()).abs() < 1e-12);
    }

    #[test]
    fn ff_corner_is_faster_than_ss() {
        let base = MosModel::nmos_035um();
        let ff = ProcessParams::new(Corner::Ff, 300.0).apply(&base);
        let ss = ProcessParams::new(Corner::Ss, 300.0).apply(&base);
        assert!(ff.kp() > ss.kp());
        assert!(ff.vth() < ss.vth());
        // Drive current ordering at a fixed bias.
        let iff = ff.evaluate(1.5, 2.0).id;
        let iss = ss.evaluate(1.5, 2.0).id;
        assert!(iff > iss);
    }

    #[test]
    fn fs_skews_devices_oppositely() {
        let cond = ProcessParams::new(Corner::Fs, 300.0);
        let n = cond.apply(&MosModel::nmos_035um());
        let p = cond.apply(&MosModel::pmos_035um());
        assert!(n.kp() > MosModel::nmos_035um().kp());
        assert!(p.kp() < MosModel::pmos_035um().kp());
    }

    #[test]
    fn hot_device_is_weaker() {
        let base = MosModel::nmos_035um();
        let hot = ProcessParams::new(Corner::Tt, 398.15).apply(&base); // 125 C
        assert!(hot.kp() < base.kp());
        assert!(hot.vth() < base.vth());
    }

    #[test]
    fn all_corners_iterates_five() {
        assert_eq!(Corner::ALL.len(), 5);
        let labels: Vec<String> = Corner::ALL.iter().map(Corner::to_string).collect();
        assert_eq!(labels, ["TT", "FF", "SS", "FS", "SF"]);
    }

    #[test]
    fn vth_never_negative() {
        let cond = ProcessParams::new(Corner::Ff, 500.0);
        let m = cond.apply(&MosModel::nmos_035um().with_vth(0.1));
        assert!(m.vth() >= 0.0);
    }
}
