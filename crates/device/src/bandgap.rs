//! Behavioral bandgap voltage reference.
//!
//! The paper derives the window-comparator thresholds VR3/VR4 by adding a
//! fraction of the bandgap voltage V_BG to the filtered LC mid-point VR1
//! (Fig 8). This model supplies V_BG with the classic parabolic temperature
//! curvature and an optional trim error.

/// Bandgap reference with second-order temperature curvature:
/// `V(T) = V_nom · (1 + trim) − tc2 · (T − T_peak)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandgap {
    v_nominal: f64,
    t_peak_k: f64,
    tc2: f64,
    trim: f64,
}

impl Default for Bandgap {
    fn default() -> Self {
        Bandgap::new(1.205, 320.0, 2.0e-6)
    }
}

impl Bandgap {
    /// Creates a reference with nominal voltage `v_nominal` (volts), flat
    /// point at `t_peak_k` (kelvin) and curvature `tc2` (V/K²).
    ///
    /// # Panics
    ///
    /// Panics unless `v_nominal > 0`, `t_peak_k > 0` and `tc2 >= 0`.
    pub fn new(v_nominal: f64, t_peak_k: f64, tc2: f64) -> Self {
        assert!(v_nominal > 0.0, "nominal voltage must be positive");
        assert!(t_peak_k > 0.0, "peak temperature must be positive");
        assert!(tc2 >= 0.0, "curvature must be non-negative");
        Bandgap {
            v_nominal,
            t_peak_k,
            tc2,
            trim: 0.0,
        }
    }

    /// Returns a copy with a relative trim error (e.g. `0.002` for +0.2 %).
    pub fn with_trim_error(mut self, trim: f64) -> Self {
        self.trim = trim;
        self
    }

    /// Output voltage at temperature `temp_k` kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `temp_k` is not positive.
    pub fn voltage(&self, temp_k: f64) -> f64 {
        assert!(temp_k > 0.0, "temperature must be positive kelvin");
        let dt = temp_k - self.t_peak_k;
        self.v_nominal * (1.0 + self.trim) - self.tc2 * dt * dt
    }

    /// Output voltage at the reference temperature 300 K.
    pub fn voltage_300k(&self) -> f64 {
        self.voltage(300.0)
    }

    /// Nominal (trim-free, curvature-free) voltage.
    pub fn v_nominal(&self) -> f64 {
        self.v_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_near_1v2() {
        let bg = Bandgap::default();
        let v = bg.voltage_300k();
        assert!((1.19..1.21).contains(&v), "bandgap {v}");
    }

    #[test]
    fn flat_at_peak_temperature() {
        let bg = Bandgap::default();
        let v_peak = bg.voltage(320.0);
        assert!(v_peak >= bg.voltage(300.0));
        assert!(v_peak >= bg.voltage(340.0));
        assert_eq!(v_peak, bg.v_nominal());
    }

    #[test]
    fn curvature_symmetric_around_peak() {
        let bg = Bandgap::default();
        let lo = bg.voltage(320.0 - 50.0);
        let hi = bg.voltage(320.0 + 50.0);
        assert!((lo - hi).abs() < 1e-12);
    }

    #[test]
    fn automotive_range_drift_is_small() {
        // -40 C .. 125 C automotive range.
        let bg = Bandgap::default();
        let vs: Vec<f64> = [233.15, 273.15, 300.0, 358.15, 398.15]
            .iter()
            .map(|&t| bg.voltage(t))
            .collect();
        let span = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(span / bg.v_nominal() < 0.02, "drift {span}");
    }

    #[test]
    fn trim_error_shifts_output() {
        let bg = Bandgap::default().with_trim_error(0.01);
        assert!((bg.voltage(320.0) / 1.205 - 1.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_temperature() {
        let _ = Bandgap::default().voltage(0.0);
    }
}
