//! Smooth EKV-style behavioral MOSFET.
//!
//! The model interpolates continuously between subthreshold (exponential)
//! and strong inversion (square law) and is symmetric in drain/source, which
//! keeps Newton iterations stable in the pad-driver netlists where terminals
//! swap roles as the pin swings around a floating supply (paper §8).
//!
//! Bulk is an explicit reference: all terminal voltages passed to
//! [`MosModel::evaluate_4t`] are *relative to bulk*, so the bulk-switched
//! output stage of Fig 11 (node `Nbulk`) can be modeled directly. Body
//! diodes are *not* included here — netlists add them explicitly with
//! [`crate::diode::DiodeModel`] so their placement is visible in the
//! topology, exactly where Fig 10 draws them.

use crate::thermal_voltage;

/// MOS channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device.
    N,
    /// P-channel device.
    P,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::N => write!(f, "nmos"),
            Polarity::P => write!(f, "pmos"),
        }
    }
}

/// Operating point returned by the model: drain current and the small-signal
/// conductances needed for MNA stamping.
///
/// Sign convention: `id` is the current flowing **into the drain and out of
/// the source** (negative for a conducting PMOS). The conductances are the
/// partial derivatives of `id` with respect to the gate, drain and source
/// voltages (bulk held fixed).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosOperatingPoint {
    /// Drain current in amperes.
    pub id: f64,
    /// ∂id/∂vg in siemens.
    pub gm: f64,
    /// ∂id/∂vd in siemens.
    pub gds: f64,
    /// ∂id/∂vs in siemens.
    pub gms: f64,
}

/// EKV-style large-signal MOSFET model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    polarity: Polarity,
    /// Transconductance factor µCox·W/L in A/V².
    kp: f64,
    /// Threshold voltage magnitude in volts.
    vth: f64,
    /// Subthreshold slope factor (typically 1.2–1.6).
    n: f64,
    /// Channel-length modulation in 1/V.
    lambda: f64,
    temp_k: f64,
}

impl MosModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `kp > 0`, `vth >= 0`, `n >= 1` and `lambda >= 0`.
    pub fn new(polarity: Polarity, kp: f64, vth: f64, n: f64, lambda: f64) -> Self {
        assert!(kp > 0.0, "kp must be positive");
        assert!(vth >= 0.0, "vth must be non-negative");
        assert!(n >= 1.0, "slope factor must be >= 1");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        MosModel {
            polarity,
            kp,
            vth,
            n,
            lambda,
            temp_k: 300.0,
        }
    }

    /// Typical NMOS of the paper's 0.35 µm process, W/L = 10.
    pub fn nmos_035um() -> Self {
        MosModel::new(Polarity::N, 1.7e-3, 0.60, 1.35, 0.03)
    }

    /// Typical PMOS of the paper's 0.35 µm process, W/L = 10.
    pub fn pmos_035um() -> Self {
        MosModel::new(Polarity::P, 5.8e-4, 0.65, 1.40, 0.04)
    }

    /// Returns a copy scaled to a different W/L multiple of the base device.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.kp *= factor;
        self
    }

    /// Returns a copy with a different threshold voltage magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `vth` is negative.
    pub fn with_vth(mut self, vth: f64) -> Self {
        assert!(vth >= 0.0, "vth must be non-negative");
        self.vth = vth;
        self
    }

    /// Returns a copy with a different channel-length modulation.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        self.lambda = lambda;
        self
    }

    /// Channel polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Threshold voltage magnitude in volts.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Transconductance factor in A/V².
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// Subthreshold slope factor.
    pub fn slope_factor(&self) -> f64 {
        self.n
    }

    /// Channel-length modulation in 1/V.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Specific current `2 n kp Vt²` of the EKV formulation.
    pub fn i_spec(&self) -> f64 {
        let vt = thermal_voltage(self.temp_k);
        2.0 * self.n * self.kp * vt * vt
    }

    /// Evaluates the device with source tied to bulk (3-terminal use):
    /// `vgs` and `vds` are gate and drain voltages relative to source/bulk.
    pub fn evaluate(&self, vgs: f64, vds: f64) -> MosOperatingPoint {
        self.evaluate_4t(vgs, vds, 0.0)
    }

    /// Evaluates the device with all terminal voltages relative to **bulk**:
    /// `vg`, `vd`, `vs` are gate, drain and source potentials minus the bulk
    /// potential.
    pub fn evaluate_4t(&self, vg: f64, vd: f64, vs: f64) -> MosOperatingPoint {
        match self.polarity {
            Polarity::N => self.evaluate_n(vg, vd, vs),
            Polarity::P => {
                // A PMOS is the N-equation with all voltages mirrored; the
                // resulting current flows the other way.
                let op = self.evaluate_n(-vg, -vd, -vs);
                MosOperatingPoint {
                    id: -op.id,
                    // d(-id')/dvg = -d id'/d vg' · (-1) = +d id'/d vg'
                    gm: op.gm,
                    gds: op.gds,
                    gms: op.gms,
                }
            }
        }
    }

    fn evaluate_n(&self, vg: f64, vd: f64, vs: f64) -> MosOperatingPoint {
        let vt = thermal_voltage(self.temp_k);
        let ispec = self.i_spec();
        let vp = (vg - self.vth) / self.n;
        let us = (vp - vs) / vt;
        let ud = (vp - vd) / vt;

        let (f_s, fp_s) = ekv_f(us);
        let (f_d, fp_d) = ekv_f(ud);

        let id0 = ispec * (f_s - f_d);
        let vds = vd - vs;
        let m = 1.0 + self.lambda * vds.abs();
        let id = id0 * m;

        // Partials of id0.
        let di0_dvg = ispec * (fp_s - fp_d) / (self.n * vt);
        let di0_dvd = ispec * fp_d / vt;
        let di0_dvs = -ispec * fp_s / vt;
        // Partials of m (sign of vds; flat at exactly zero).
        let dm = self.lambda
            * if vds > 0.0 {
                1.0
            } else if vds < 0.0 {
                -1.0
            } else {
                0.0
            };

        MosOperatingPoint {
            id,
            gm: di0_dvg * m,
            gds: di0_dvd * m + id0 * dm,
            gms: di0_dvs * m - id0 * dm,
        }
    }
}

/// EKV interpolation function `F(x) = ln²(1 + e^(x/2))` and its derivative,
/// computed overflow-safely.
fn ekv_f(x: f64) -> (f64, f64) {
    let half = 0.5 * x;
    // softplus(half) = ln(1 + e^half)
    let sp = if half > 40.0 {
        half
    } else if half < -40.0 {
        half.exp()
    } else {
        half.exp().ln_1p()
    };
    // sigmoid(half) = 1 / (1 + e^-half)
    let sg = if half > 40.0 {
        1.0
    } else if half < -40.0 {
        half.exp()
    } else {
        1.0 / (1.0 + (-half).exp())
    };
    (sp * sp, sp * sg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_device_leaks_subthreshold_only() {
        let m = MosModel::nmos_035um();
        let op = m.evaluate(0.0, 3.0);
        assert!(op.id > 0.0, "subthreshold current must be positive");
        assert!(op.id < 1e-8, "off leakage too large: {}", op.id);
    }

    #[test]
    fn strong_inversion_follows_square_law_shape() {
        let m = MosModel::nmos_035um().with_lambda(0.0);
        // In saturation, Id ~ (Vgs - Vth)²: quadrupling the overdrive should
        // roughly 4x... doubling overdrive -> ~4x current.
        let i1 = m.evaluate(1.1, 3.0).id; // overdrive 0.5
        let i2 = m.evaluate(1.6, 3.0).id; // overdrive 1.0
        let ratio = i2 / i1;
        assert!((3.2..4.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn triode_current_grows_with_vds() {
        let m = MosModel::nmos_035um();
        let lo = m.evaluate(2.0, 0.1).id;
        let hi = m.evaluate(2.0, 0.3).id;
        assert!(hi > lo * 2.0, "triode region should be ohmic-ish");
    }

    #[test]
    fn saturation_current_nearly_flat_without_lambda() {
        let m = MosModel::nmos_035um().with_lambda(0.0);
        let a = m.evaluate(1.5, 2.0).id;
        let b = m.evaluate(1.5, 3.0).id;
        assert!((b / a - 1.0).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn lambda_gives_finite_output_conductance() {
        let m = MosModel::nmos_035um();
        let op = m.evaluate(1.5, 2.5);
        assert!(op.gds > 0.0);
    }

    #[test]
    fn source_drain_symmetry() {
        let m = MosModel::nmos_035um().with_lambda(0.0);
        // Swapping drain and source negates the current.
        let fwd = m.evaluate_4t(2.0, 1.0, 0.2).id;
        let rev = m.evaluate_4t(2.0, 0.2, 1.0).id;
        assert!(
            (fwd + rev).abs() < 1e-15 * fwd.abs().max(1.0),
            "{fwd} vs {rev}"
        );
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let m = MosModel::pmos_035um();
        // Source at bulk (= Vdd in a real circuit), gate pulled low.
        let op = m.evaluate_4t(-1.5, -1.0, 0.0);
        assert!(
            op.id < -1e-5,
            "pmos drain current should be negative: {}",
            op.id
        );
    }

    #[test]
    fn pmos_off_when_gate_at_source() {
        let m = MosModel::pmos_035um();
        let op = m.evaluate_4t(0.0, -2.0, 0.0);
        assert!(op.id.abs() < 1e-8);
    }

    #[test]
    fn gm_matches_numeric_derivative() {
        let m = MosModel::nmos_035um();
        let h = 1e-6;
        for (vg, vd, vs) in [(1.2, 2.0, 0.0), (0.7, 0.2, 0.0), (1.8, 0.5, 0.3)] {
            let op = m.evaluate_4t(vg, vd, vs);
            let num =
                (m.evaluate_4t(vg + h, vd, vs).id - m.evaluate_4t(vg - h, vd, vs).id) / (2.0 * h);
            assert!(
                (op.gm - num).abs() <= 1e-5 * num.abs().max(1e-12),
                "gm {} vs {num} at ({vg},{vd},{vs})",
                op.gm
            );
        }
    }

    #[test]
    fn gds_matches_numeric_derivative() {
        let m = MosModel::nmos_035um();
        let h = 1e-6;
        for (vg, vd, vs) in [(1.2, 2.0, 0.0), (1.8, 0.5, 0.3)] {
            let op = m.evaluate_4t(vg, vd, vs);
            let num =
                (m.evaluate_4t(vg, vd + h, vs).id - m.evaluate_4t(vg, vd - h, vs).id) / (2.0 * h);
            assert!(
                (op.gds - num).abs() <= 1e-4 * num.abs().max(1e-12),
                "gds {} vs {num}",
                op.gds
            );
        }
    }

    #[test]
    fn gms_matches_numeric_derivative() {
        let m = MosModel::nmos_035um();
        let h = 1e-6;
        let (vg, vd, vs) = (1.5, 2.0, 0.4);
        let op = m.evaluate_4t(vg, vd, vs);
        let num = (m.evaluate_4t(vg, vd, vs + h).id - m.evaluate_4t(vg, vd, vs - h).id) / (2.0 * h);
        assert!((op.gms - num).abs() <= 1e-4 * num.abs().max(1e-12));
    }

    #[test]
    fn pmos_derivatives_match_numeric() {
        let m = MosModel::pmos_035um();
        let h = 1e-6;
        let (vg, vd, vs) = (-1.5, -2.0, 0.0);
        let op = m.evaluate_4t(vg, vd, vs);
        let gm_num =
            (m.evaluate_4t(vg + h, vd, vs).id - m.evaluate_4t(vg - h, vd, vs).id) / (2.0 * h);
        let gds_num =
            (m.evaluate_4t(vg, vd + h, vs).id - m.evaluate_4t(vg, vd - h, vs).id) / (2.0 * h);
        assert!((op.gm - gm_num).abs() <= 1e-4 * gm_num.abs().max(1e-12));
        assert!((op.gds - gds_num).abs() <= 1e-4 * gds_num.abs().max(1e-12));
    }

    #[test]
    fn scaled_device_scales_current() {
        let m = MosModel::nmos_035um().with_lambda(0.0);
        let big = m.scaled(4.0);
        let i1 = m.evaluate(1.5, 2.0).id;
        let i4 = big.evaluate(1.5, 2.0).id;
        assert!((i4 / i1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_overflow_at_extreme_bias() {
        let m = MosModel::nmos_035um();
        let op = m.evaluate_4t(100.0, 100.0, -100.0);
        assert!(op.id.is_finite() && op.gm.is_finite());
        let op2 = m.evaluate_4t(-100.0, 100.0, 0.0);
        assert!(op2.id.is_finite());
    }

    #[test]
    fn ekv_f_limits() {
        // Large x: F -> (x/2)², strong inversion.
        let (f, _) = ekv_f(100.0);
        assert!((f - 2500.0).abs() / 2500.0 < 1e-9);
        // Very negative x: F -> e^(x/2) (vanishing), weak inversion.
        let (f, fp) = ekv_f(-100.0);
        assert!((0.0..1e-21).contains(&f));
        assert!(fp >= 0.0);
    }

    #[test]
    fn polarity_display() {
        assert_eq!(Polarity::N.to_string(), "nmos");
        assert_eq!(Polarity::P.to_string(), "pmos");
    }

    #[test]
    #[should_panic(expected = "kp must be positive")]
    fn new_rejects_bad_kp() {
        let _ = MosModel::new(Polarity::N, 0.0, 0.5, 1.3, 0.0);
    }
}
