//! # lcosc-device — behavioral device models
//!
//! Device-level building blocks for the `lcosc` reproduction of the DATE'05
//! LC oscillator driver: a smooth EKV-style MOSFET, a Shockley diode with
//! junction limiting, ratioed current mirrors with mismatch, and the
//! supporting blocks the paper's driver relies on (bandgap reference, window
//! comparator, negative charge pump, power-on reset).
//!
//! The models are *behavioral*: first-order physics chosen so the circuit
//! simulator reproduces the qualitative shapes the paper measures (diode
//! knees, subthreshold leakage, mirror ratio errors) without a full BSIM
//! parameter set, which would add nothing at this abstraction level.
//!
//! ## Example
//!
//! ```
//! use lcosc_device::mos::{MosModel, Polarity};
//!
//! let nmos = MosModel::nmos_035um();
//! let op = nmos.evaluate(1.5, 1.8); // vgs = 1.5 V, vds = 1.8 V
//! assert!(op.id > 0.0);
//! assert!(op.gm > 0.0);
//! assert_eq!(nmos.polarity(), Polarity::N);
//! ```

#![warn(missing_docs)]

pub mod bandgap;
pub mod chargepump;
pub mod comparator;
pub mod diode;
pub mod mirror;
pub mod mismatch;
pub mod mos;
pub mod por;
pub mod process;

pub use bandgap::Bandgap;
pub use chargepump::NegativeChargePump;
pub use comparator::{Comparator, WindowComparator, WindowState};
pub use diode::DiodeModel;
pub use mirror::CurrentMirror;
pub use mismatch::MismatchModel;
pub use mos::{MosModel, MosOperatingPoint, Polarity};
pub use por::PowerOnReset;
pub use process::{Corner, ProcessParams};

/// Thermal voltage kT/q at 300 K in volts.
pub const VT_300K: f64 = 0.025852;

/// Thermal voltage kT/q at the given temperature in kelvin.
///
/// # Panics
///
/// Panics if `temp_k` is not positive.
pub fn thermal_voltage(temp_k: f64) -> f64 {
    assert!(temp_k > 0.0, "temperature must be positive kelvin");
    const K_OVER_Q: f64 = 8.617_333e-5; // V / K
    K_OVER_Q * temp_k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        assert!((thermal_voltage(300.0) - VT_300K).abs() < 1e-4);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        assert!((thermal_voltage(600.0) - 2.0 * thermal_voltage(300.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn thermal_voltage_rejects_zero() {
        let _ = thermal_voltage(0.0);
    }
}
