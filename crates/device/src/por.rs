//! Power-on reset.
//!
//! The paper's startup sequence (§4): POR asserts while the supply is below
//! threshold; on release the regulation code is preset to 105, and a few
//! microseconds later the NVM-stored code takes over. This block models the
//! POR itself: a supply comparator with hysteresis plus a release delay.

/// Behavioral power-on-reset block.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerOnReset {
    v_release: f64,
    v_assert: f64,
    release_delay: f64,
    above_since: Option<f64>,
    in_reset: bool,
}

impl PowerOnReset {
    /// Creates a POR that releases `release_delay` seconds after the supply
    /// rises above `v_release`, and re-asserts immediately when the supply
    /// falls below `v_assert`.
    ///
    /// # Panics
    ///
    /// Panics unless `v_release > v_assert > 0` and `release_delay >= 0`.
    pub fn new(v_release: f64, v_assert: f64, release_delay: f64) -> Self {
        assert!(v_assert > 0.0, "assert threshold must be positive");
        assert!(v_release > v_assert, "release threshold must exceed assert");
        assert!(release_delay >= 0.0, "delay must be non-negative");
        PowerOnReset {
            v_release,
            v_assert,
            release_delay,
            above_since: None,
            in_reset: true,
        }
    }

    /// Typical 3.3 V-supply POR: release at 2.6 V, assert at 2.2 V, 5 µs
    /// delay.
    pub fn typical_3v3() -> Self {
        PowerOnReset::new(2.6, 2.2, 5e-6)
    }

    /// Whether reset is currently asserted.
    pub fn in_reset(&self) -> bool {
        self.in_reset
    }

    /// Advances the POR with the supply voltage at absolute time `t`
    /// seconds; returns `true` while reset is asserted.
    pub fn update(&mut self, t: f64, vdd: f64) -> bool {
        if vdd < self.v_assert {
            self.in_reset = true;
            self.above_since = None;
        } else if vdd > self.v_release {
            let t0 = *self.above_since.get_or_insert(t);
            if t - t0 >= self.release_delay {
                self.in_reset = false;
            }
        }
        // Between the thresholds: hold state (hysteresis).
        self.in_reset
    }
}

impl Default for PowerOnReset {
    fn default() -> Self {
        PowerOnReset::typical_3v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_reset() {
        let p = PowerOnReset::typical_3v3();
        assert!(p.in_reset());
    }

    #[test]
    fn releases_after_delay() {
        let mut p = PowerOnReset::new(2.6, 2.2, 5e-6);
        assert!(p.update(0.0, 3.3));
        assert!(p.update(3e-6, 3.3));
        assert!(!p.update(6e-6, 3.3));
    }

    #[test]
    fn brownout_reasserts_immediately() {
        let mut p = PowerOnReset::new(2.6, 2.2, 0.0);
        p.update(0.0, 3.3);
        assert!(!p.update(1e-6, 3.3));
        assert!(p.update(2e-6, 2.0));
    }

    #[test]
    fn hysteresis_band_holds_state() {
        let mut p = PowerOnReset::new(2.6, 2.2, 0.0);
        p.update(0.0, 3.3);
        assert!(!p.in_reset());
        // 2.4 V is between assert and release: no change.
        assert!(!p.update(1e-6, 2.4));
        // Drop below assert, rise into band: stays reset.
        assert!(p.update(2e-6, 2.0));
        assert!(p.update(3e-6, 2.4));
    }

    #[test]
    fn supply_dip_restarts_delay() {
        let mut p = PowerOnReset::new(2.6, 2.2, 5e-6);
        p.update(0.0, 3.3);
        p.update(4e-6, 2.0); // dip resets the timer
        p.update(5e-6, 3.3);
        assert!(p.update(8e-6, 3.3)); // only 3 µs since re-rise
        assert!(!p.update(11e-6, 3.3));
    }

    #[test]
    #[should_panic(expected = "exceed assert")]
    fn rejects_inverted_thresholds() {
        let _ = PowerOnReset::new(2.0, 2.6, 0.0);
    }
}
