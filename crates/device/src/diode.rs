//! Shockley diode model with junction-voltage limiting.
//!
//! Used for MOSFET bulk (body) junctions and ESD structures. The paper's
//! Fig 10a leakage path — the intrinsic drain–bulk diode of a plain CMOS
//! pad loading the partner oscillator when Vdd floats — is exactly this
//! device.

use crate::thermal_voltage;

/// Large-signal diode: `I = Is (exp(V / (n Vt)) − 1)`, linearized above a
/// critical voltage so Newton iterations cannot overflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current in amperes.
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
    /// Junction temperature in kelvin.
    pub temp_k: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel::new(1e-14, 1.0, 300.0)
    }
}

impl DiodeModel {
    /// Creates a diode model.
    ///
    /// # Panics
    ///
    /// Panics unless `is > 0`, `n > 0` and `temp_k > 0`.
    pub fn new(is: f64, n: f64, temp_k: f64) -> Self {
        assert!(is > 0.0, "saturation current must be positive");
        assert!(n > 0.0, "emission coefficient must be positive");
        DiodeModel { is, n, temp_k }
    }

    /// Typical bulk junction of the 0.35 µm process used by the paper.
    pub fn bulk_junction_035um() -> Self {
        DiodeModel::new(5e-15, 1.05, 300.0)
    }

    /// Effective thermal slope `n * Vt` in volts.
    pub fn n_vt(&self) -> f64 {
        self.n * thermal_voltage(self.temp_k)
    }

    /// Critical voltage above which the exponential is linearized
    /// (SPICE-style limiting).
    pub fn v_crit(&self) -> f64 {
        let nvt = self.n_vt();
        nvt * (nvt / (self.is * std::f64::consts::SQRT_2)).ln()
    }

    /// Diode current at junction voltage `v` (anode minus cathode), with the
    /// exponential continued linearly above [`DiodeModel::v_crit`].
    pub fn current(&self, v: f64) -> f64 {
        let nvt = self.n_vt();
        let vc = self.v_crit();
        if v <= vc {
            self.is * ((v / nvt).exp() - 1.0)
        } else {
            // First-order continuation: I(vc) + g(vc) (v − vc).
            let ic = self.is * ((vc / nvt).exp() - 1.0);
            let gc = self.is / nvt * (vc / nvt).exp();
            ic + gc * (v - vc)
        }
    }

    /// Small-signal conductance `dI/dV` at junction voltage `v`.
    pub fn conductance(&self, v: f64) -> f64 {
        let nvt = self.n_vt();
        let vc = self.v_crit();
        let ve = v.min(vc);
        self.is / nvt * (ve / nvt).exp()
    }

    /// Linearized companion model `(g, i_eq)` for Newton iteration:
    /// the device behaves as a conductance `g` in parallel with a current
    /// source `i_eq` such that `i = g v + i_eq` matches current and slope at
    /// the expansion point `v`.
    pub fn companion(&self, v: f64) -> (f64, f64) {
        let g = self.conductance(v);
        let i = self.current(v);
        (g, i - g * v)
    }

    /// Forward voltage needed to conduct `i` amperes (inverse of
    /// [`DiodeModel::current`] on the exponential branch).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not positive.
    pub fn forward_voltage(&self, i: f64) -> f64 {
        assert!(i > 0.0, "current must be positive");
        self.n_vt() * (i / self.is + 1.0).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_saturation() {
        let d = DiodeModel::default();
        let i = d.current(-5.0);
        assert!((i + d.is).abs() < 1e-20, "reverse current {i}");
    }

    #[test]
    fn zero_bias_zero_current() {
        let d = DiodeModel::default();
        assert_eq!(d.current(0.0), 0.0);
    }

    #[test]
    fn forward_knee_near_0v6() {
        let d = DiodeModel::default();
        let v = d.forward_voltage(1e-3);
        assert!((0.5..0.75).contains(&v), "knee at {v}");
    }

    #[test]
    fn current_is_monotone_increasing() {
        let d = DiodeModel::default();
        let mut prev = d.current(-1.0);
        let mut v = -1.0;
        while v < 1.5 {
            v += 0.01;
            let i = d.current(v);
            assert!(i >= prev, "non-monotone at {v}");
            prev = i;
        }
    }

    #[test]
    fn current_is_finite_at_large_bias() {
        let d = DiodeModel::default();
        assert!(d.current(20.0).is_finite());
        assert!(d.conductance(20.0).is_finite());
    }

    #[test]
    fn continuation_is_c1_at_v_crit() {
        let d = DiodeModel::default();
        let vc = d.v_crit();
        let eps = 1e-9;
        let below = d.current(vc - eps);
        let above = d.current(vc + eps);
        // Continuous value...
        assert!((above - below).abs() < d.conductance(vc) * 3.0 * eps);
        // ...and continuous slope.
        let g_below = (d.current(vc) - d.current(vc - eps)) / eps;
        let g_above = (d.current(vc + eps) - d.current(vc)) / eps;
        assert!((g_above / g_below - 1.0).abs() < 1e-3);
    }

    #[test]
    fn companion_model_reconstructs_current() {
        let d = DiodeModel::default();
        for v in [-1.0, 0.0, 0.3, 0.6, 0.8] {
            let (g, ieq) = d.companion(v);
            assert!((g * v + ieq - d.current(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn conductance_matches_numeric_derivative() {
        let d = DiodeModel::default();
        for v in [0.2, 0.4, 0.55] {
            let h = 1e-7;
            let num = (d.current(v + h) - d.current(v - h)) / (2.0 * h);
            let ana = d.conductance(v);
            assert!((num / ana - 1.0).abs() < 1e-4, "at {v}: {num} vs {ana}");
        }
    }

    #[test]
    fn forward_voltage_inverts_current() {
        let d = DiodeModel::bulk_junction_035um();
        let i = 1e-4;
        let v = d.forward_voltage(i);
        assert!((d.current(v) / i - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_rejects_zero_is() {
        let _ = DiodeModel::new(0.0, 1.0, 300.0);
    }
}
