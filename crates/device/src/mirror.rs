//! Ratioed current mirrors.
//!
//! The paper's current-limitation DAC (Fig 5/6) is built from a prescaler
//! (ratios 1/2/4/8), two fixed mirror banks (16+16+32+64 units) and a 7-bit
//! binary-weighted bank (1..64 units). This module models a mirror leg as a
//! nominal ratio plus sampled mismatch and finite output resistance.

use crate::mismatch::MismatchModel;

/// One output leg of a current mirror: `i_out = ratio · i_ref`, with
/// an optional finite output resistance making the output current depend
/// (weakly) on output voltage headroom.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentMirror {
    nominal: f64,
    actual: f64,
    /// Output conductance per ampere of output current (1/Early voltage).
    g_out_per_amp: f64,
}

impl CurrentMirror {
    /// Creates an ideal mirror leg with the given nominal ratio.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive.
    pub fn ideal(nominal: f64) -> Self {
        assert!(nominal > 0.0, "mirror ratio must be positive");
        CurrentMirror {
            nominal,
            actual: nominal,
            g_out_per_amp: 0.0,
        }
    }

    /// Creates a mirror leg whose actual ratio is drawn from `die`.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive.
    pub fn sampled(nominal: f64, die: &mut MismatchModel) -> Self {
        assert!(nominal > 0.0, "mirror ratio must be positive");
        CurrentMirror {
            nominal,
            actual: die.ratio(nominal),
            g_out_per_amp: 0.0,
        }
    }

    /// Sets the finite output conductance as `1 / V_early` (per amp of
    /// output current), returning the modified leg.
    ///
    /// # Panics
    ///
    /// Panics if `v_early` is not positive.
    pub fn with_early_voltage(mut self, v_early: f64) -> Self {
        assert!(v_early > 0.0, "early voltage must be positive");
        self.g_out_per_amp = 1.0 / v_early;
        self
    }

    /// Nominal design ratio.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Actual (mismatched) ratio.
    pub fn actual(&self) -> f64 {
        self.actual
    }

    /// Relative ratio error `actual/nominal − 1`.
    pub fn ratio_error(&self) -> f64 {
        self.actual / self.nominal - 1.0
    }

    /// Output current for a reference current, ignoring headroom.
    pub fn output(&self, i_ref: f64) -> f64 {
        self.actual * i_ref
    }

    /// Output current including the Early effect: `v_margin` is the voltage
    /// across the output device beyond its saturation point.
    pub fn output_at(&self, i_ref: f64, v_margin: f64) -> f64 {
        let i0 = self.output(i_ref);
        i0 * (1.0 + self.g_out_per_amp * v_margin)
    }
}

/// A bank of binary-weighted mirror legs forming a current DAC:
/// leg `k` has nominal ratio `2^k` and is enabled by bit `k` of the code.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryWeightedBank {
    legs: Vec<CurrentMirror>,
}

impl BinaryWeightedBank {
    /// Creates an ideal bank with `bits` legs (ratios 1, 2, 4, ...).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 16`.
    pub fn ideal(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
        BinaryWeightedBank {
            legs: (0..bits)
                .map(|k| CurrentMirror::ideal((1u32 << k) as f64))
                .collect(),
        }
    }

    /// Creates a mismatched bank sampled from `die`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 16`.
    pub fn sampled(bits: u32, die: &mut MismatchModel) -> Self {
        assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
        BinaryWeightedBank {
            legs: (0..bits)
                .map(|k| CurrentMirror::sampled((1u32 << k) as f64, die))
                .collect(),
        }
    }

    /// Number of legs.
    pub fn bits(&self) -> u32 {
        self.legs.len() as u32
    }

    /// Individual legs, LSB first.
    pub fn legs(&self) -> &[CurrentMirror] {
        &self.legs
    }

    /// Total multiplication for a digital `code` (bit `k` enables leg `k`)
    /// at unit reference current.
    ///
    /// # Panics
    ///
    /// Panics if `code` has bits beyond the bank width.
    pub fn multiplication(&self, code: u32) -> f64 {
        assert!(
            code < (1u32 << self.legs.len()),
            "code {code} exceeds bank width"
        );
        self.legs
            .iter()
            .enumerate()
            .filter(|(k, _)| code & (1 << k) != 0)
            .map(|(_, leg)| leg.actual())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_mirror_scales_exactly() {
        let m = CurrentMirror::ideal(8.0);
        assert_eq!(m.output(12.5e-6), 1e-4);
        assert_eq!(m.ratio_error(), 0.0);
    }

    #[test]
    fn sampled_mirror_is_near_nominal() {
        let mut die = MismatchModel::new(0.01, 11);
        let m = CurrentMirror::sampled(16.0, &mut die);
        assert!(m.ratio_error().abs() < 0.05);
        assert_eq!(m.nominal(), 16.0);
        assert_ne!(m.actual(), 16.0);
    }

    #[test]
    fn early_effect_increases_current_with_margin() {
        let m = CurrentMirror::ideal(1.0).with_early_voltage(20.0);
        let base = m.output_at(1e-3, 0.0);
        let high = m.output_at(1e-3, 2.0);
        assert_eq!(base, 1e-3);
        assert!((high / base - 1.1).abs() < 1e-12);
    }

    #[test]
    fn ideal_bank_reproduces_binary_code() {
        let bank = BinaryWeightedBank::ideal(7);
        for code in 0..128u32 {
            assert_eq!(bank.multiplication(code), code as f64);
        }
    }

    #[test]
    fn sampled_bank_close_to_code() {
        let mut die = MismatchModel::new(0.005, 3);
        let bank = BinaryWeightedBank::sampled(7, &mut die);
        for code in [1u32, 5, 64, 127] {
            let m = bank.multiplication(code);
            assert!((m / code as f64 - 1.0).abs() < 0.05, "code {code}: {m}");
        }
    }

    #[test]
    fn bank_zero_code_gives_zero() {
        let bank = BinaryWeightedBank::ideal(7);
        assert_eq!(bank.multiplication(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds bank width")]
    fn bank_rejects_wide_code() {
        let bank = BinaryWeightedBank::ideal(4);
        let _ = bank.multiplication(16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn mirror_rejects_zero_ratio() {
        let _ = CurrentMirror::ideal(0.0);
    }

    #[test]
    fn bank_accessors() {
        let bank = BinaryWeightedBank::ideal(3);
        assert_eq!(bank.bits(), 3);
        assert_eq!(bank.legs().len(), 3);
        assert_eq!(bank.legs()[2].nominal(), 4.0);
    }
}
