//! Analyses: DC operating point, DC sweep and transient.

pub mod ac;
pub mod dc;
pub mod sweep;
pub mod transient;

use crate::netlist::Netlist;
use crate::stamp::{build_system, Mode};
use crate::{CircuitError, Result};
use lcosc_num::linalg::Matrix;

/// Shared Newton–Raphson driver: iterates the companion-model linearization
/// until the update is below tolerance.
///
/// Node-voltage updates are limited to `v_step_limit` per iteration
/// (SPICE-style limiting), which keeps exponential devices stable.
#[allow(clippy::too_many_arguments)] // internal driver shared by dc/sweep/transient
pub(crate) fn newton_solve(
    nl: &Netlist,
    x0: &[f64],
    mode: &Mode<'_>,
    max_iter: usize,
    v_tol: f64,
    v_step_limit: f64,
    analysis: &'static str,
    at: f64,
) -> Result<Vec<f64>> {
    let n = nl.unknown_count();
    if n == 0 {
        return Ok(Vec::new());
    }
    let nn = nl.node_count() - 1;
    let mut a = Matrix::zeros(n, n);
    let mut b = vec![0.0; n];
    let mut x = x0.to_vec();

    for _ in 0..max_iter {
        build_system(nl, &x, mode, &mut a, &mut b);
        let Ok(xn) = a.solve(&b) else {
            return Err(CircuitError::Singular { at });
        };
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let mut delta = xn[i] - x[i];
            if i < nn {
                // Limit node-voltage moves; branch currents are left free.
                delta = delta.clamp(-v_step_limit, v_step_limit);
                max_delta = max_delta.max(delta.abs());
            }
            x[i] += delta;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::NoConvergence { analysis, at });
        }
        if max_delta < v_tol {
            return Ok(x);
        }
    }
    Err(CircuitError::NoConvergence { analysis, at })
}
