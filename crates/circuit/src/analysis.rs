//! Analyses: DC operating point, DC sweep, transient and batched transient.

pub mod ac;
pub mod batch;
pub mod dc;
pub mod sweep;
pub mod transient;

use crate::netlist::Netlist;
use crate::stamp::{build_system, Mode};
use crate::{CircuitError, Result};
use lcosc_num::linalg::{LuFactors, Matrix};

/// Reusable scratch buffers for [`newton_solve_in`]: the stamped system,
/// the in-place LU factorization and the solve target.
///
/// The transient fast path keeps one workspace alive for the whole run, so
/// the Newton inner loop performs no heap allocation after the first step;
/// DC-style callers create one per solve (which still halves the per-
/// iteration allocations versus the old `Matrix::solve` path, since the
/// factorization and solution buffers are reused across iterations).
pub(crate) struct NewtonWorkspace {
    /// Stamped MNA matrix `A`.
    pub a: Matrix,
    /// Stamped right-hand side `b`.
    pub b: Vec<f64>,
    /// Solution of `A·xn = b` for the current iteration.
    pub xn: Vec<f64>,
    /// In-place LU factorization of `a`.
    pub lu: LuFactors,
}

impl NewtonWorkspace {
    /// Allocates buffers for an `n`-unknown system (4 heap allocations).
    /// The matrix is kept at least 1×1 (`Matrix` rejects zero dimensions);
    /// an `n == 0` workspace is never factored.
    pub fn new(n: usize) -> Self {
        NewtonWorkspace {
            a: Matrix::zeros(n.max(1), n.max(1)),
            b: vec![0.0; n],
            xn: vec![0.0; n],
            lu: LuFactors::with_dim(n),
        }
    }
}

/// Shared Newton–Raphson driver: iterates the companion-model linearization
/// until the update is below tolerance.
///
/// Node-voltage updates are limited to `v_step_limit` per iteration
/// (SPICE-style limiting), which keeps exponential devices stable.
#[allow(clippy::too_many_arguments)] // internal driver shared by dc/sweep/transient
pub(crate) fn newton_solve(
    nl: &Netlist,
    x0: &[f64],
    mode: &Mode<'_>,
    max_iter: usize,
    v_tol: f64,
    v_step_limit: f64,
    analysis: &'static str,
    at: f64,
) -> Result<Vec<f64>> {
    let mut x = x0.to_vec();
    let mut ws = NewtonWorkspace::new(nl.unknown_count());
    newton_solve_in(
        nl,
        &mut x,
        mode,
        max_iter,
        v_tol,
        v_step_limit,
        analysis,
        at,
        &mut ws,
    )?;
    Ok(x)
}

/// Allocation-free core of [`newton_solve`]: iterates in place on `x`,
/// using only the buffers in `ws`, and returns the number of Newton
/// iterations performed (including the converging one).
///
/// Numerically identical to the historical `Matrix::solve`-per-iteration
/// driver: `factor_into`/`solve_into` run the exact same pivoting and
/// substitution arithmetic, only into caller-owned storage.
#[allow(clippy::too_many_arguments)] // internal driver shared by dc/sweep/transient
pub(crate) fn newton_solve_in(
    nl: &Netlist,
    x: &mut [f64],
    mode: &Mode<'_>,
    max_iter: usize,
    v_tol: f64,
    v_step_limit: f64,
    analysis: &'static str,
    at: f64,
    ws: &mut NewtonWorkspace,
) -> Result<u64> {
    let n = nl.unknown_count();
    if n == 0 {
        return Ok(0);
    }
    let nn = nl.node_count() - 1;

    for iter in 1..=max_iter {
        build_system(nl, x, mode, &mut ws.a, &mut ws.b);
        if ws.lu.factor_into(&ws.a).is_err() || ws.lu.solve_into(&ws.b, &mut ws.xn).is_err() {
            return Err(CircuitError::Singular { at });
        }
        let mut max_delta = 0.0f64;
        for (i, xi) in x.iter_mut().enumerate() {
            let mut delta = ws.xn[i] - *xi;
            if i < nn {
                // Limit node-voltage moves; branch currents are left free.
                delta = delta.clamp(-v_step_limit, v_step_limit);
                max_delta = max_delta.max(delta.abs());
            }
            *xi += delta;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::NoConvergence { analysis, at });
        }
        if max_delta < v_tol {
            return Ok(iter as u64);
        }
    }
    Err(CircuitError::NoConvergence { analysis, at })
}
