//! Deck construction from a structured JSON description.
//!
//! The serving layer submits circuit decks as JSON documents (one request
//! per line), so the [`Netlist`] needs a constructor from the workspace's
//! [`Json`] value tree. The format is symmetric: [`netlist_to_json`]
//! renders a netlist back into the same shape, and
//! `netlist_from_json(netlist_to_json(nl)) == nl` for every netlist the
//! format covers (pinned by the tests below).
//!
//! ```json
//! {
//!   "nodes": ["a", "b"],
//!   "elements": [
//!     {"kind": "resistor", "a": "a", "b": "gnd", "ohms": 1000.0},
//!     {"kind": "vsource", "p": "a", "n": "gnd",
//!      "wave": {"type": "dc", "value": 3.3}}
//!   ]
//! }
//! ```
//!
//! Nodes may be declared up front in `"nodes"` (fixing their index order)
//! or created implicitly on first reference; `"gnd"` and `"0"` name the
//! ground node. Component values are validated here with typed errors —
//! unlike the panicking builder methods, a malformed deck from the wire
//! must never abort the process.

use crate::netlist::{Element, Netlist, NodeId, Waveform};
use lcosc_campaign::Json;
use lcosc_device::diode::DiodeModel;
use lcosc_device::mos::{MosModel, Polarity};

/// A structural error in a JSON deck description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckError {
    /// Index of the offending element in the `"elements"` array, when the
    /// error is element-local.
    pub element: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl DeckError {
    fn new(message: impl Into<String>) -> Self {
        DeckError {
            element: None,
            message: message.into(),
        }
    }

    fn at(element: usize, message: impl Into<String>) -> Self {
        DeckError {
            element: Some(element),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.element {
            Some(i) => write!(f, "deck element {i}: {}", self.message),
            None => write!(f, "deck: {}", self.message),
        }
    }
}

impl std::error::Error for DeckError {}

/// Reads a finite number field from an element object.
fn num(obj: &Json, key: &str, idx: usize) -> Result<f64, DeckError> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| DeckError::at(idx, format!("missing or non-numeric field {key:?}")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(DeckError::at(idx, format!("field {key:?} must be finite")))
    }
}

/// Reads an optional finite number field, with a default.
fn num_or(obj: &Json, key: &str, idx: usize, default: f64) -> Result<f64, DeckError> {
    if obj.get(key).is_none() {
        return Ok(default);
    }
    num(obj, key, idx)
}

/// Reads a positive finite number field.
fn positive(obj: &Json, key: &str, idx: usize) -> Result<f64, DeckError> {
    let v = num(obj, key, idx)?;
    if v > 0.0 {
        Ok(v)
    } else {
        Err(DeckError::at(
            idx,
            format!("field {key:?} must be positive"),
        ))
    }
}

/// Reads an optional positive finite number field, with a default.
fn positive_or(obj: &Json, key: &str, idx: usize, default: f64) -> Result<f64, DeckError> {
    if obj.get(key).is_none() {
        return Ok(default);
    }
    positive(obj, key, idx)
}

/// Node-name interning shared by every element of one deck.
struct NodeTable<'nl> {
    nl: &'nl mut Netlist,
    names: std::collections::HashMap<String, NodeId>,
}

impl NodeTable<'_> {
    fn resolve(&mut self, obj: &Json, key: &str, idx: usize) -> Result<NodeId, DeckError> {
        let name = obj.get(key).and_then(Json::as_str).ok_or_else(|| {
            DeckError::at(idx, format!("missing or non-string node field {key:?}"))
        })?;
        if name.eq_ignore_ascii_case("gnd") || name == "0" {
            return Ok(Netlist::GROUND);
        }
        if let Some(&id) = self.names.get(name) {
            return Ok(id);
        }
        let id = self.nl.node(name);
        self.names.insert(name.to_string(), id);
        Ok(id)
    }
}

/// Parses a waveform description (`{"type": "dc" | "sine" | "step" |
/// "pwl" | "pulse", ...}`). Every parsed waveform passes
/// [`Waveform::validate`] before it is returned, so unsorted PWL times
/// and negative pulse timings are typed [`DeckError`]s here rather than
/// misevaluations later.
fn waveform_from_json(wave: &Json, idx: usize) -> Result<Waveform, DeckError> {
    let ty = wave
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| DeckError::at(idx, "waveform needs a \"type\" field"))?;
    let parsed = match ty {
        "dc" => Ok(Waveform::Dc(num(wave, "value", idx)?)),
        "sine" => Ok(Waveform::Sine {
            offset: num_or(wave, "offset", idx, 0.0)?,
            amplitude: num(wave, "amplitude", idx)?,
            frequency: positive(wave, "frequency", idx)?,
            phase: num_or(wave, "phase", idx, 0.0)?,
        }),
        "step" => Ok(Waveform::Step {
            v0: num(wave, "v0", idx)?,
            v1: num(wave, "v1", idx)?,
            t_step: num(wave, "t_step", idx)?,
            t_rise: num_or(wave, "t_rise", idx, 0.0)?,
        }),
        "pwl" => {
            let Some(Json::Array(raw)) = wave.get("points") else {
                return Err(DeckError::at(idx, "pwl waveform needs a \"points\" array"));
            };
            let mut points = Vec::with_capacity(raw.len());
            for p in raw {
                let Json::Array(tv) = p else {
                    return Err(DeckError::at(idx, "pwl point must be a [t, v] pair"));
                };
                let (Some(t), Some(v)) = (
                    tv.first().and_then(Json::as_f64),
                    tv.get(1).and_then(Json::as_f64),
                ) else {
                    return Err(DeckError::at(idx, "pwl point must be a [t, v] pair"));
                };
                if !t.is_finite() || !v.is_finite() {
                    return Err(DeckError::at(idx, "pwl points must be finite"));
                }
                points.push((t, v));
            }
            Ok(Waveform::Pwl(points))
        }
        "pulse" => Ok(Waveform::Pulse {
            v1: num(wave, "v1", idx)?,
            v2: num(wave, "v2", idx)?,
            td: num_or(wave, "td", idx, 0.0)?,
            tr: num_or(wave, "tr", idx, 0.0)?,
            tf: num_or(wave, "tf", idx, 0.0)?,
            pw: num(wave, "pw", idx)?,
            per: num_or(wave, "per", idx, 0.0)?,
        }),
        other => Err(DeckError::at(
            idx,
            format!("unknown waveform type {other:?}"),
        )),
    };
    let wave = parsed?;
    wave.validate()
        .map_err(|e| DeckError::at(idx, e.to_string()))?;
    Ok(wave)
}

fn waveform_to_json(w: &Waveform) -> Json {
    match w {
        Waveform::Dc(v) => Json::obj([("type", Json::from("dc")), ("value", Json::from(*v))]),
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            phase,
        } => Json::obj([
            ("type", Json::from("sine")),
            ("offset", Json::from(*offset)),
            ("amplitude", Json::from(*amplitude)),
            ("frequency", Json::from(*frequency)),
            ("phase", Json::from(*phase)),
        ]),
        Waveform::Step {
            v0,
            v1,
            t_step,
            t_rise,
        } => Json::obj([
            ("type", Json::from("step")),
            ("v0", Json::from(*v0)),
            ("v1", Json::from(*v1)),
            ("t_step", Json::from(*t_step)),
            ("t_rise", Json::from(*t_rise)),
        ]),
        Waveform::Pwl(points) => Json::obj([
            ("type", Json::from("pwl")),
            (
                "points",
                Json::Array(
                    points
                        .iter()
                        .map(|(t, v)| Json::Array(vec![Json::from(*t), Json::from(*v)]))
                        .collect(),
                ),
            ),
        ]),
        Waveform::Pulse {
            v1,
            v2,
            td,
            tr,
            tf,
            pw,
            per,
        } => Json::obj([
            ("type", Json::from("pulse")),
            ("v1", Json::from(*v1)),
            ("v2", Json::from(*v2)),
            ("td", Json::from(*td)),
            ("tr", Json::from(*tr)),
            ("tf", Json::from(*tf)),
            ("pw", Json::from(*pw)),
            ("per", Json::from(*per)),
        ]),
    }
}

/// Builds a [`Netlist`] from a structured JSON deck description.
///
/// # Errors
///
/// Returns a [`DeckError`] naming the offending element for unknown
/// element kinds, missing or mistyped fields, non-finite numbers, and
/// non-positive resistances / capacitances / inductances. Never panics on
/// any input tree — this is the wire-facing constructor.
pub fn netlist_from_json(deck: &Json) -> Result<Netlist, DeckError> {
    if !matches!(deck, Json::Object(_)) {
        return Err(DeckError::new("deck must be a JSON object"));
    }
    let mut nl = Netlist::new();
    let mut table = NodeTable {
        nl: &mut nl,
        names: std::collections::HashMap::new(),
    };
    if let Some(nodes) = deck.get("nodes") {
        let Json::Array(items) = nodes else {
            return Err(DeckError::new("\"nodes\" must be an array of names"));
        };
        for n in items {
            let Some(name) = n.as_str() else {
                return Err(DeckError::new("\"nodes\" entries must be strings"));
            };
            if name.eq_ignore_ascii_case("gnd") || name == "0" {
                continue;
            }
            if !table.names.contains_key(name) {
                let id = table.nl.node(name);
                table.names.insert(name.to_string(), id);
            }
        }
    }
    let Some(Json::Array(elements)) = deck.get("elements") else {
        return Err(DeckError::new("deck needs an \"elements\" array"));
    };
    for (idx, e) in elements.iter().enumerate() {
        let kind = e
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| DeckError::at(idx, "element needs a \"kind\" field"))?;
        let element = match kind {
            "resistor" => Element::Resistor {
                a: table.resolve(e, "a", idx)?,
                b: table.resolve(e, "b", idx)?,
                ohms: positive(e, "ohms", idx)?,
            },
            "capacitor" => Element::Capacitor {
                a: table.resolve(e, "a", idx)?,
                b: table.resolve(e, "b", idx)?,
                farads: positive(e, "farads", idx)?,
                v0: num_or(e, "v0", idx, 0.0)?,
            },
            "inductor" => Element::Inductor {
                a: table.resolve(e, "a", idx)?,
                b: table.resolve(e, "b", idx)?,
                henries: positive(e, "henries", idx)?,
                i0: num_or(e, "i0", idx, 0.0)?,
            },
            "vsource" => Element::VoltageSource {
                p: table.resolve(e, "p", idx)?,
                n: table.resolve(e, "n", idx)?,
                wave: waveform_from_json(
                    e.get("wave")
                        .ok_or_else(|| DeckError::at(idx, "vsource needs a \"wave\" object"))?,
                    idx,
                )?,
            },
            "isource" => Element::CurrentSource {
                p: table.resolve(e, "p", idx)?,
                n: table.resolve(e, "n", idx)?,
                wave: waveform_from_json(
                    e.get("wave")
                        .ok_or_else(|| DeckError::at(idx, "isource needs a \"wave\" object"))?,
                    idx,
                )?,
            },
            "vccs" => Element::Vccs {
                out_p: table.resolve(e, "out_p", idx)?,
                out_n: table.resolve(e, "out_n", idx)?,
                in_p: table.resolve(e, "in_p", idx)?,
                in_n: table.resolve(e, "in_n", idx)?,
                gm: num(e, "gm", idx)?,
            },
            "diode" => {
                let defaults = DiodeModel::default();
                Element::Diode {
                    anode: table.resolve(e, "anode", idx)?,
                    cathode: table.resolve(e, "cathode", idx)?,
                    model: DiodeModel {
                        is: positive_or(e, "is", idx, defaults.is)?,
                        n: positive_or(e, "n", idx, defaults.n)?,
                        temp_k: positive_or(e, "temp_k", idx, defaults.temp_k)?,
                    },
                }
            }
            "mosfet" => {
                let polarity = e.get("polarity").and_then(Json::as_str).unwrap_or("nmos");
                let builtin = match polarity {
                    "nmos" => MosModel::nmos_035um(),
                    "pmos" => MosModel::pmos_035um(),
                    other => {
                        return Err(DeckError::at(
                            idx,
                            format!("unknown mosfet polarity {other:?}"),
                        ))
                    }
                };
                let kp = positive_or(e, "kp", idx, builtin.kp())?;
                let vth = num_or(e, "vth", idx, builtin.vth())?;
                let n = num_or(e, "n", idx, builtin.slope_factor())?;
                let lambda = num_or(e, "lambda", idx, builtin.lambda())?;
                if vth < 0.0 {
                    return Err(DeckError::at(idx, "field \"vth\" must be non-negative"));
                }
                if n < 1.0 {
                    return Err(DeckError::at(idx, "field \"n\" must be at least 1"));
                }
                if lambda < 0.0 {
                    return Err(DeckError::at(idx, "field \"lambda\" must be non-negative"));
                }
                Element::Mosfet {
                    d: table.resolve(e, "d", idx)?,
                    g: table.resolve(e, "g", idx)?,
                    s: table.resolve(e, "s", idx)?,
                    b: table.resolve(e, "b", idx)?,
                    model: MosModel::new(builtin.polarity(), kp, vth, n, lambda),
                }
            }
            "switch" => Element::Switch {
                a: table.resolve(e, "a", idx)?,
                b: table.resolve(e, "b", idx)?,
                closed: matches!(e.get("closed"), Some(Json::Bool(true))),
                r_on: {
                    let v = num_or(e, "r_on", idx, 1.0)?;
                    if v > 0.0 {
                        v
                    } else {
                        return Err(DeckError::at(idx, "field \"r_on\" must be positive"));
                    }
                },
                r_off: {
                    let v = num_or(e, "r_off", idx, 1e9)?;
                    if v > 0.0 {
                        v
                    } else {
                        return Err(DeckError::at(idx, "field \"r_off\" must be positive"));
                    }
                },
            },
            other => {
                return Err(DeckError::at(
                    idx,
                    format!("unknown element kind {other:?}"),
                ))
            }
        };
        table.nl.push_element(element);
    }
    Ok(nl)
}

/// Renders a netlist back into the JSON deck shape [`netlist_from_json`]
/// reads. Diode and MOSFET model parameters are emitted only when they
/// differ from the defaults for the element's polarity, so decks built
/// from builtin models keep their historical byte shape (and cache
/// digest) while custom `.model` cards survive the round trip.
pub fn netlist_to_json(nl: &Netlist) -> Json {
    let name = |n: NodeId| Json::from(nl.node_name(n));
    let nodes: Vec<Json> = nl
        .nodes()
        .filter(|n| !n.is_ground())
        .map(|n| Json::from(nl.node_name(n)))
        .collect();
    let elements: Vec<Json> = nl
        .elements()
        .iter()
        .map(|e| match e {
            Element::Resistor { a, b, ohms } => Json::obj([
                ("kind", Json::from("resistor")),
                ("a", name(*a)),
                ("b", name(*b)),
                ("ohms", Json::from(*ohms)),
            ]),
            Element::Capacitor { a, b, farads, v0 } => Json::obj([
                ("kind", Json::from("capacitor")),
                ("a", name(*a)),
                ("b", name(*b)),
                ("farads", Json::from(*farads)),
                ("v0", Json::from(*v0)),
            ]),
            Element::Inductor { a, b, henries, i0 } => Json::obj([
                ("kind", Json::from("inductor")),
                ("a", name(*a)),
                ("b", name(*b)),
                ("henries", Json::from(*henries)),
                ("i0", Json::from(*i0)),
            ]),
            Element::VoltageSource { p, n, wave } => Json::obj([
                ("kind", Json::from("vsource")),
                ("p", name(*p)),
                ("n", name(*n)),
                ("wave", waveform_to_json(wave)),
            ]),
            Element::CurrentSource { p, n, wave } => Json::obj([
                ("kind", Json::from("isource")),
                ("p", name(*p)),
                ("n", name(*n)),
                ("wave", waveform_to_json(wave)),
            ]),
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                gm,
            } => Json::obj([
                ("kind", Json::from("vccs")),
                ("out_p", name(*out_p)),
                ("out_n", name(*out_n)),
                ("in_p", name(*in_p)),
                ("in_n", name(*in_n)),
                ("gm", Json::from(*gm)),
            ]),
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let mut fields = vec![
                    ("kind", Json::from("diode")),
                    ("anode", name(*anode)),
                    ("cathode", name(*cathode)),
                ];
                if *model != DiodeModel::default() {
                    fields.push(("is", Json::from(model.is)));
                    fields.push(("n", Json::from(model.n)));
                    fields.push(("temp_k", Json::from(model.temp_k)));
                }
                Json::obj(fields)
            }
            Element::Mosfet { d, g, s, b, model } => {
                let (polarity, builtin) = match model.polarity() {
                    Polarity::N => ("nmos", MosModel::nmos_035um()),
                    Polarity::P => ("pmos", MosModel::pmos_035um()),
                };
                let mut fields = vec![
                    ("kind", Json::from("mosfet")),
                    ("d", name(*d)),
                    ("g", name(*g)),
                    ("s", name(*s)),
                    ("b", name(*b)),
                    ("polarity", Json::from(polarity)),
                ];
                if *model != builtin {
                    fields.push(("kp", Json::from(model.kp())));
                    fields.push(("vth", Json::from(model.vth())));
                    fields.push(("n", Json::from(model.slope_factor())));
                    fields.push(("lambda", Json::from(model.lambda())));
                }
                Json::obj(fields)
            }
            Element::Switch {
                a,
                b,
                closed,
                r_on,
                r_off,
            } => Json::obj([
                ("kind", Json::from("switch")),
                ("a", name(*a)),
                ("b", name(*b)),
                ("closed", Json::from(*closed)),
                ("r_on", Json::from(*r_on)),
                ("r_off", Json::from(*r_off)),
            ]),
        })
        .collect();
    Json::obj([
        ("nodes", Json::Array(nodes)),
        ("elements", Json::Array(elements)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_deck_json() -> Json {
        Json::parse(
            r#"{
              "elements": [
                {"kind": "vsource", "p": "in", "n": "gnd",
                 "wave": {"type": "step", "v0": 0.0, "v1": 1.0,
                          "t_step": 0.0, "t_rise": 1e-6}},
                {"kind": "resistor", "a": "in", "b": "out", "ohms": 1000.0},
                {"kind": "capacitor", "a": "out", "b": "gnd",
                 "farads": 1e-9, "v0": 0.0}
              ]
            }"#,
        )
        .expect("deck literal parses")
    }

    #[test]
    fn rc_deck_builds_and_simulates() {
        let nl = netlist_from_json(&rc_deck_json()).unwrap();
        assert_eq!(nl.node_count(), 3);
        assert_eq!(nl.elements().len(), 3);
        assert!(nl.is_linear());
        let opts = crate::TransientOptions::new(1e-7, 2e-5);
        let res = crate::run_transient(&nl, &opts).unwrap();
        let out = nl.node_id(2).unwrap();
        let v_end = res.voltage_at(out, res.len() - 1);
        assert!(v_end > 0.99, "RC settles to the source value, got {v_end}");
    }

    #[test]
    fn explicit_node_order_is_respected() {
        let deck = Json::parse(
            r#"{"nodes": ["b", "a", "gnd"],
                "elements": [{"kind": "resistor", "a": "a", "b": "b", "ohms": 1.0}]}"#,
        )
        .unwrap();
        let nl = netlist_from_json(&deck).unwrap();
        assert_eq!(nl.node_name(nl.node_id(1).unwrap()), "b");
        assert_eq!(nl.node_name(nl.node_id(2).unwrap()), "a");
    }

    #[test]
    fn round_trips_through_json() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, 1e3);
        nl.capacitor_ic(a, Netlist::GROUND, 1e-9, 0.25);
        nl.inductor_ic(a, b, 1e-6, 1e-3);
        nl.voltage_source(
            a,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e6,
                phase: 0.5,
            },
        );
        nl.current_source(
            b,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1e-3)]),
        );
        nl.voltage_source(
            b,
            Netlist::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 3.3,
                td: 1e-6,
                tr: 1e-8,
                tf: 2e-8,
                pw: 5e-7,
                per: 2e-6,
            },
        );
        nl.vccs(a, Netlist::GROUND, b, Netlist::GROUND, 1e-3);
        nl.diode(a, b, DiodeModel::default());
        nl.mosfet(
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::pmos_035um(),
        );
        nl.switch(a, b, true);
        let round = netlist_from_json(&netlist_to_json(&nl)).unwrap();
        assert_eq!(round, nl);
        // And the JSON itself is byte-stable through a parse cycle.
        let rendered = netlist_to_json(&nl).render();
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn typed_errors_instead_of_panics() {
        for (deck, needle) in [
            (r#"[]"#, "must be a JSON object"),
            (r#"{}"#, "elements"),
            (r#"{"elements": [{"a": "x"}]}"#, "kind"),
            (
                r#"{"elements": [{"kind": "warp_core"}]}"#,
                "unknown element kind",
            ),
            (
                r#"{"elements": [{"kind": "resistor", "a": "x", "b": "y", "ohms": -1.0}]}"#,
                "positive",
            ),
            (
                r#"{"elements": [{"kind": "resistor", "a": "x", "b": "y", "ohms": "big"}]}"#,
                "non-numeric",
            ),
            (
                r#"{"elements": [{"kind": "resistor", "a": 7, "b": "y", "ohms": 1.0}]}"#,
                "node field",
            ),
            (
                r#"{"elements": [{"kind": "vsource", "p": "x", "n": "y"}]}"#,
                "wave",
            ),
            (
                r#"{"elements": [{"kind": "vsource", "p": "x", "n": "y",
                    "wave": {"type": "warble"}}]}"#,
                "unknown waveform",
            ),
            (
                r#"{"elements": [{"kind": "mosfet", "d": "x", "g": "y", "s": "z",
                    "b": "w", "polarity": "cmos"}]}"#,
                "polarity",
            ),
            (
                r#"{"elements": [{"kind": "vsource", "p": "x", "n": "y",
                    "wave": {"type": "pwl", "points": [[1.0, 0.0], [0.0, 1.0]]}}]}"#,
                "non-decreasing",
            ),
            (
                r#"{"elements": [{"kind": "vsource", "p": "x", "n": "y",
                    "wave": {"type": "pulse", "v1": 0.0, "v2": 1.0, "pw": 1e-6,
                             "tr": -1e-9}}]}"#,
                "negative",
            ),
            (r#"{"nodes": "a", "elements": []}"#, "array of names"),
        ] {
            let parsed = Json::parse(deck).expect("test decks are valid JSON");
            let err = netlist_from_json(&parsed).expect_err(deck);
            assert!(err.to_string().contains(needle), "{deck} -> {err}");
        }
    }

    #[test]
    fn pwl_duplicate_times_are_accepted_and_unsorted_rejected() {
        // Equal adjacent times are a legal step discontinuity.
        let step = Json::parse(
            r#"{"elements": [{"kind": "vsource", "p": "x", "n": "gnd",
                "wave": {"type": "pwl",
                         "points": [[0.0, 0.0], [1e-6, 0.0], [1e-6, 1.0]]}}]}"#,
        )
        .unwrap();
        let nl = netlist_from_json(&step).expect("duplicate-time pwl is legal");
        match &nl.elements()[0] {
            Element::VoltageSource { wave, .. } => {
                assert_eq!(wave.eval(1e-6), 1.0);
                assert_eq!(wave.eval(0.5e-6), 0.0);
            }
            other => panic!("unexpected element {other:?}"),
        }
        // Strictly decreasing times are a typed error, never a silent
        // misevaluation.
        let unsorted = Json::parse(
            r#"{"elements": [{"kind": "isource", "p": "x", "n": "gnd",
                "wave": {"type": "pwl",
                         "points": [[0.0, 0.0], [2e-6, 1.0], [1e-6, 0.5]]}}]}"#,
        )
        .unwrap();
        let err = netlist_from_json(&unsorted).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"), "{err}");
        assert_eq!(err.element, Some(0));
    }

    #[test]
    fn pulse_round_trips_and_defaults_apply() {
        let deck = Json::parse(
            r#"{"elements": [{"kind": "vsource", "p": "x", "n": "gnd",
                "wave": {"type": "pulse", "v1": 0.0, "v2": 5.0, "pw": 1e-6}}]}"#,
        )
        .unwrap();
        let nl = netlist_from_json(&deck).unwrap();
        match &nl.elements()[0] {
            Element::VoltageSource { wave, .. } => {
                assert_eq!(
                    wave,
                    &Waveform::Pulse {
                        v1: 0.0,
                        v2: 5.0,
                        td: 0.0,
                        tr: 0.0,
                        tf: 0.0,
                        pw: 1e-6,
                        per: 0.0,
                    }
                );
            }
            other => panic!("unexpected element {other:?}"),
        }
        let round = netlist_from_json(&netlist_to_json(&nl)).unwrap();
        assert_eq!(round, nl);
    }

    #[test]
    fn error_display_carries_element_index() {
        let deck = Json::parse(
            r#"{"elements": [
                {"kind": "resistor", "a": "x", "b": "y", "ohms": 1.0},
                {"kind": "resistor", "a": "x", "b": "y", "ohms": 0.0}
            ]}"#,
        )
        .unwrap();
        let err = netlist_from_json(&deck).unwrap_err();
        assert_eq!(err.element, Some(1));
        assert!(err.to_string().starts_with("deck element 1:"));
    }
}
