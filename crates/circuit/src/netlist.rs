//! Netlist construction: nodes, elements and source waveforms.

use lcosc_device::diode::DiodeModel;
use lcosc_device::mos::MosModel;

/// A circuit node. [`Netlist::GROUND`] is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle to an element added to a [`Netlist`], used to query branch
/// currents from solutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw element index in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Independent-source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude · sin(2π f t + phase)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
        /// Phase in radians.
        phase: f64,
    },
    /// Single step from `v0` to `v1` at `t_step` with linear `t_rise`.
    Step {
        /// Initial value.
        v0: f64,
        /// Final value.
        v1: f64,
        /// Step start time in seconds.
        t_step: f64,
        /// Rise time in seconds.
        t_rise: f64,
    },
    /// Piece-wise-linear `(time, value)` points; clamped outside the range.
    Pwl(Vec<(f64, f64)>),
    /// Standard SPICE `PULSE(V1 V2 TD TR TF PW PER)` train: `v1` until
    /// `td`, linear rise to `v2` over `tr`, flat for `pw`, linear fall
    /// back over `tf`, then `v1` until the period `per` repeats the
    /// cycle. `per = 0` means a single, non-repeating pulse.
    Pulse {
        /// Initial (and between-pulse) value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first rise, in seconds.
        td: f64,
        /// Rise time in seconds.
        tr: f64,
        /// Fall time in seconds.
        tf: f64,
        /// Pulse width (time at `v2`) in seconds.
        pw: f64,
        /// Period in seconds (0 = no repetition).
        per: f64,
    },
}

/// A structurally invalid [`Waveform`], reported by [`Waveform::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformError {
    /// A parameter is NaN or infinite.
    NonFinite {
        /// Which parameter.
        what: &'static str,
    },
    /// PWL point times decrease at `points[index]`; `eval` requires
    /// monotonically non-decreasing times (equal adjacent times encode a
    /// step discontinuity and are allowed).
    PwlUnsorted {
        /// Index of the first out-of-order point.
        index: usize,
    },
    /// A duration parameter (rise/fall/width/period/delay) is negative.
    NegativeTiming {
        /// Which parameter.
        what: &'static str,
    },
}

impl std::fmt::Display for WaveformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveformError::NonFinite { what } => {
                write!(f, "waveform parameter {what} is not finite")
            }
            WaveformError::PwlUnsorted { index } => write!(
                f,
                "pwl times must be non-decreasing (point {index} goes backwards)"
            ),
            WaveformError::NegativeTiming { what } => {
                write!(f, "waveform timing parameter {what} is negative")
            }
        }
    }
}

impl std::error::Error for WaveformError {}

impl Waveform {
    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                phase,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t + phase).sin(),
            Waveform::Step {
                v0,
                v1,
                t_step,
                t_rise,
            } => {
                if t <= *t_step {
                    *v0
                } else if *t_rise > 0.0 && t < t_step + t_rise {
                    v0 + (v1 - v0) * (t - t_step) / t_rise
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|p| p.0 <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                per,
            } => {
                if t < *td {
                    return *v1;
                }
                let tau = if *per > 0.0 { (t - td) % per } else { t - td };
                if tau < *tr {
                    v1 + (v2 - v1) * tau / tr
                } else if tau < tr + pw {
                    *v2
                } else if tau < tr + pw + tf {
                    v2 + (v1 - v2) * (tau - tr - pw) / tf
                } else {
                    *v1
                }
            }
        }
    }

    /// Value used for DC operating-point analysis (the t = 0 value).
    pub fn dc_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// Checks the waveform's structural invariants: every parameter
    /// finite, PWL times monotonically non-decreasing (equal adjacent
    /// times are a step discontinuity and are legal), pulse/step timing
    /// parameters non-negative. [`Waveform::eval`] assumes these hold;
    /// the deck and SPICE parsers reject violations with this typed
    /// error before a waveform can reach the solver.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`WaveformError`].
    pub fn validate(&self) -> Result<(), WaveformError> {
        let finite = |v: f64, what: &'static str| {
            if v.is_finite() {
                Ok(())
            } else {
                Err(WaveformError::NonFinite { what })
            }
        };
        let duration = |v: f64, what: &'static str| {
            finite(v, what)?;
            if v < 0.0 {
                Err(WaveformError::NegativeTiming { what })
            } else {
                Ok(())
            }
        };
        match self {
            Waveform::Dc(v) => finite(*v, "value"),
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                phase,
            } => {
                finite(*offset, "offset")?;
                finite(*amplitude, "amplitude")?;
                finite(*frequency, "frequency")?;
                finite(*phase, "phase")
            }
            Waveform::Step {
                v0,
                v1,
                t_step,
                t_rise,
            } => {
                finite(*v0, "v0")?;
                finite(*v1, "v1")?;
                finite(*t_step, "t_step")?;
                duration(*t_rise, "t_rise")
            }
            Waveform::Pwl(points) => {
                for (i, (t, v)) in points.iter().enumerate() {
                    finite(*t, "pwl time")?;
                    finite(*v, "pwl value")?;
                    if i > 0 && *t < points[i - 1].0 {
                        return Err(WaveformError::PwlUnsorted { index: i });
                    }
                }
                Ok(())
            }
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                per,
            } => {
                finite(*v1, "v1")?;
                finite(*v2, "v2")?;
                duration(*td, "td")?;
                duration(*tr, "tr")?;
                duration(*tf, "tf")?;
                duration(*pw, "pw")?;
                duration(*per, "per")
            }
        }
    }
}

/// One netlist element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
        /// Initial voltage `v(a) − v(b)` at t = 0.
        v0: f64,
    },
    /// Linear inductor between `a` and `b` (adds a branch-current unknown).
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries.
        henries: f64,
        /// Initial current from `a` to `b` at t = 0.
        i0: f64,
    },
    /// Independent voltage source from `p` (+) to `n` (−); adds a
    /// branch-current unknown (current flows from `p` through the source to
    /// `n`, i.e. a positive branch current means the source *sinks* current
    /// at its positive terminal).
    VoltageSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// Independent current source injecting its value *into* `p` and out of
    /// `n`.
    CurrentSource {
        /// Terminal receiving the current.
        p: NodeId,
        /// Terminal sourcing the current.
        n: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// Voltage-controlled current source:
    /// `i(out_p → out_n) = gm · (v(in_p) − v(in_n))`.
    Vccs {
        /// Output current leaves this terminal.
        out_p: NodeId,
        /// Output current enters this terminal.
        out_n: NodeId,
        /// Positive sense input.
        in_p: NodeId,
        /// Negative sense input.
        in_n: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Junction diode from `anode` to `cathode`.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// Device model.
        model: DiodeModel,
    },
    /// Four-terminal MOSFET (drain, gate, source, bulk). Body diodes are
    /// *not* implicit; add [`Element::Diode`]s explicitly where the topology
    /// has them.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Bulk (model voltages are referenced to this terminal).
        b: NodeId,
        /// Device model.
        model: MosModel,
    },
    /// Ideal switch: `r_on` when closed, `r_off` when open.
    Switch {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Whether the switch is conducting.
        closed: bool,
        /// On resistance in ohms.
        r_on: f64,
        /// Off resistance in ohms.
        r_off: f64,
    },
}

/// A circuit under construction.
///
/// Nodes are created with [`Netlist::node`]; elements with the dedicated
/// add methods, each returning an [`ElementId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Netlist {
    /// The ground/reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["gnd".to_string()],
            elements: Vec::new(),
        }
    }

    /// Creates a named node and returns its id.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.node_names.push(name.to_string());
        NodeId(self.node_names.len() - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The node with the given raw index, if it belongs to this netlist.
    pub fn node_id(&self, index: usize) -> Option<NodeId> {
        (index < self.node_names.len()).then_some(NodeId(index))
    }

    /// Iterator over every node id including ground, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len()).map(NodeId)
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this netlist.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.0]
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Element behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Mutable element access (e.g. toggling a [`Element::Switch`] or
    /// re-pointing a source between analyses).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0]
    }

    fn check_node(&self, n: NodeId) {
        assert!(n.0 < self.node_names.len(), "node {n} not in this netlist");
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive or a node is foreign.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(ohms > 0.0, "resistance must be positive");
        self.check_node(a);
        self.check_node(b);
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor with zero initial voltage.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive or a node is foreign.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.capacitor_ic(a, b, farads, 0.0)
    }

    /// Adds a capacitor with an initial voltage `v0 = v(a) − v(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive or a node is foreign.
    pub fn capacitor_ic(&mut self, a: NodeId, b: NodeId, farads: f64, v0: f64) -> ElementId {
        assert!(farads > 0.0, "capacitance must be positive");
        self.check_node(a);
        self.check_node(b);
        self.push(Element::Capacitor { a, b, farads, v0 })
    }

    /// Adds an inductor with zero initial current.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not positive or a node is foreign.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> ElementId {
        self.inductor_ic(a, b, henries, 0.0)
    }

    /// Adds an inductor with an initial current `i0` flowing `a → b`.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not positive or a node is foreign.
    pub fn inductor_ic(&mut self, a: NodeId, b: NodeId, henries: f64, i0: f64) -> ElementId {
        assert!(henries > 0.0, "inductance must be positive");
        self.check_node(a);
        self.check_node(b);
        self.push(Element::Inductor { a, b, henries, i0 })
    }

    /// Adds an independent voltage source.
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign or the waveform fails
    /// [`Waveform::validate`] (e.g. unsorted PWL times).
    pub fn voltage_source(&mut self, p: NodeId, n: NodeId, wave: Waveform) -> ElementId {
        self.check_node(p);
        self.check_node(n);
        if let Err(e) = wave.validate() {
            panic!("invalid source waveform: {e}");
        }
        self.push(Element::VoltageSource { p, n, wave })
    }

    /// Adds an independent current source injecting into `p`.
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign or the waveform fails
    /// [`Waveform::validate`] (e.g. unsorted PWL times).
    pub fn current_source(&mut self, p: NodeId, n: NodeId, wave: Waveform) -> ElementId {
        self.check_node(p);
        self.check_node(n);
        if let Err(e) = wave.validate() {
            panic!("invalid source waveform: {e}");
        }
        self.push(Element::CurrentSource { p, n, wave })
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign or `gm` is not finite.
    pub fn vccs(
        &mut self,
        out_p: NodeId,
        out_n: NodeId,
        in_p: NodeId,
        in_n: NodeId,
        gm: f64,
    ) -> ElementId {
        assert!(gm.is_finite(), "gm must be finite");
        for n in [out_p, out_n, in_p, in_n] {
            self.check_node(n);
        }
        self.push(Element::Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            gm,
        })
    }

    /// Adds a diode.
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign.
    pub fn diode(&mut self, anode: NodeId, cathode: NodeId, model: DiodeModel) -> ElementId {
        self.check_node(anode);
        self.check_node(cathode);
        self.push(Element::Diode {
            anode,
            cathode,
            model,
        })
    }

    /// Adds a four-terminal MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign.
    pub fn mosfet(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosModel,
    ) -> ElementId {
        for n in [d, g, s, b] {
            self.check_node(n);
        }
        self.push(Element::Mosfet { d, g, s, b, model })
    }

    /// Adds a switch (1 Ω on, 1 GΩ off by default).
    ///
    /// # Panics
    ///
    /// Panics if a node is foreign.
    pub fn switch(&mut self, a: NodeId, b: NodeId, closed: bool) -> ElementId {
        self.check_node(a);
        self.check_node(b);
        self.push(Element::Switch {
            a,
            b,
            closed,
            r_on: 1.0,
            r_off: 1e9,
        })
    }

    /// Adds an element without validating its component values (only node
    /// membership is checked).
    ///
    /// The dedicated builders reject non-positive resistances, capacitances
    /// and inductances at construction time. Deck loaders and static-analysis
    /// tests need to represent such malformed elements so that
    /// `lcosc-check` can diagnose them with a proper error code instead of a
    /// panic; this is the entry point for those paths.
    ///
    /// # Panics
    ///
    /// Panics if any terminal node does not belong to this netlist.
    pub fn push_element(&mut self, e: Element) -> ElementId {
        for n in element_terminals(&e) {
            self.check_node(n);
        }
        self.push(e)
    }

    /// Opens or closes a previously added switch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a switch of this netlist.
    pub fn set_switch(&mut self, id: ElementId, closed: bool) {
        match &mut self.elements[id.0] {
            Element::Switch { closed: c, .. } => *c = closed,
            other => panic!("element {id:?} is not a switch: {other:?}"),
        }
    }

    /// Whether every element is linear — no diode and no MOSFET.
    ///
    /// Switches count as linear: their conductance depends on the stored
    /// state, not on the solution, so at a fixed netlist the stamped system
    /// is linear in the unknowns. A linear deck's transient Jacobian is
    /// constant at fixed `dt`, which is what lets the transient solver
    /// factor the MNA matrix once and reuse it for every time step.
    pub fn is_linear(&self) -> bool {
        !self
            .elements
            .iter()
            .any(|e| matches!(e, Element::Diode { .. } | Element::Mosfet { .. }))
    }

    /// Number of extra branch-current unknowns (voltage sources and
    /// inductors), in element order.
    pub(crate) fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. } | Element::Inductor { .. }))
            .count()
    }

    /// Maps each element to its branch-unknown index (if it has one).
    pub(crate) fn branch_indices(&self) -> Vec<Option<usize>> {
        let mut next = 0usize;
        self.elements
            .iter()
            .map(|e| {
                if matches!(e, Element::VoltageSource { .. } | Element::Inductor { .. }) {
                    let idx = next;
                    next += 1;
                    Some(idx)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Total number of MNA unknowns: non-ground nodes plus branch currents.
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.branch_count()
    }

    /// A 64-bit digest of the netlist *structure*: the node count plus each
    /// element's kind and terminal wiring, in element order.
    ///
    /// Element **values** (resistance, capacitance, waveform parameters,
    /// initial conditions, switch state, ...) are deliberately excluded:
    /// two decks with equal digests stamp the same MNA sparsity pattern in
    /// the same element order, which is exactly the precondition for
    /// solving them as lanes of one batched system. FNV-1a over the
    /// structural bytes, finished with a SplitMix64-style avalanche so
    /// near-identical decks spread across the digest space.
    pub fn structural_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: &mut u64, byte: u8) {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(FNV_PRIME);
        }
        fn eat_u64(h: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                eat(h, byte);
            }
        }
        let mut h = FNV_OFFSET;
        eat_u64(&mut h, self.node_count() as u64);
        for e in &self.elements {
            let kind: u8 = match e {
                Element::Resistor { .. } => 1,
                Element::Capacitor { .. } => 2,
                Element::Inductor { .. } => 3,
                Element::Switch { .. } => 4,
                Element::VoltageSource { .. } => 5,
                Element::CurrentSource { .. } => 6,
                Element::Vccs { .. } => 7,
                Element::Diode { .. } => 8,
                Element::Mosfet { .. } => 9,
            };
            eat(&mut h, kind);
            for node in element_terminals(e) {
                eat_u64(&mut h, node.index() as u64);
            }
        }
        // SplitMix64 finalizer (same mixing constants the campaign seed
        // schedule uses; reimplemented locally so `circuit` stays free of a
        // `campaign` dependency).
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Terminal nodes of an element, in declaration order.
///
/// MOSFETs list drain, gate, source, bulk; VCCS lists the output pair then
/// the sense pair. Used by connectivity rules (and [`Netlist::push_element`])
/// that must treat every attachment point uniformly.
pub fn element_terminals(e: &Element) -> Vec<NodeId> {
    match e {
        Element::Resistor { a, b, .. }
        | Element::Capacitor { a, b, .. }
        | Element::Inductor { a, b, .. }
        | Element::Switch { a, b, .. } => vec![*a, *b],
        Element::VoltageSource { p, n, .. } | Element::CurrentSource { p, n, .. } => vec![*p, *n],
        Element::Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            ..
        } => vec![*out_p, *out_n, *in_p, *in_n],
        Element::Diode { anode, cathode, .. } => vec![*anode, *cathode],
        Element::Mosfet { d, g, s, b, .. } => vec![*d, *g, *s, *b],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_sequential_and_named() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(nl.node_name(a), "a");
        assert!(Netlist::GROUND.is_ground());
        assert!(!a.is_ground());
        assert_eq!(nl.node_count(), 3);
    }

    #[test]
    fn node_display() {
        assert_eq!(Netlist::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn waveform_dc() {
        assert_eq!(Waveform::Dc(2.5).eval(1.0), 2.5);
        assert_eq!(Waveform::Dc(2.5).dc_value(), 2.5);
    }

    #[test]
    fn waveform_sine() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            frequency: 1.0,
            phase: 0.0,
        };
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waveform_step() {
        let w = Waveform::Step {
            v0: 0.0,
            v1: 3.3,
            t_step: 1e-6,
            t_rise: 1e-6,
        };
        assert_eq!(w.eval(0.0), 0.0);
        assert!((w.eval(1.5e-6) - 1.65).abs() < 1e-9);
        assert_eq!(w.eval(3e-6), 3.3);
    }

    #[test]
    fn waveform_pwl_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.5), 0.5);
        assert_eq!(w.eval(2.0), 1.0);
        assert_eq!(Waveform::Pwl(vec![]).eval(0.0), 0.0);
    }

    #[test]
    fn waveform_pulse_boundaries() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 3.3,
            td: 1e-6,
            tr: 1e-7,
            tf: 2e-7,
            pw: 4e-7,
            per: 1e-6,
        };
        // Before the delay and exactly at it: initial value.
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1e-6), 0.0);
        // Mid-rise, top, flat width, mid-fall, back down.
        assert!((w.eval(1.05e-6) - 1.65).abs() < 1e-9);
        assert_eq!(w.eval(1.3e-6), 3.3);
        assert_eq!(w.eval(1.4e-6), 3.3);
        assert!((w.eval(1.6e-6) - 1.65).abs() < 1e-9);
        assert_eq!(w.eval(1.8e-6), 0.0);
        // One period later the train repeats.
        assert!((w.eval(2.05e-6) - 1.65).abs() < 1e-7);
        assert_eq!(w.eval(2.3e-6), 3.3);
    }

    #[test]
    fn waveform_pulse_degenerate_edges_and_single_shot() {
        // Zero rise/fall: instant transitions, no division by zero.
        let w = Waveform::Pulse {
            v1: 1.0,
            v2: 2.0,
            td: 0.0,
            tr: 0.0,
            tf: 0.0,
            pw: 1.0,
            per: 0.0,
        };
        assert_eq!(w.eval(0.0), 2.0);
        assert_eq!(w.eval(0.5), 2.0);
        assert_eq!(w.eval(1.0), 1.0);
        // per = 0: never repeats.
        assert_eq!(w.eval(100.0), 1.0);
        assert_eq!(w.dc_value(), 2.0);
    }

    #[test]
    fn waveform_validate_accepts_the_good_and_rejects_the_bad() {
        assert_eq!(Waveform::Dc(1.0).validate(), Ok(()));
        assert_eq!(
            Waveform::Dc(f64::NAN).validate(),
            Err(WaveformError::NonFinite { what: "value" })
        );
        assert_eq!(
            Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (1.0, 5.0)]).validate(),
            Ok(()),
            "duplicate times are a legal step discontinuity"
        );
        assert_eq!(
            Waveform::Pwl(vec![(0.0, 0.0), (2.0, 1.0), (1.0, 5.0)]).validate(),
            Err(WaveformError::PwlUnsorted { index: 2 })
        );
        assert_eq!(
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                td: 0.0,
                tr: -1.0,
                tf: 0.0,
                pw: 1.0,
                per: 0.0,
            }
            .validate(),
            Err(WaveformError::NegativeTiming { what: "tr" })
        );
        let msg = WaveformError::PwlUnsorted { index: 2 }.to_string();
        assert!(msg.contains("non-decreasing"), "{msg}");
    }

    #[test]
    fn waveform_pwl_duplicate_time_is_a_step() {
        // Equal adjacent times encode a discontinuity: just before the
        // step the pre-value wins, at and after it the post-value wins.
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (1.0, 5.0), (2.0, 5.0)]);
        assert!((w.eval(0.999_999) - 0.999_999).abs() < 1e-9);
        assert_eq!(w.eval(1.0), 5.0);
        assert_eq!(w.eval(1.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_pwl_panics_at_netlist_build() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(
            a,
            Netlist::GROUND,
            Waveform::Pwl(vec![(1.0, 1.0), (0.0, 0.0)]),
        );
    }

    #[test]
    fn branch_indices_cover_sources_and_inductors() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, 1.0);
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.inductor(a, b, 1e-6);
        nl.capacitor(b, Netlist::GROUND, 1e-9);
        let idx = nl.branch_indices();
        assert_eq!(idx, vec![None, Some(0), Some(1), None]);
        assert_eq!(nl.branch_count(), 2);
        assert_eq!(nl.unknown_count(), 2 + 2);
    }

    #[test]
    fn switch_toggles() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let s = nl.switch(a, Netlist::GROUND, false);
        nl.set_switch(s, true);
        match nl.element(s) {
            Element::Switch { closed, .. } => assert!(closed),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "not a switch")]
    fn set_switch_rejects_non_switch() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor(a, Netlist::GROUND, 1.0);
        nl.set_switch(r, true);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn resistor_rejects_zero() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor(a, Netlist::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "not in this netlist")]
    fn foreign_node_rejected() {
        let mut nl = Netlist::new();
        nl.resistor(NodeId(5), Netlist::GROUND, 1.0);
    }

    #[test]
    fn push_element_accepts_invalid_values() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let id = nl.push_element(Element::Resistor {
            a,
            b: Netlist::GROUND,
            ohms: -1.0,
        });
        assert!(matches!(nl.element(id), Element::Resistor { ohms, .. } if *ohms == -1.0));
    }

    #[test]
    #[should_panic(expected = "not in this netlist")]
    fn push_element_still_rejects_foreign_nodes() {
        let mut nl = Netlist::new();
        nl.push_element(Element::Resistor {
            a: NodeId(9),
            b: Netlist::GROUND,
            ohms: 1.0,
        });
    }

    #[test]
    fn element_terminals_cover_every_kind() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, 1.0);
        nl.capacitor(a, b, 1e-9);
        nl.inductor(a, b, 1e-6);
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.current_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.vccs(a, b, b, Netlist::GROUND, 1e-3);
        nl.switch(a, b, true);
        for e in nl.elements() {
            let t = element_terminals(e);
            assert!(t.len() == 2 || t.len() == 4, "{e:?} -> {t:?}");
        }
    }
}

impl Netlist {
    /// Renders a SPICE-like listing of the netlist (one element per line)
    /// for debugging and reports.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name = |n: NodeId| self.node_name(n).to_string();
        for (k, e) in self.elements.iter().enumerate() {
            let _ = match e {
                Element::Resistor { a, b, ohms } => {
                    writeln!(out, "R{k} {} {} {ohms:.4e}", name(*a), name(*b))
                }
                Element::Capacitor { a, b, farads, v0 } => {
                    writeln!(
                        out,
                        "C{k} {} {} {farads:.4e} ic={v0:.3}",
                        name(*a),
                        name(*b)
                    )
                }
                Element::Inductor { a, b, henries, i0 } => {
                    writeln!(
                        out,
                        "L{k} {} {} {henries:.4e} ic={i0:.3}",
                        name(*a),
                        name(*b)
                    )
                }
                Element::VoltageSource { p, n, wave } => {
                    writeln!(
                        out,
                        "V{k} {} {} dc={:.4e}",
                        name(*p),
                        name(*n),
                        wave.dc_value()
                    )
                }
                Element::CurrentSource { p, n, wave } => {
                    writeln!(
                        out,
                        "I{k} {} {} dc={:.4e}",
                        name(*p),
                        name(*n),
                        wave.dc_value()
                    )
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => writeln!(
                    out,
                    "G{k} {} {} {} {} {gm:.4e}",
                    name(*out_p),
                    name(*out_n),
                    name(*in_p),
                    name(*in_n)
                ),
                Element::Diode { anode, cathode, .. } => {
                    writeln!(out, "D{k} {} {}", name(*anode), name(*cathode))
                }
                Element::Mosfet { d, g, s, b, model } => writeln!(
                    out,
                    "M{k} {} {} {} {} {}",
                    name(*d),
                    name(*g),
                    name(*s),
                    name(*b),
                    model.polarity()
                ),
                Element::Switch { a, b, closed, .. } => writeln!(
                    out,
                    "S{k} {} {} {}",
                    name(*a),
                    name(*b),
                    if *closed { "on" } else { "off" }
                ),
            };
        }
        out
    }
}

#[cfg(test)]
mod listing_tests {
    use super::*;
    use lcosc_device::diode::DiodeModel;
    use lcosc_device::mos::MosModel;

    #[test]
    fn listing_covers_every_element_kind() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, 1e3);
        nl.capacitor_ic(a, Netlist::GROUND, 1e-9, 0.5);
        nl.inductor(a, b, 1e-6);
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(3.3));
        nl.current_source(b, Netlist::GROUND, Waveform::Dc(1e-3));
        nl.vccs(a, Netlist::GROUND, b, Netlist::GROUND, 1e-3);
        nl.diode(a, b, DiodeModel::default());
        nl.mosfet(
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::nmos_035um(),
        );
        nl.switch(a, b, true);
        let s = nl.listing();
        assert_eq!(s.lines().count(), 9);
        for prefix in [
            "R0",
            "C1",
            "L2",
            "V3",
            "I4",
            "G5",
            "D6",
            "M7 a b gnd gnd nmos",
            "S8 a b on",
        ] {
            assert!(s.contains(prefix), "missing {prefix} in:\n{s}");
        }
        assert!(s.contains("ic=0.500"));
        assert!(s.contains("dc=3.3"));
    }

    #[test]
    fn listing_of_empty_netlist_is_empty() {
        assert!(Netlist::new().listing().is_empty());
    }
}
