//! DC sweep with solution continuation.
//!
//! Re-solves the operating point while stepping one independent source
//! through a list of values, warm-starting each point from the previous one.
//! This is how the paper's Fig 17/18 (pin I–V of the unsupplied driver) are
//! reproduced.

use crate::analysis::dc::{solve_dc_with, DcOptions, DcSolution};
use crate::netlist::{Element, ElementId, Netlist, Waveform};
use crate::{CircuitError, Result};

/// One point of a DC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Swept source value at this point.
    pub value: f64,
    /// Converged operating point.
    pub solution: DcSolution,
}

/// Sweeps the value of an independent voltage or current source through
/// `values`, solving the DC operating point at each step with continuation.
///
/// The netlist is taken by value (clone before calling to keep the
/// original); the swept source is restored to its last value on return.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidInput`] if `source` is not an independent
/// source or `values` is empty; otherwise propagates solver errors annotated
/// with the failing sweep value.
pub fn dc_sweep(
    mut nl: Netlist,
    source: ElementId,
    values: &[f64],
    opts: &DcOptions,
) -> Result<Vec<SweepPoint>> {
    if values.is_empty() {
        return Err(CircuitError::InvalidInput("sweep needs at least one value"));
    }
    match nl.element(source) {
        Element::VoltageSource { .. } | Element::CurrentSource { .. } => {}
        _ => {
            return Err(CircuitError::InvalidInput(
                "swept element must be an independent source",
            ))
        }
    }

    let mut out = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;
    for &v in values {
        match nl.element_mut(source) {
            Element::VoltageSource { wave, .. } | Element::CurrentSource { wave, .. } => {
                *wave = Waveform::Dc(v);
            }
            _ => unreachable!("validated above"),
        }
        let sol = solve_dc_with(&nl, opts, warm.as_deref()).map_err(|e| match e {
            CircuitError::NoConvergence { analysis, .. } => {
                CircuitError::NoConvergence { analysis, at: v }
            }
            other => other,
        })?;
        warm = Some(sol.raw().to_vec());
        out.push(SweepPoint {
            value: v,
            solution: sol,
        });
    }
    Ok(out)
}

/// Builds a uniformly spaced list of sweep values, inclusive of both ends.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn linspace(start: f64, end: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two points");
    (0..points)
        .map(|i| start + (end - start) * i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;
    use lcosc_device::diode::DiodeModel;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn resistor_sweep_is_linear() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        let r = nl.resistor(a, Netlist::GROUND, 1e3);
        let pts = dc_sweep(nl, src, &linspace(-2.0, 2.0, 9), &DcOptions::default()).unwrap();
        assert_eq!(pts.len(), 9);
        for p in &pts {
            assert!((p.solution.current(r) - p.value / 1e3).abs() < 1e-9);
        }
    }

    #[test]
    fn diode_sweep_shows_knee() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        let d = nl.diode(a, Netlist::GROUND, DiodeModel::default());
        let pts = dc_sweep(nl, src, &linspace(-1.0, 0.8, 37), &DcOptions::default()).unwrap();
        let i_rev = pts[0].solution.current(d);
        let i_fwd = pts.last().unwrap().solution.current(d);
        assert!(i_rev.abs() < 1e-12);
        assert!(i_fwd > 1e-4, "forward current {i_fwd}");
        // Currents must be monotone in the swept voltage.
        for w in pts.windows(2) {
            assert!(w[1].solution.current(d) >= w[0].solution.current(d) - 1e-15);
        }
    }

    #[test]
    fn sweep_rejects_non_source() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor(a, Netlist::GROUND, 1e3);
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let e = dc_sweep(nl, r, &[1.0], &DcOptions::default()).unwrap_err();
        assert!(matches!(e, CircuitError::InvalidInput(_)));
    }

    #[test]
    fn sweep_rejects_empty_values() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        nl.resistor(a, Netlist::GROUND, 1e3);
        let e = dc_sweep(nl, src, &[], &DcOptions::default()).unwrap_err();
        assert!(matches!(e, CircuitError::InvalidInput(_)));
    }

    #[test]
    fn current_source_sweep() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.current_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        nl.resistor(a, Netlist::GROUND, 2e3);
        let pts = dc_sweep(nl, src, &[0.0, 1e-3, 2e-3], &DcOptions::default()).unwrap();
        assert!((pts[2].solution.voltage(a) - 4.0).abs() < 1e-6);
    }
}
