//! Small-signal AC analysis: linearize every nonlinear device around the DC
//! operating point, then solve the complex MNA system at each frequency
//! with one independent source driven at unit amplitude.

use crate::analysis::dc::{solve_dc, DcSolution};
use crate::netlist::{Element, ElementId, Netlist, NodeId};
use crate::{CircuitError, Result};
use lcosc_num::fft::Complex;
use lcosc_num::linalg::ComplexMatrix;

/// One frequency point of an AC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AcPoint {
    /// Analysis frequency in hertz.
    pub frequency: f64,
    node_count: usize,
    x: Vec<Complex>,
}

impl AcPoint {
    /// Complex node voltage (phasor) relative to the unit source.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analyzed netlist.
    pub fn voltage(&self, n: NodeId) -> Complex {
        assert!(n.index() < self.node_count, "node {n} not in solution");
        if n.is_ground() {
            Complex::default()
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Voltage magnitude in dB relative to the unit source.
    pub fn magnitude_db(&self, n: NodeId) -> f64 {
        20.0 * self.voltage(n).abs().max(1e-300).log10()
    }

    /// Voltage phase in radians.
    pub fn phase(&self, n: NodeId) -> f64 {
        self.voltage(n).arg()
    }
}

/// Runs an AC sweep: the designated independent `source` is driven with a
/// unit AC amplitude (all other independent sources are AC-grounded), the
/// nonlinear devices are linearized around the DC operating point, and the
/// complex MNA system is solved at each frequency.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidInput`] when `source` is not an
/// independent source or `freqs` is empty; propagates DC and linear-solve
/// failures otherwise.
pub fn ac_sweep(nl: &Netlist, source: ElementId, freqs: &[f64]) -> Result<Vec<AcPoint>> {
    match nl.element(source) {
        Element::VoltageSource { .. } | Element::CurrentSource { .. } => {}
        _ => {
            return Err(CircuitError::InvalidInput(
                "ac source must be an independent source",
            ))
        }
    }
    if freqs.is_empty() {
        return Err(CircuitError::InvalidInput("ac sweep needs frequencies"));
    }
    let op = solve_dc(nl)?;
    // One set of scratch buffers serves the whole sweep: the matrix and RHS
    // are restamped per frequency, and `ComplexMatrix::solve_into` reuses
    // the factorization/solution vectors instead of allocating per point.
    let n = nl.unknown_count();
    let mut scratch = AcScratch {
        a: ComplexMatrix::zeros(n.max(1), n.max(1)),
        b: vec![Complex::default(); n.max(1)],
        lu: Vec::new(),
        x: Vec::new(),
    };
    freqs
        .iter()
        .map(|&f| solve_ac_point(nl, source, &op, f, &mut scratch))
        .collect()
}

/// Sweep-lifetime scratch storage for [`solve_ac_point`].
struct AcScratch {
    a: ComplexMatrix,
    b: Vec<Complex>,
    lu: Vec<Complex>,
    x: Vec<Complex>,
}

fn solve_ac_point(
    nl: &Netlist,
    source: ElementId,
    op: &DcSolution,
    frequency: f64,
    scratch: &mut AcScratch,
) -> Result<AcPoint> {
    if !(frequency > 0.0) {
        return Err(CircuitError::InvalidInput("frequency must be positive"));
    }
    let nn = nl.node_count() - 1;
    let n = nl.unknown_count();
    let branch = nl.branch_indices();
    let omega = 2.0 * std::f64::consts::PI * frequency;
    let j = Complex::I;

    let AcScratch { a, b, lu, x } = scratch;
    a.clear();
    b.iter_mut().for_each(|v| *v = Complex::default());

    let idx = |node: NodeId| -> Option<usize> { (!node.is_ground()).then(|| node.index() - 1) };
    let real = |v: f64| Complex::new(v, 0.0);

    let stamp_g = |a: &mut ComplexMatrix, na: NodeId, nb: NodeId, g: Complex| {
        if let Some(i) = idx(na) {
            a.add(i, i, g);
            if let Some(jn) = idx(nb) {
                a.add(i, jn, -g);
            }
        }
        if let Some(i) = idx(nb) {
            a.add(i, i, g);
            if let Some(jn) = idx(na) {
                a.add(i, jn, -g);
            }
        }
    };

    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms } => {
                stamp_g(a, *na, *nb, real(1.0 / ohms));
            }
            Element::Switch {
                a: na,
                b: nb,
                closed,
                r_on,
                r_off,
            } => {
                let r = if *closed { *r_on } else { *r_off };
                stamp_g(a, *na, *nb, real(1.0 / r));
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => stamp_g(a, *na, *nb, j * (omega * farads)),
            Element::Inductor {
                a: na,
                b: nb,
                henries,
                ..
            } => {
                let jb = nn + branch[k].expect("inductor branch");
                if let Some(i) = idx(*na) {
                    a.add(i, jb, real(1.0));
                    a.add(jb, i, real(1.0));
                }
                if let Some(i) = idx(*nb) {
                    a.add(i, jb, real(-1.0));
                    a.add(jb, i, real(-1.0));
                }
                a.add(jb, jb, -(j * (omega * henries)));
            }
            Element::VoltageSource { p, n: nneg, .. } => {
                let jb = nn + branch[k].expect("vsource branch");
                if let Some(i) = idx(*p) {
                    a.add(i, jb, real(1.0));
                    a.add(jb, i, real(1.0));
                }
                if let Some(i) = idx(*nneg) {
                    a.add(i, jb, real(-1.0));
                    a.add(jb, i, real(-1.0));
                }
                if ElementId(k) == source {
                    b[jb] = real(1.0);
                }
            }
            Element::CurrentSource { p, n: nneg, .. } => {
                if ElementId(k) == source {
                    if let Some(i) = idx(*p) {
                        b[i] = b[i] + real(1.0);
                    }
                    if let Some(i) = idx(*nneg) {
                        b[i] = b[i] - real(1.0);
                    }
                }
            }
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                gm,
            } => {
                for (out, sign) in [(*out_p, 1.0), (*out_n, -1.0)] {
                    if let Some(r) = idx(out) {
                        if let Some(c) = idx(*in_p) {
                            a.add(r, c, real(sign * gm));
                        }
                        if let Some(c) = idx(*in_n) {
                            a.add(r, c, real(-sign * gm));
                        }
                    }
                }
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let v = op.voltage(*anode) - op.voltage(*cathode);
                stamp_g(a, *anode, *cathode, real(model.conductance(v)));
            }
            Element::Mosfet {
                d,
                g: gate,
                s,
                b: bulk,
                model,
            } => {
                let vb = op.voltage(*bulk);
                let dev = model.evaluate_4t(
                    op.voltage(*gate) - vb,
                    op.voltage(*d) - vb,
                    op.voltage(*s) - vb,
                );
                let gmb = -(dev.gm + dev.gds + dev.gms);
                for (node, sign) in [(*d, 1.0), (*s, -1.0)] {
                    if let Some(r) = idx(node) {
                        if let Some(c) = idx(*gate) {
                            a.add(r, c, real(sign * dev.gm));
                        }
                        if let Some(c) = idx(*d) {
                            a.add(r, c, real(sign * dev.gds));
                        }
                        if let Some(c) = idx(*s) {
                            a.add(r, c, real(sign * dev.gms));
                        }
                        if let Some(c) = idx(*bulk) {
                            a.add(r, c, real(sign * gmb));
                        }
                    }
                }
            }
        }
    }
    // gmin for floating nodes (same constant as the transient stampers).
    for i in 0..nn {
        a.add(i, i, real(crate::stamp::GMIN));
    }

    if n == 0 {
        x.clear();
    } else {
        a.solve_into(b, lu, x)
            .map_err(|_| CircuitError::Singular { at: frequency })?;
    }
    Ok(AcPoint {
        frequency,
        node_count: nl.node_count(),
        x: x.iter().take(nn).copied().collect(),
    })
}

/// Logarithmically spaced frequencies, inclusive of both ends.
///
/// # Panics
///
/// Panics unless `points >= 2` and both ends are positive with
/// `end > start`.
pub fn logspace(start: f64, end: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two points");
    assert!(start > 0.0 && end > start, "need 0 < start < end");
    let (l0, l1) = (start.ln(), end.ln());
    (0..points)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn rc_lowpass_has_3db_corner() {
        let r = 1e3;
        let c = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        let src = nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(0.0));
        nl.resistor(vin, out, r);
        nl.capacitor(out, Netlist::GROUND, c);
        let pts = ac_sweep(&nl, src, &[fc / 100.0, fc, fc * 100.0]).unwrap();
        assert!((pts[0].magnitude_db(out) - 0.0).abs() < 0.01, "passband");
        assert!((pts[1].magnitude_db(out) + 3.01).abs() < 0.05, "corner");
        assert!((pts[2].magnitude_db(out) + 40.0).abs() < 0.2, "stopband");
        // Phase: −45° at the corner.
        assert!((pts[1].phase(out) + std::f64::consts::FRAC_PI_4).abs() < 1e-3);
    }

    #[test]
    fn series_rlc_peaks_at_resonance() {
        let l = 25e-6f64;
        let c = 1e-9f64;
        let rs = 10.0f64;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let mid = nl.node("mid");
        let out = nl.node("out");
        let src = nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(0.0));
        nl.resistor(vin, mid, rs);
        nl.inductor(mid, out, l);
        nl.capacitor(out, Netlist::GROUND, c);
        // Voltage across the capacitor peaks near f0 with gain ~ Q.
        let q = (l / c).sqrt() / rs;
        let pts = ac_sweep(&nl, src, &logspace(f0 / 10.0, f0 * 10.0, 101)).unwrap();
        let peak = pts
            .iter()
            .max_by(|a, b| a.voltage(out).abs().total_cmp(&b.voltage(out).abs()))
            .expect("non-empty");
        assert!(
            (peak.frequency / f0 - 1.0).abs() < 0.06,
            "peak at {} vs f0 {}",
            peak.frequency,
            f0
        );
        assert!(
            (peak.voltage(out).abs() / q - 1.0).abs() < 0.1,
            "gain {} vs Q {q}",
            peak.voltage(out).abs()
        );
    }

    #[test]
    fn mosfet_amplifier_gain_matches_gm_rl() {
        // Common-source stage: |A| = gm·RL at low frequency.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("gate");
        let drain = nl.node("drain");
        nl.voltage_source(vdd, Netlist::GROUND, Waveform::Dc(3.3));
        let vg = nl.voltage_source(gate, Netlist::GROUND, Waveform::Dc(1.2));
        nl.resistor(vdd, drain, 2e3);
        nl.mosfet(
            drain,
            gate,
            Netlist::GROUND,
            Netlist::GROUND,
            lcosc_device::mos::MosModel::nmos_035um(),
        );
        // Expected gain from the model's own small-signal parameters.
        let op = solve_dc(&nl).unwrap();
        let dev = lcosc_device::mos::MosModel::nmos_035um().evaluate(1.2, op.voltage(drain));
        let expected = dev.gm * (1.0 / (1.0 / 2e3 + dev.gds));
        let pts = ac_sweep(&nl, vg, &[1e3]).unwrap();
        let gain = pts[0].voltage(drain).abs();
        assert!((gain / expected - 1.0).abs() < 0.02, "{gain} vs {expected}");
        // Inverting stage: phase ~ 180°.
        assert!(pts[0].phase(drain).abs() > 3.0);
    }

    #[test]
    fn capacitor_blocks_dc_passes_hf() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        let src = nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(0.0));
        nl.capacitor(vin, out, 1e-9);
        nl.resistor(out, Netlist::GROUND, 1e3);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let pts = ac_sweep(&nl, src, &[fc / 1000.0, fc * 1000.0]).unwrap();
        assert!(pts[0].magnitude_db(out) < -55.0);
        assert!(pts[1].magnitude_db(out) > -0.1);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor(a, Netlist::GROUND, 1e3);
        let src = nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        assert!(ac_sweep(&nl, r, &[1e3]).is_err());
        assert!(ac_sweep(&nl, src, &[]).is_err());
        assert!(ac_sweep(&nl, src, &[-1.0]).is_err());
    }

    #[test]
    fn logspace_is_geometric() {
        let f = logspace(1.0, 1000.0, 4);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[3] - 1000.0).abs() < 1e-9);
        assert!((f[1] / f[0] - f[2] / f[1]).abs() < 1e-9);
    }
}
