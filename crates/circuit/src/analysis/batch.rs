//! Batched transient analysis: solves N same-structure linear decks as
//! lanes of one structure-of-arrays system.
//!
//! The campaign workloads (FMEA fault sweeps, DAC-yield Monte Carlo) run
//! thousands of decks that share one MNA sparsity structure and differ only
//! in element values. [`run_transient_batch`] stamps all of them into a
//! [`BatchedMatrix`] in one pass ([`stamp_linear_batch`]), LU-factors every
//! lane at once through the runtime-selected kernel
//! ([`lcosc_num::select_kernel`]), and then advances the whole batch per
//! time step with every stage — RHS stamping, solve, Newton-update replay,
//! sampling, history absorption — iterating lanes in the innermost loop
//! over lane-contiguous storage, so the per-step work autovectorizes and
//! the per-element dispatch is paid once per batch instead of once per
//! lane.
//!
//! ## Determinism contract
//!
//! Every lane is **bit-identical** to what [`run_transient`] produces for
//! that deck alone. The argument has three legs:
//!
//! 1. **Stamping and stepping arithmetic**: every stage walks elements (or
//!    solution rows) in the same order as the per-job code and performs,
//!    per lane, exactly the reference's floating-point expression — the
//!    hoisted per-lane constants in [`ElemPlan`] are computed by the very
//!    expressions the reference evaluates inline (`farads / dt`,
//!    `2.0 * farads / dt`, `-henries / dt`, ...), so factoring them out of
//!    the step loop changes *when* they are computed, never their bits.
//!    Loop nesting moves between-lane order only; lanes never share an
//!    accumulation cell.
//! 2. **Factor/solve**: the batched kernels replay the reference
//!    elimination per lane (the wide kernel is restricted to ops whose
//!    lane math is IEEE-identical to the scalar order; see
//!    `lcosc_num::batched`).
//! 3. **Per-lane divergence is isolated**: a lane that fails to factor or
//!    converge carries the per-job typed error; its SoA slots keep
//!    receiving elementwise-per-lane arithmetic, which cannot leak into
//!    siblings.
//!
//! Decks that do not qualify (nonlinear elements, DC-start transients,
//! mixed structures, the `LCOSC_SOLVER=reference` hatch) fall back to
//! per-job [`run_transient`] — the batch entry point never changes results,
//! only how they are computed.

use super::transient::{
    resolve_solver_path, run_transient, sample_count, step_count, SolverPath, SolverStats,
    TransientOptions, TransientResult,
};
use crate::netlist::{Element, Netlist, NodeId, Waveform};
use crate::stamp::{Integrator, Mode};
use crate::{CircuitError, Result};
use lcosc_num::batched::{select_kernel, BatchedLuFactors, BatchedMatrix, BatchedRhs};

/// Runs a transient analysis on every deck, solving them together as one
/// batched system when they qualify (all linear, same structural digest,
/// initial-condition start) and falling back to per-job [`run_transient`]
/// otherwise.
///
/// Results are positionally matched to `decks` and bit-identical to what
/// [`run_transient`] returns for each deck, including typed errors: a lane
/// whose matrix cannot be factored gets [`CircuitError::Singular`] at the
/// first step, and a lane whose Newton replay diverges gets
/// [`CircuitError::NoConvergence`] at its failing time point without
/// disturbing sibling lanes.
pub fn run_transient_batch(
    decks: &[&Netlist],
    opts: &TransientOptions,
) -> Vec<Result<TransientResult>> {
    if decks.is_empty() {
        return Vec::new();
    }
    if !batchable(decks, opts) {
        return decks.iter().map(|nl| run_transient(nl, opts)).collect();
    }
    batched_linear(decks, opts)
}

/// Whether the whole slice qualifies for the batched path.
fn batchable(decks: &[&Netlist], opts: &TransientOptions) -> bool {
    if opts.validate().is_err() || !opts.use_initial_conditions {
        return false;
    }
    let first = decks[0];
    if first.unknown_count() == 0 {
        return false;
    }
    // The batched SoA kernels are the dense fast path across lanes; any
    // other resolved path (the reference hatch, or decks the resolver
    // routes to the sparse solver — big linear systems or an explicit
    // `SolverPath::Sparse`) falls back to per-job `run_transient`, where
    // the sparse path's shared symbolic cache amortizes per-job setup.
    if resolve_solver_path(opts.solver, first) != SolverPath::Dense {
        return false;
    }
    let digest = first.structural_digest();
    decks
        .iter()
        .all(|nl| nl.is_linear() && nl.structural_digest() == digest)
}

/// One element of the batched step program: shared wiring plus the per-lane
/// constants every step-loop stage needs, hoisted out of the loop.
///
/// Each constant is produced by the exact reference expression (noted per
/// variant), so using it instead of re-deriving from the netlist is a
/// bitwise no-op.
enum ElemPlan<'a> {
    /// Resistor or switch: no RHS or history role; sampling computes
    /// `(v(a) − v(b)) / r` with the per-lane resistance divisor (`ohms`,
    /// or `r_on`/`r_off` by switch state).
    Static {
        a: Option<usize>,
        b: Option<usize>,
        r: Vec<f64>,
    },
    /// Capacitor with `g = farads / dt` (BE) or `g = 2.0 * farads / dt`
    /// (trapezoidal) per lane — the shared factor of its companion stamp,
    /// history current and sample current.
    Cap {
        a: Option<usize>,
        b: Option<usize>,
        g: Vec<f64>,
    },
    /// Inductor with its branch-equation row and
    /// `m = -henries / dt` (BE) or `m = -2.0 * henries / dt` (trapezoidal)
    /// per lane.
    Ind {
        a: Option<usize>,
        b: Option<usize>,
        row: usize,
        m: Vec<f64>,
    },
    /// Voltage source: branch row plus per-lane waveforms.
    Vsrc {
        row: usize,
        waves: Vec<&'a Waveform>,
    },
    /// Current source: injection nodes plus per-lane waveforms.
    Isrc {
        p: Option<usize>,
        n: Option<usize>,
        waves: Vec<&'a Waveform>,
    },
    /// VCCS: sampling computes `gm · (v(in_p) − v(in_n))` per lane.
    Vccs {
        in_p: Option<usize>,
        in_n: Option<usize>,
        gm: Vec<f64>,
    },
}

/// Builds the step program. Precondition: all decks share the structure of
/// `decks[0]` and are linear.
fn build_plan<'a>(
    decks: &[&'a Netlist],
    opts: &TransientOptions,
    branch: &[Option<usize>],
    nn: usize,
) -> Vec<ElemPlan<'a>> {
    let dt = opts.dt;
    let lane_vals = |f: &dyn Fn(&Element) -> f64, k: usize| -> Vec<f64> {
        decks.iter().map(|nl| f(&nl.elements()[k])).collect()
    };
    branch
        .iter()
        .enumerate()
        .map(|(k, br)| match &decks[0].elements()[k] {
            Element::Resistor { a, b, .. } => ElemPlan::Static {
                a: idx(*a),
                b: idx(*b),
                r: lane_vals(
                    &|e| match e {
                        Element::Resistor { ohms, .. } => *ohms,
                        _ => unreachable!("structural digest fixes element kinds"),
                    },
                    k,
                ),
            },
            Element::Switch { a, b, .. } => ElemPlan::Static {
                a: idx(*a),
                b: idx(*b),
                r: lane_vals(
                    &|e| match e {
                        Element::Switch {
                            closed,
                            r_on,
                            r_off,
                            ..
                        } => {
                            if *closed {
                                *r_on
                            } else {
                                *r_off
                            }
                        }
                        _ => unreachable!("structural digest fixes element kinds"),
                    },
                    k,
                ),
            },
            Element::Capacitor { a, b, .. } => ElemPlan::Cap {
                a: idx(*a),
                b: idx(*b),
                g: lane_vals(
                    &|e| match e {
                        Element::Capacitor { farads, .. } => match opts.integrator {
                            Integrator::BackwardEuler => farads / dt,
                            Integrator::Trapezoidal => 2.0 * farads / dt,
                        },
                        _ => unreachable!("structural digest fixes element kinds"),
                    },
                    k,
                ),
            },
            Element::Inductor { a, b, .. } => ElemPlan::Ind {
                a: idx(*a),
                b: idx(*b),
                row: nn + br.expect("inductor has a branch index"),
                m: lane_vals(
                    &|e| match e {
                        Element::Inductor { henries, .. } => match opts.integrator {
                            Integrator::BackwardEuler => -henries / dt,
                            Integrator::Trapezoidal => -2.0 * henries / dt,
                        },
                        _ => unreachable!("structural digest fixes element kinds"),
                    },
                    k,
                ),
            },
            Element::VoltageSource { .. } => ElemPlan::Vsrc {
                row: nn + br.expect("vsource has a branch index"),
                waves: decks
                    .iter()
                    .map(|nl| match &nl.elements()[k] {
                        Element::VoltageSource { wave, .. } => wave,
                        _ => unreachable!("structural digest fixes element kinds"),
                    })
                    .collect(),
            },
            Element::CurrentSource { p, n, .. } => ElemPlan::Isrc {
                p: idx(*p),
                n: idx(*n),
                waves: decks
                    .iter()
                    .map(|nl| match &nl.elements()[k] {
                        Element::CurrentSource { wave, .. } => wave,
                        _ => unreachable!("structural digest fixes element kinds"),
                    })
                    .collect(),
            },
            Element::Vccs { in_p, in_n, .. } => ElemPlan::Vccs {
                in_p: idx(*in_p),
                in_n: idx(*in_n),
                gm: lane_vals(
                    &|e| match e {
                        Element::Vccs { gm, .. } => *gm,
                        _ => unreachable!("structural digest fixes element kinds"),
                    },
                    k,
                ),
            },
            Element::Diode { .. } | Element::Mosfet { .. } => {
                unreachable!("nonlinear element in batched linear plan")
            }
        })
        .collect()
}

/// Per-element reactive history for every lane, element-major with
/// lane-contiguous rows (`[k * lanes + lane]`) — the SoA twin of the
/// per-job `History`.
struct BatchedHistory {
    lanes: usize,
    cap_v: Vec<f64>,
    cap_i: Vec<f64>,
    ind_i: Vec<f64>,
    ind_v: Vec<f64>,
}

impl BatchedHistory {
    fn from_initial_conditions(decks: &[&Netlist]) -> Self {
        let lanes = decks.len();
        let n = decks[0].elements().len();
        let mut h = BatchedHistory {
            lanes,
            cap_v: vec![0.0; n * lanes],
            cap_i: vec![0.0; n * lanes],
            ind_i: vec![0.0; n * lanes],
            ind_v: vec![0.0; n * lanes],
        };
        for (lane, nl) in decks.iter().enumerate() {
            for (k, e) in nl.elements().iter().enumerate() {
                match e {
                    Element::Capacitor { v0, .. } => h.cap_v[k * lanes + lane] = *v0,
                    Element::Inductor { i0, .. } => h.ind_i[k * lanes + lane] = *i0,
                    _ => {}
                }
            }
        }
        h
    }
}

/// The batched linear fast path proper. Precondition: [`batchable`] holds.
fn batched_linear(decks: &[&Netlist], opts: &TransientOptions) -> Vec<Result<TransientResult>> {
    let lanes = decks.len();
    let nl0 = decks[0];
    let n = nl0.unknown_count();
    let nn = nl0.node_count() - 1;
    let elems = nl0.elements().len();
    let branch = nl0.branch_indices(); // identical across lanes; hoisted once
    let steps = step_count(opts.t_end, opts.dt);
    let stride = opts.record_stride;
    let samples = sample_count(steps, stride);
    let trap = opts.integrator == Integrator::Trapezoidal;

    let plan = build_plan(decks, opts, &branch, nn);
    let mut hist = BatchedHistory::from_initial_conditions(decks);
    // Allocation counters stay zero on the batch path: the storage here is
    // shared batch infrastructure, not per-result stepping allocations, so
    // accounting lives at the batch level (`batched_lanes` records the
    // membership instead).
    let mut results: Vec<TransientResult> = decks
        .iter()
        .map(|nl| {
            TransientResult::with_capacity(
                nl,
                samples,
                SolverStats {
                    used_linear_fast_path: true,
                    batched_lanes: lanes as u64,
                    ..SolverStats::default()
                },
            )
        })
        .collect();
    let mut dead: Vec<Option<CircuitError>> = vec![None; lanes];

    // Record t = 0 under DC conventions (reactive currents are zero), as
    // the per-job path does. All lanes start from the zero vector.
    let mode0 = Mode::Dc {
        gmin: 1e-12,
        source_scale: 1.0,
    };
    let x0 = vec![0.0; n];
    for (lane, r) in results.iter_mut().enumerate() {
        r.push_sample(decks[lane], &branch, 0.0, &x0, &mode0);
    }

    // Stamp every lane's matrix in one pass and factor the batch once; the
    // factorization is reused by every subsequent step, exactly like the
    // per-job fast path.
    let mut a = BatchedMatrix::zeros(n, lanes);
    stamp_linear_batch(decks, opts, &branch, &mut a);
    let kernel = select_kernel();
    let mut factors = BatchedLuFactors::with_dims(n, lanes);
    kernel.factor(&a, &mut factors);
    for (lane, slot) in dead.iter_mut().enumerate() {
        if !factors.status(lane).is_ok() {
            // The per-job path hits its factor failure at the first step
            // (t = 1·dt), so the lane carries the same typed error.
            *slot = Some(CircuitError::Singular { at: opts.dt });
        }
    }

    let mut b = BatchedRhs::zeros(n, lanes);
    let mut xbatch = BatchedRhs::zeros(n, lanes);
    let mut xs = BatchedRhs::zeros(n, lanes);
    let zero_row = vec![0.0; lanes];
    let mut newton_total = vec![0u64; lanes];
    let mut iters = vec![0u64; lanes];
    let mut diverged = vec![false; lanes];
    let mut max_delta = vec![0.0f64; lanes];
    let mut finite = vec![true; lanes];
    let mut active = vec![false; lanes];
    let mut cur = vec![0.0f64; elems * lanes];
    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        stamp_rhs_batch(&plan, t, trap, &hist, &mut b);
        kernel.solve(&factors, &b, &mut xbatch);
        apply_linear_update_batch(
            &mut xs,
            &xbatch,
            nn,
            opts,
            &dead,
            &mut iters,
            &mut diverged,
            &mut max_delta,
            &mut finite,
            &mut active,
        );
        for lane in 0..lanes {
            if dead[lane].is_some() {
                continue;
            }
            if diverged[lane] {
                // A diverged lane dies with the per-job error; its SoA
                // slots keep receiving elementwise-per-lane arithmetic,
                // which cannot leak into siblings.
                dead[lane] = Some(CircuitError::NoConvergence {
                    analysis: "transient",
                    at: t,
                });
            } else {
                newton_total[lane] += iters[lane];
            }
        }
        if step % stride == 0 || step == steps {
            sample_batch(&plan, t, trap, &hist, &xs, &zero_row, &mut cur);
            for (lane, r) in results.iter_mut().enumerate() {
                if dead[lane].is_none() {
                    r.push_sample_iters(
                        t,
                        (0..nn).map(|i| xs.row_lanes(i)[lane]),
                        (0..elems).map(|k| cur[k * lanes + lane]),
                    );
                }
            }
        }
        // Update history *after* recording so recorded currents use the
        // pre-step history. Dead lanes keep absorbing harmless garbage.
        absorb_batch(&plan, trap, &xs, &zero_row, &mut hist);
    }

    results
        .into_iter()
        .zip(dead)
        .enumerate()
        .map(|(lane, (mut r, died))| match died {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(r.len(), samples, "lane {lane} sample_count mismatch");
                let stats = r.stats_mut();
                stats.steps = steps as u64;
                stats.factorizations = 1;
                stats.factor_reuses = steps as u64 - 1;
                stats.newton_iterations = newton_total[lane];
                Ok(r)
            }
        })
        .collect()
}

/// Row/column index of a node (`None` for ground).
fn idx(n: NodeId) -> Option<usize> {
    (!n.is_ground()).then(|| n.index() - 1)
}

/// Stamps the RHS of every lane for the step ending at `t`: source values
/// at the time point and per-lane reactive history currents, lanes inner.
/// Per lane the arithmetic is verbatim `stamp_linear_rhs`.
fn stamp_rhs_batch(
    plan: &[ElemPlan<'_>],
    t: f64,
    trap: bool,
    hist: &BatchedHistory,
    b: &mut BatchedRhs,
) {
    b.clear();
    let lanes = hist.lanes;
    for (k, p) in plan.iter().enumerate() {
        let hb = k * lanes;
        match p {
            ElemPlan::Static { .. } | ElemPlan::Vccs { .. } => {}
            ElemPlan::Cap { a, b: nb, g } => {
                let cv = &hist.cap_v[hb..hb + lanes];
                let ci = &hist.cap_i[hb..hb + lanes];
                for (node, sign) in [(*a, 1.0), (*nb, -1.0)] {
                    let Some(node) = node else { continue };
                    let row = b.row_lanes_mut(node);
                    if trap {
                        for (((r, &g), &cv), &ci) in row.iter_mut().zip(g).zip(cv).zip(ci) {
                            *r += sign * (g * cv + ci);
                        }
                    } else {
                        for ((r, &g), &cv) in row.iter_mut().zip(g).zip(cv) {
                            *r += sign * (g * cv);
                        }
                    }
                }
            }
            ElemPlan::Ind { row, m, .. } => {
                let ii = &hist.ind_i[hb..hb + lanes];
                let iv = &hist.ind_v[hb..hb + lanes];
                let out = b.row_lanes_mut(*row);
                if trap {
                    for (((o, &m), &ii), &iv) in out.iter_mut().zip(m).zip(ii).zip(iv) {
                        *o = m * ii - iv;
                    }
                } else {
                    for ((o, &m), &ii) in out.iter_mut().zip(m).zip(ii) {
                        *o = m * ii;
                    }
                }
            }
            ElemPlan::Vsrc { row, waves } => {
                // src_scale is 1.0 in transient mode; ×1.0 is bitwise
                // identity, so it is elided here.
                let out = b.row_lanes_mut(*row);
                for (lane, wave) in waves.iter().enumerate() {
                    out[lane] = wave.eval(t);
                }
            }
            ElemPlan::Isrc { p, n, waves } => {
                for (node, sign) in [(*p, 1.0), (*n, -1.0)] {
                    if let Some(node) = node {
                        let row = b.row_lanes_mut(node);
                        for (lane, wave) in waves.iter().enumerate() {
                            row[lane] += sign * wave.eval(t);
                        }
                    }
                }
            }
        }
    }
}

/// Replays the reference Newton update loop (`apply_linear_update`) for
/// every lane at once, rows outer / lanes inner. Per lane the operation
/// sequence is exactly the reference's: ascending-index clamped deltas,
/// the same `max`-folded convergence metric, the same finiteness check.
/// Lanes retire independently: a converged lane's solution is frozen at
/// its converging iteration, a non-finite or non-converging lane is marked
/// diverged.
#[allow(clippy::too_many_arguments)] // internal: scratch buffers hoisted by the one caller
fn apply_linear_update_batch(
    xs: &mut BatchedRhs,
    xn: &BatchedRhs,
    nn: usize,
    opts: &TransientOptions,
    dead: &[Option<CircuitError>],
    iters: &mut [u64],
    diverged: &mut [bool],
    max_delta: &mut [f64],
    finite: &mut [bool],
    active: &mut [bool],
) {
    let n = xs.dim();
    let lanes = xs.lanes();
    for lane in 0..lanes {
        active[lane] = dead[lane].is_none();
        diverged[lane] = false;
        iters[lane] = 0;
    }
    for iter in 1..=opts.max_iter {
        if active.iter().all(|a| !a) {
            return;
        }
        for (m, &a) in max_delta.iter_mut().zip(active.iter()) {
            *m = if a { 0.0 } else { *m };
        }
        for i in 0..n {
            let xn_row = xn.row_lanes(i);
            let x_row = xs.row_lanes_mut(i);
            if i < nn {
                // Limit node-voltage moves; branch currents are left free
                // (verbatim reference update). The lane mask is applied as
                // a branchless select — a retired lane keeps its exact old
                // value — so the loop vectorizes.
                for (((x, &xnv), m), &a) in x_row
                    .iter_mut()
                    .zip(xn_row)
                    .zip(max_delta.iter_mut())
                    .zip(active.iter())
                {
                    let delta = (xnv - *x).clamp(-2.0, 2.0);
                    *m = if a { m.max(delta.abs()) } else { *m };
                    *x = if a { *x + delta } else { *x };
                }
            } else {
                for ((x, &xnv), &a) in x_row.iter_mut().zip(xn_row).zip(active.iter()) {
                    *x = if a { *x + (xnv - *x) } else { *x };
                }
            }
        }
        finite.iter_mut().for_each(|f| *f = true);
        for i in 0..n {
            let x_row = xs.row_lanes(i);
            for (f, &v) in finite.iter_mut().zip(x_row) {
                *f = *f && v.is_finite();
            }
        }
        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            if !finite[lane] {
                diverged[lane] = true;
                active[lane] = false;
            } else if max_delta[lane] < opts.v_tol {
                iters[lane] = iter as u64;
                active[lane] = false;
            }
        }
    }
    for (d, a) in diverged.iter_mut().zip(active.iter()) {
        if *a {
            *d = true;
        }
    }
}

/// Row of per-lane node voltages, with ground reading as the shared zero
/// row (`volt`'s ground convention).
fn volt_row<'a>(xs: &'a BatchedRhs, node: Option<usize>, zero_row: &'a [f64]) -> &'a [f64] {
    match node {
        Some(i) => xs.row_lanes(i),
        None => zero_row,
    }
}

/// Computes every element's current for every lane at the sampled time
/// point into `cur` (`[k * lanes + lane]`), replicating `element_current`'s
/// transient-mode arithmetic per lane.
fn sample_batch(
    plan: &[ElemPlan<'_>],
    t: f64,
    trap: bool,
    hist: &BatchedHistory,
    xs: &BatchedRhs,
    zero_row: &[f64],
    cur: &mut [f64],
) {
    let lanes = hist.lanes;
    for (k, p) in plan.iter().enumerate() {
        let out = &mut cur[k * lanes..(k + 1) * lanes];
        let hb = k * lanes;
        match p {
            ElemPlan::Static { a, b, r } => {
                let va = volt_row(xs, *a, zero_row);
                let vb = volt_row(xs, *b, zero_row);
                for (((o, &va), &vb), &r) in out.iter_mut().zip(va).zip(vb).zip(r) {
                    *o = (va - vb) / r;
                }
            }
            ElemPlan::Cap { a, b, g } => {
                let va = volt_row(xs, *a, zero_row);
                let vb = volt_row(xs, *b, zero_row);
                let cv = &hist.cap_v[hb..hb + lanes];
                if trap {
                    let ci = &hist.cap_i[hb..hb + lanes];
                    for (((((o, &va), &vb), &g), &cv), &ci) in
                        out.iter_mut().zip(va).zip(vb).zip(g).zip(cv).zip(ci)
                    {
                        *o = g * (va - vb - cv) - ci;
                    }
                } else {
                    for ((((o, &va), &vb), &g), &cv) in
                        out.iter_mut().zip(va).zip(vb).zip(g).zip(cv)
                    {
                        *o = g * (va - vb - cv);
                    }
                }
            }
            ElemPlan::Ind { row, .. } | ElemPlan::Vsrc { row, .. } => {
                out.copy_from_slice(xs.row_lanes(*row));
            }
            ElemPlan::Isrc { waves, .. } => {
                for (lane, wave) in waves.iter().enumerate() {
                    out[lane] = wave.eval(t);
                }
            }
            ElemPlan::Vccs { in_p, in_n, gm } => {
                let vp = volt_row(xs, *in_p, zero_row);
                let vn = volt_row(xs, *in_n, zero_row);
                for (((o, &vp), &vn), &gm) in out.iter_mut().zip(vp).zip(vn).zip(gm) {
                    *o = gm * (vp - vn);
                }
            }
        }
    }
}

/// Updates every lane's reactive history from the accepted step solution,
/// replicating `History::absorb`'s per-element arithmetic lanes-inner.
fn absorb_batch(
    plan: &[ElemPlan<'_>],
    trap: bool,
    xs: &BatchedRhs,
    zero_row: &[f64],
    hist: &mut BatchedHistory,
) {
    let lanes = hist.lanes;
    for (k, p) in plan.iter().enumerate() {
        let hb = k * lanes;
        match p {
            ElemPlan::Cap { a, b, g } => {
                let va = volt_row(xs, *a, zero_row);
                let vb = volt_row(xs, *b, zero_row);
                let (cv, ci) = (
                    &mut hist.cap_v[hb..hb + lanes],
                    &mut hist.cap_i[hb..hb + lanes],
                );
                if trap {
                    for ((((cv, ci), &va), &vb), &g) in
                        cv.iter_mut().zip(ci.iter_mut()).zip(va).zip(vb).zip(g)
                    {
                        let v = va - vb;
                        let i = g * (v - *cv) - *ci;
                        *cv = v;
                        *ci = i;
                    }
                } else {
                    for ((((cv, ci), &va), &vb), &g) in
                        cv.iter_mut().zip(ci.iter_mut()).zip(va).zip(vb).zip(g)
                    {
                        let v = va - vb;
                        let i = g * (v - *cv);
                        *cv = v;
                        *ci = i;
                    }
                }
            }
            ElemPlan::Ind { a, b, row, .. } => {
                hist.ind_i[hb..hb + lanes].copy_from_slice(xs.row_lanes(*row));
                let va = volt_row(xs, *a, zero_row);
                let vb = volt_row(xs, *b, zero_row);
                for ((iv, &va), &vb) in hist.ind_v[hb..hb + lanes].iter_mut().zip(va).zip(vb) {
                    *iv = va - vb;
                }
            }
            _ => {}
        }
    }
}

/// Stamps the matrix half of N same-structure linear decks into SoA
/// storage in one pass: elements outer, lanes inner.
///
/// Per lane this performs the same stamps in the same order as
/// `stamp_linear_matrix`, so each lane's matrix is bit-identical to the
/// per-job one — loop nesting moves *between-lane* order only, and lanes
/// never share an accumulation cell.
fn stamp_linear_batch(
    decks: &[&Netlist],
    opts: &TransientOptions,
    branch: &[Option<usize>],
    a: &mut BatchedMatrix,
) {
    a.clear();
    let nl0 = decks[0];
    let nn = nl0.node_count() - 1;
    let stamp_g = |a: &mut BatchedMatrix, na: NodeId, nb: NodeId, lane: usize, g: f64| {
        if let Some(i) = idx(na) {
            a.add(i, i, lane, g);
            if let Some(j) = idx(nb) {
                a.add(i, j, lane, -g);
            }
        }
        if let Some(i) = idx(nb) {
            a.add(i, i, lane, g);
            if let Some(j) = idx(na) {
                a.add(i, j, lane, -g);
            }
        }
    };
    let dt = opts.dt;
    for (k, br) in branch.iter().enumerate() {
        for (lane, nl) in decks.iter().enumerate() {
            match &nl.elements()[k] {
                Element::Resistor { a: na, b: nb, ohms } => {
                    stamp_g(a, *na, *nb, lane, 1.0 / ohms);
                }
                Element::Switch {
                    a: na,
                    b: nb,
                    closed,
                    r_on,
                    r_off,
                } => {
                    let r = if *closed { *r_on } else { *r_off };
                    stamp_g(a, *na, *nb, lane, 1.0 / r);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                    ..
                } => {
                    let g = match opts.integrator {
                        Integrator::BackwardEuler => farads / dt,
                        Integrator::Trapezoidal => 2.0 * farads / dt,
                    };
                    stamp_g(a, *na, *nb, lane, g);
                }
                Element::Inductor {
                    a: na,
                    b: nb,
                    henries,
                    ..
                } => {
                    let j = nn + br.expect("inductor branch");
                    if let Some(i) = idx(*na) {
                        a.add(i, j, lane, 1.0);
                        a.add(j, i, lane, 1.0);
                    }
                    if let Some(i) = idx(*nb) {
                        a.add(i, j, lane, -1.0);
                        a.add(j, i, lane, -1.0);
                    }
                    match opts.integrator {
                        Integrator::BackwardEuler => a.add(j, j, lane, -henries / dt),
                        Integrator::Trapezoidal => a.add(j, j, lane, -2.0 * henries / dt),
                    }
                }
                Element::VoltageSource { p, n, .. } => {
                    let j = nn + br.expect("vsource branch");
                    if let Some(i) = idx(*p) {
                        a.add(i, j, lane, 1.0);
                        a.add(j, i, lane, 1.0);
                    }
                    if let Some(i) = idx(*n) {
                        a.add(i, j, lane, -1.0);
                        a.add(j, i, lane, -1.0);
                    }
                }
                Element::CurrentSource { .. } => {}
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    for (out, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(r) = idx(*out) {
                            if let Some(c) = idx(*in_p) {
                                a.add(r, c, lane, sign * gm);
                            }
                            if let Some(c) = idx(*in_n) {
                                a.add(r, c, lane, -sign * gm);
                            }
                        }
                    }
                }
                Element::Diode { .. } | Element::Mosfet { .. } => {
                    debug_assert!(false, "nonlinear element in batched linear stamp");
                }
            }
        }
    }
    for i in 0..nn {
        for lane in 0..decks.len() {
            a.add(i, i, lane, 1e-12);
        }
    }
}
