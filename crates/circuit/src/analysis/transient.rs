//! Transient analysis: fixed-step backward-Euler or trapezoidal integration
//! with a Newton solve at every time step.
//!
//! Two solver paths produce bit-identical results:
//!
//! - the **fast path** ([`SolverPath::Auto`], the default) reuses one
//!   Newton workspace (matrix, RHS, LU factors) for the whole run, and on
//!   fully linear decks
//!   ([`Netlist::is_linear`]) stamps and LU-factors the MNA matrix exactly
//!   once, forward/back-substituting per step;
//! - the **reference path** ([`SolverPath::Reference`], also selectable via
//!   the environment variable `LCOSC_SOLVER=reference`) runs the
//!   straightforward allocating Newton solve on every step.
//!
//! Bit-identity is by construction, not by tolerance — see `DESIGN.md` §9
//! and the differential suite in `crates/circuit/tests/solver_differential.rs`.

use crate::analysis::dc::{solve_dc_with, DcOptions};
use crate::analysis::{newton_solve_in, NewtonWorkspace};
use crate::netlist::{ElementId, Netlist, NodeId};
use crate::stamp::{
    element_current, stamp_linear_matrix, stamp_linear_rhs, AbsorbRule, History, Mode,
};
use crate::{CircuitError, Result};

pub use crate::stamp::Integrator;

/// Which transient solver implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverPath {
    /// Pick the fastest correct path: cached-factorization stepping for
    /// linear decks, workspace-reusing Newton otherwise. Overridden to
    /// [`SolverPath::Reference`] when the environment variable
    /// `LCOSC_SOLVER` is set to `reference`.
    #[default]
    Auto,
    /// The straightforward per-step Newton solve with per-step allocations.
    /// Kept as the differential-testing oracle; bit-identical to `Auto`.
    Reference,
}

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub dt: f64,
    /// End time in seconds (simulation runs from 0 to `t_end`).
    pub t_end: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// When `true`, start from element initial conditions instead of a DC
    /// operating point (SPICE "UIC").
    pub use_initial_conditions: bool,
    /// Record every `record_stride`-th step (must be nonzero).
    pub record_stride: usize,
    /// Newton budget per step.
    pub max_iter: usize,
    /// Newton voltage tolerance.
    pub v_tol: f64,
    /// Solver implementation to use.
    pub solver: SolverPath,
}

impl TransientOptions {
    /// Creates options for a run to `t_end` with step `dt`, trapezoidal
    /// integration, starting from initial conditions.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0` and `t_end > dt`.
    pub fn new(dt: f64, t_end: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        assert!(t_end > dt, "t_end must exceed dt");
        TransientOptions {
            dt,
            t_end,
            integrator: Integrator::Trapezoidal,
            use_initial_conditions: true,
            record_stride: 1,
            max_iter: 50,
            v_tol: 1e-9,
            solver: SolverPath::Auto,
        }
    }

    /// Checks the options for values that would panic or loop forever
    /// downstream (non-finite or non-positive `dt`/`t_end`, a zero
    /// `record_stride` or `max_iter`, a useless `v_tol`).
    ///
    /// Called by [`run_transient`]; exposed so callers constructing options
    /// field-by-field can fail early.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidInput`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.dt.is_finite() || self.dt <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient dt must be finite and positive",
            ));
        }
        if !self.t_end.is_finite() || self.t_end <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient t_end must be finite and positive",
            ));
        }
        if self.record_stride == 0 {
            return Err(CircuitError::InvalidInput(
                "transient record_stride must be nonzero",
            ));
        }
        if self.max_iter == 0 {
            return Err(CircuitError::InvalidInput(
                "transient max_iter must be nonzero",
            ));
        }
        if !self.v_tol.is_finite() || self.v_tol <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient v_tol must be finite and positive",
            ));
        }
        Ok(())
    }
}

/// Counters describing the work a transient solve performed. Deterministic
/// (no wall-clock): two runs of the same deck and options produce the same
/// stats, so they are safe to assert on in tests and to emit as trace
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Time steps integrated (excluding the recorded `t = 0` state).
    pub steps: u64,
    /// Total Newton iterations across all steps (for the linear fast path:
    /// update-replay iterations, which mirror what the reference Newton
    /// loop would have counted).
    pub newton_iterations: u64,
    /// LU factorizations performed.
    pub factorizations: u64,
    /// Steps solved by reusing a previously computed factorization.
    pub factor_reuses: u64,
    /// Heap allocations attributable to the stepping machinery (workspace
    /// buffers, result storage, per-step scratch), counted at their
    /// allocation sites.
    pub allocations: u64,
    /// The subset of [`SolverStats::allocations`] performed after the first
    /// time step completed. Zero on the fast path — the acceptance gate for
    /// "allocation-free stepping".
    pub post_warmup_allocations: u64,
    /// Whether the run used the cached-factorization linear fast path.
    pub used_linear_fast_path: bool,
    /// Number of lanes in the batched solve that produced this result, or
    /// zero when the deck was solved on its own (reference or per-job fast
    /// path). Lane membership does not affect any numeric output — batched
    /// lanes are bit-identical to per-job solves — so this is purely a
    /// work-accounting counter.
    pub batched_lanes: u64,
}

/// Allocation bookkeeping for [`SolverStats`]: counts allocations at their
/// sites and splits them into warm-up vs. steady-state.
struct AllocCounter {
    warm: bool,
    total: u64,
    post_warmup: u64,
}

impl AllocCounter {
    fn new() -> Self {
        AllocCounter {
            warm: false,
            total: 0,
            post_warmup: 0,
        }
    }

    /// Records `n` allocations just performed.
    fn note(&mut self, n: u64) {
        self.total += n;
        if self.warm {
            self.post_warmup += n;
        }
    }

    /// Marks the end of warm-up (first step complete).
    fn finish_warmup(&mut self) {
        self.warm = true;
    }
}

/// Recorded transient waveforms in contiguous row-major storage: sample `k`
/// occupies `voltages[k·(node_count−1) ..]` and `currents[k·element_count ..]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    node_count: usize,
    element_count: usize,
    /// Row-major node voltages; row `k` is the full node-voltage vector at
    /// `times[k]` (column 0 = node 1; ground is implicit 0).
    voltages: Vec<f64>,
    /// Row-major element currents; row `k` column `e` is element `e`'s
    /// current at `times[k]`.
    currents: Vec<f64>,
    stats: SolverStats,
}

impl TransientResult {
    /// Recorded sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Work counters of the solve that produced this result.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The full node-voltage row of sample `k` (index 0 = node 1; ground is
    /// not stored).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample.
    pub fn voltages_at(&self, k: usize) -> &[f64] {
        let nn = self.node_count - 1;
        &self.voltages[k * nn..(k + 1) * nn]
    }

    /// The full element-current row of sample `k`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample.
    pub fn currents_at(&self, k: usize) -> &[f64] {
        let ec = self.element_count;
        &self.currents[k * ec..(k + 1) * ec]
    }

    /// The entire row-major voltage storage (all samples back to back) —
    /// handy for bitwise comparisons between runs.
    pub fn voltages_flat(&self) -> &[f64] {
        &self.voltages
    }

    /// The entire row-major current storage (all samples back to back).
    pub fn currents_flat(&self) -> &[f64] {
        &self.currents
    }

    /// Voltage trace of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated netlist.
    pub fn voltage_trace(&self, n: NodeId) -> Vec<f64> {
        assert!(n.index() < self.node_count, "node {n} not in result");
        if n.is_ground() {
            return vec![0.0; self.times.len()];
        }
        let nn = self.node_count - 1;
        self.voltages
            .iter()
            .skip(n.index() - 1)
            .step_by(nn.max(1))
            .copied()
            .collect()
    }

    /// Voltage of a node at sample `k`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample or foreign node.
    pub fn voltage_at(&self, n: NodeId, k: usize) -> f64 {
        assert!(n.index() < self.node_count, "node {n} not in result");
        assert!(k < self.times.len(), "sample {k} out of range");
        if n.is_ground() {
            0.0
        } else {
            self.voltages[k * (self.node_count - 1) + n.index() - 1]
        }
    }

    /// Current trace of one element.
    ///
    /// # Panics
    ///
    /// Panics if the element does not belong to the simulated netlist.
    pub fn current_trace(&self, e: ElementId) -> Vec<f64> {
        assert!(e.index() < self.element_count, "element not in result");
        self.currents
            .iter()
            .skip(e.index())
            .step_by(self.element_count.max(1))
            .copied()
            .collect()
    }

    /// Creates an empty result with pre-sized storage for the batch path.
    pub(crate) fn with_capacity(
        nl: &Netlist,
        samples: usize,
        stats: SolverStats,
    ) -> TransientResult {
        let nn = nl.node_count() - 1;
        TransientResult {
            times: Vec::with_capacity(samples),
            node_count: nl.node_count(),
            element_count: nl.elements().len(),
            voltages: Vec::with_capacity(samples * nn),
            currents: Vec::with_capacity(samples * nl.elements().len()),
            stats,
        }
    }

    /// Mutable access to the work counters (batch path bookkeeping).
    pub(crate) fn stats_mut(&mut self) -> &mut SolverStats {
        &mut self.stats
    }

    /// Appends one sample row.
    pub(crate) fn push_sample(&mut self, nl: &Netlist, t: f64, x: &[f64], mode: &Mode<'_>) {
        self.times.push(t);
        self.voltages.extend_from_slice(&x[..self.node_count - 1]);
        for k in 0..self.element_count {
            self.currents.push(element_current(nl, k, x, mode));
        }
    }

    /// Appends one sample row from pre-computed per-node voltages and
    /// per-element currents (the batch path gathers these lanes-inner and
    /// hands over this lane's column).
    pub(crate) fn push_sample_iters(
        &mut self,
        t: f64,
        volts: impl Iterator<Item = f64>,
        currs: impl Iterator<Item = f64>,
    ) {
        self.times.push(t);
        self.voltages.extend(volts);
        self.currents.extend(currs);
    }
}

/// Number of samples `run_transient` records: `t = 0`, every `stride`-th
/// step, and the final step.
pub(crate) fn sample_count(steps: usize, stride: usize) -> usize {
    1 + steps / stride + usize::from(!steps.is_multiple_of(stride) && steps > 0)
}

/// Runs a transient analysis.
///
/// # Errors
///
/// Propagates Newton convergence failures annotated with the failing time
/// point, DC failures when `use_initial_conditions` is `false`, and
/// [`CircuitError::InvalidInput`] for options rejected by
/// [`TransientOptions::validate`].
pub fn run_transient(nl: &Netlist, opts: &TransientOptions) -> Result<TransientResult> {
    opts.validate()?;
    let reference = opts.solver == SolverPath::Reference || reference_path_forced();
    let n = nl.unknown_count();
    // `n > 0` keeps the degenerate empty deck off the factorization path
    // (nothing to factor; Newton's early return handles it).
    let linear_fast = !reference && n > 0 && nl.is_linear();
    let nn = nl.node_count() - 1;
    let mut alloc = AllocCounter::new();

    let mut history = History::from_initial_conditions(nl);
    alloc.note(4); // the four history vectors

    // Starting state.
    let mut x = if opts.use_initial_conditions {
        vec![0.0; n]
    } else {
        let dc = solve_dc_with(nl, &DcOptions::default(), None)?;
        let x = dc.raw().to_vec();
        // Absorb the DC point into the reactive-element history so the first
        // step starts from steady state.
        history.absorb(nl, &x, AbsorbRule::Dc);
        x
    };
    alloc.note(1);

    let steps = (opts.t_end / opts.dt).ceil() as usize;
    let stride = opts.record_stride;
    let samples = sample_count(steps, stride);
    let mut result = TransientResult {
        times: Vec::with_capacity(samples),
        node_count: nl.node_count(),
        element_count: nl.elements().len(),
        voltages: Vec::with_capacity(samples * nn),
        currents: Vec::with_capacity(samples * nl.elements().len()),
        stats: SolverStats {
            used_linear_fast_path: linear_fast,
            ..SolverStats::default()
        },
    };
    alloc.note(3); // times / voltages / currents storage

    // Record t = 0 under DC conventions (reactive currents are zero).
    {
        let mode0 = Mode::Dc {
            gmin: 1e-12,
            source_scale: 1.0,
        };
        result.push_sample(nl, 0.0, &x, &mode0);
    }

    // Persistent workspace for the fast paths. The reference path ignores it
    // and allocates per step, like the historical solver did.
    let mut ws = if reference {
        None
    } else {
        alloc.note(4); // matrix + rhs + solution + LU storage
        Some(NewtonWorkspace::new(n))
    };
    let mut factored = false;

    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        let mode = Mode::Transient {
            t,
            dt: opts.dt,
            integrator: opts.integrator,
            history: &history,
        };
        result.stats.steps += 1;

        match &mut ws {
            None => {
                // Reference: fresh buffers every step, full Newton.
                let mut step_ws = NewtonWorkspace::new(n);
                alloc.note(4);
                let iters = newton_solve_in(
                    nl,
                    &mut x,
                    &mode,
                    opts.max_iter,
                    opts.v_tol,
                    2.0,
                    "transient",
                    t,
                    &mut step_ws,
                )?;
                result.stats.newton_iterations += iters;
                result.stats.factorizations += iters;
            }
            Some(ws) if linear_fast => {
                // Linear deck: the MNA matrix depends only on (deck, dt,
                // integrator), so stamp + factor exactly once and reuse the
                // factorization for every step's substitution.
                if !factored {
                    stamp_linear_matrix(nl, &mode, &mut ws.a);
                    if ws.lu.factor_into(&ws.a).is_err() {
                        return Err(CircuitError::Singular { at: t });
                    }
                    factored = true;
                    result.stats.factorizations += 1;
                } else {
                    result.stats.factor_reuses += 1;
                }
                stamp_linear_rhs(nl, &mode, &mut ws.b);
                if ws.lu.solve_into(&ws.b, &mut ws.xn).is_err() {
                    return Err(CircuitError::Singular { at: t });
                }
                result.stats.newton_iterations += apply_linear_update(&mut x, &ws.xn, nn, opts, t)?;
            }
            Some(ws) => {
                // Nonlinear deck: full Newton, but on persistent buffers.
                let iters = newton_solve_in(
                    nl,
                    &mut x,
                    &mode,
                    opts.max_iter,
                    opts.v_tol,
                    2.0,
                    "transient",
                    t,
                    ws,
                )?;
                result.stats.newton_iterations += iters;
                result.stats.factorizations += iters;
            }
        }

        if step % stride == 0 || step == steps {
            result.push_sample(nl, t, &x, &mode);
        }
        // Update history *after* recording so recorded currents use the
        // pre-step history (consistent companion model).
        history.absorb(
            nl,
            &x,
            AbsorbRule::Transient {
                dt: opts.dt,
                integrator: opts.integrator,
            },
        );
        alloc.finish_warmup();
    }

    debug_assert_eq!(result.times.len(), samples, "sample_count mismatch");
    result.stats.allocations = alloc.total;
    result.stats.post_warmup_allocations = alloc.post_warmup;
    Ok(result)
}

/// Whether the `LCOSC_SOLVER=reference` escape hatch is active.
pub(crate) fn reference_path_forced() -> bool {
    std::env::var_os("LCOSC_SOLVER").is_some_and(|v| v == "reference")
}

/// Replays the reference Newton update loop against the (iterate-
/// independent) linear solution `xn`, returning the iteration count.
///
/// On a linear deck the stamped system never reads `x`, so every reference
/// Newton iteration solves the identical system and obtains the identical
/// `xn`; only the clamped update `x[i] += clamp(xn[i] − x[i])` evolves.
/// Repeating exactly that update against the single cached solution
/// therefore reproduces the reference iterates — including their final
/// rounding — bit for bit.
pub(crate) fn apply_linear_update(
    x: &mut [f64],
    xn: &[f64],
    nn: usize,
    opts: &TransientOptions,
    t: f64,
) -> Result<u64> {
    for iter in 1..=opts.max_iter {
        let mut max_delta = 0.0f64;
        for i in 0..x.len() {
            let mut delta = xn[i] - x[i];
            if i < nn {
                // Limit node-voltage moves; branch currents are left free.
                delta = delta.clamp(-2.0, 2.0);
                max_delta = max_delta.max(delta.abs());
            }
            x[i] += delta;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::NoConvergence {
                analysis: "transient",
                at: t,
            });
        }
        if max_delta < opts.v_tol {
            return Ok(iter as u64);
        }
    }
    Err(CircuitError::NoConvergence {
        analysis: "transient",
        at: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn rc_charge_curve() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6); // tau = 1 ms
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let v_end = *res.voltage_trace(out).last().unwrap();
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_end - expect).abs() < 1e-3, "{v_end} vs {expect}");
    }

    #[test]
    fn rc_from_dc_operating_point_stays_flat() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(2.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        let mut opts = TransientOptions::new(1e-5, 5e-4);
        opts.use_initial_conditions = false;
        let res = run_transient(&nl, &opts).unwrap();
        for &v in &res.voltage_trace(out) {
            assert!((v - 2.0).abs() < 1e-6, "drifted to {v}");
        }
    }

    #[test]
    fn lc_tank_oscillates_at_resonance() {
        // 1 µH with 1 µF -> f0 = 1/(2π·1µ) ≈ 159.15 kHz
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let opts = TransientOptions::new(5e-9, 40e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let f = lcosc_num::ode::frequency_from_crossings(0.0, 5e-9, &trace).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-6);
        assert!((f / f0 - 1.0).abs() < 0.01, "f {f} vs {f0}");
    }

    #[test]
    fn trapezoidal_preserves_lc_amplitude_better_than_be() {
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
            nl.inductor(a, Netlist::GROUND, 1e-6);
            (nl, a)
        };
        let run = |integrator| {
            let (nl, a) = build();
            let mut opts = TransientOptions::new(2e-8, 60e-6);
            opts.integrator = integrator;
            let res = run_transient(&nl, &opts).unwrap();
            let trace = res.voltage_trace(a);
            trace[trace.len() / 2..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let amp_trap = run(Integrator::Trapezoidal);
        let amp_be = run(Integrator::BackwardEuler);
        assert!(amp_trap > 0.95, "trapezoidal amplitude {amp_trap}");
        assert!(amp_be < amp_trap, "BE should damp: {amp_be} vs {amp_trap}");
    }

    #[test]
    fn sine_source_passes_through() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(
            a,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e6,
                phase: 0.0,
            },
        );
        nl.resistor(a, Netlist::GROUND, 1e3);
        let opts = TransientOptions::new(1e-9, 2e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let peak = trace.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 1e-3);
    }

    #[test]
    fn record_stride_thins_output() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let mut opts = TransientOptions::new(1e-6, 1e-4);
        opts.record_stride = 10;
        let res = run_transient(&nl, &opts).unwrap();
        assert!(res.len() <= 12, "{} samples", res.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn inductor_current_ramp() {
        // V = L di/dt: 1 V across 1 mH ramps 1 A/ms.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let l = nl.inductor(a, Netlist::GROUND, 1e-3);
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let i_end = *res.current_trace(l).last().unwrap();
        assert!((i_end - 1.0).abs() < 2e-3, "i {i_end}");
    }

    #[test]
    fn voltage_at_and_ground_queries() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let res = run_transient(&nl, &TransientOptions::new(1e-6, 1e-5)).unwrap();
        assert_eq!(res.voltage_at(Netlist::GROUND, 0), 0.0);
        assert!((res.voltage_at(a, res.len() - 1) - 1.0).abs() < 1e-9);
        assert_eq!(res.voltage_trace(Netlist::GROUND).len(), res.len());
    }

    #[test]
    fn validate_rejects_degenerate_options() {
        let base = TransientOptions::new(1e-6, 1e-3);
        assert!(base.validate().is_ok());
        for bad in [
            TransientOptions { dt: 0.0, ..base },
            TransientOptions {
                dt: f64::NAN,
                ..base
            },
            TransientOptions {
                dt: f64::INFINITY,
                ..base
            },
            TransientOptions {
                t_end: -1.0,
                ..base
            },
            TransientOptions {
                t_end: f64::NAN,
                ..base
            },
            TransientOptions {
                record_stride: 0,
                ..base
            },
            TransientOptions {
                max_iter: 0,
                ..base
            },
            TransientOptions { v_tol: 0.0, ..base },
            TransientOptions {
                v_tol: f64::NAN,
                ..base
            },
        ] {
            let err = bad.validate().expect_err("should reject");
            assert!(matches!(err, CircuitError::InvalidInput(_)), "{err}");
            // run_transient surfaces the same typed error.
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.resistor(a, Netlist::GROUND, 1.0);
            assert_eq!(run_transient(&nl, &bad).expect_err("reject"), err);
        }
    }

    #[test]
    fn linear_fast_path_stats_show_single_factorization() {
        if reference_path_forced() {
            return; // hatch disables the path under test
        }
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let opts = TransientOptions::new(5e-9, 5e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(s.used_linear_fast_path);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.factor_reuses, s.steps - 1);
        assert_eq!(s.post_warmup_allocations, 0, "stepping must not allocate");
        assert!(s.newton_iterations >= s.steps);
    }

    #[test]
    fn reference_path_stats_show_per_step_factorization() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let mut opts = TransientOptions::new(5e-9, 5e-6);
        opts.solver = SolverPath::Reference;
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(!s.used_linear_fast_path);
        assert_eq!(s.factorizations, s.newton_iterations);
        assert_eq!(s.factor_reuses, 0);
        assert!(s.post_warmup_allocations > 0, "reference path allocates");
    }

    #[test]
    fn nonlinear_deck_uses_workspace_newton_without_allocating() {
        if reference_path_forced() {
            return; // hatch disables the path under test
        }
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.diode(
            out,
            Netlist::GROUND,
            lcosc_device::diode::DiodeModel::default(),
        );
        nl.capacitor(out, Netlist::GROUND, 1e-9);
        let opts = TransientOptions::new(1e-8, 1e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(!s.used_linear_fast_path);
        assert_eq!(s.factorizations, s.newton_iterations);
        assert_eq!(s.post_warmup_allocations, 0, "workspace must be reused");
    }

    #[test]
    fn flat_row_accessors_agree_with_traces() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        let res = run_transient(&nl, &TransientOptions::new(1e-6, 1e-4)).unwrap();
        let trace = res.voltage_trace(out);
        for (k, &traced) in trace.iter().enumerate() {
            assert_eq!(res.voltages_at(k)[out.index() - 1], traced);
            assert_eq!(res.voltages_at(k).len(), 2);
            assert_eq!(res.currents_at(k).len(), 3);
        }
        assert_eq!(trace.len(), res.len());
        assert_eq!(res.voltages_flat().len(), res.len() * 2);
        assert_eq!(res.currents_flat().len(), res.len() * 3);
    }

    #[test]
    fn sample_count_matches_recording_rule() {
        for steps in 0..40usize {
            for stride in 1..7usize {
                let expect = (1..=steps)
                    .filter(|s| s % stride == 0 || *s == steps)
                    .count()
                    + 1;
                assert_eq!(
                    sample_count(steps, stride),
                    expect,
                    "steps {steps} stride {stride}"
                );
            }
        }
    }
}
