//! Transient analysis: fixed-step backward-Euler or trapezoidal integration
//! with a Newton solve at every time step.

use crate::analysis::dc::{solve_dc_with, DcOptions};
use crate::analysis::newton_solve;
use crate::netlist::{ElementId, Netlist, NodeId};
use crate::stamp::{element_current, History, Mode};
use crate::Result;

pub use crate::stamp::Integrator;

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub dt: f64,
    /// End time in seconds (simulation runs from 0 to `t_end`).
    pub t_end: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// When `true`, start from element initial conditions instead of a DC
    /// operating point (SPICE "UIC").
    pub use_initial_conditions: bool,
    /// Record every `record_stride`-th step (1 = all).
    pub record_stride: usize,
    /// Newton budget per step.
    pub max_iter: usize,
    /// Newton voltage tolerance.
    pub v_tol: f64,
}

impl TransientOptions {
    /// Creates options for a run to `t_end` with step `dt`, trapezoidal
    /// integration, starting from initial conditions.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0` and `t_end > dt`.
    pub fn new(dt: f64, t_end: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        assert!(t_end > dt, "t_end must exceed dt");
        TransientOptions {
            dt,
            t_end,
            integrator: Integrator::Trapezoidal,
            use_initial_conditions: true,
            record_stride: 1,
            max_iter: 50,
            v_tol: 1e-9,
        }
    }
}

/// Recorded transient waveforms.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    node_count: usize,
    /// `voltages[k]` is the full node-voltage vector at `times[k]`
    /// (index 0 = node 1; ground is implicit 0).
    voltages: Vec<Vec<f64>>,
    /// `currents[k][e]` is the current of element `e` at `times[k]`.
    currents: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Recorded sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage trace of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated netlist.
    pub fn voltage_trace(&self, n: NodeId) -> Vec<f64> {
        assert!(n.index() < self.node_count, "node {n} not in result");
        if n.is_ground() {
            return vec![0.0; self.times.len()];
        }
        self.voltages.iter().map(|v| v[n.index() - 1]).collect()
    }

    /// Voltage of a node at sample `k`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample or foreign node.
    pub fn voltage_at(&self, n: NodeId, k: usize) -> f64 {
        assert!(n.index() < self.node_count, "node {n} not in result");
        if n.is_ground() {
            0.0
        } else {
            self.voltages[k][n.index() - 1]
        }
    }

    /// Current trace of one element.
    ///
    /// # Panics
    ///
    /// Panics if the element does not belong to the simulated netlist.
    pub fn current_trace(&self, e: ElementId) -> Vec<f64> {
        self.currents.iter().map(|c| c[e.index()]).collect()
    }
}

/// Runs a transient analysis.
///
/// # Errors
///
/// Propagates Newton convergence failures annotated with the failing time
/// point, and DC failures when `use_initial_conditions` is `false`.
pub fn run_transient(nl: &Netlist, opts: &TransientOptions) -> Result<TransientResult> {
    let n = nl.unknown_count();
    let mut history = History::from_initial_conditions(nl);

    // Starting state.
    let mut x = if opts.use_initial_conditions {
        vec![0.0; n]
    } else {
        let dc = solve_dc_with(nl, &DcOptions::default(), None)?;
        let x = dc.raw().to_vec();
        // Absorb the DC point into the reactive-element history so the first
        // step starts from steady state.
        let mode = Mode::Dc {
            gmin: 1e-12,
            source_scale: 1.0,
        };
        history.absorb(nl, &x, &mode);
        x
    };

    let steps = (opts.t_end / opts.dt).ceil() as usize;
    let stride = opts.record_stride.max(1);
    let mut result = TransientResult {
        times: Vec::with_capacity(steps / stride + 2),
        node_count: nl.node_count(),
        voltages: Vec::with_capacity(steps / stride + 2),
        currents: Vec::with_capacity(steps / stride + 2),
    };

    // Record t = 0.
    let record = |result: &mut TransientResult, t: f64, x: &[f64], mode: &Mode<'_>| {
        result.times.push(t);
        result.voltages.push(x[..nl.node_count() - 1].to_vec());
        result.currents.push(
            (0..nl.elements().len())
                .map(|k| element_current(nl, k, x, mode))
                .collect(),
        );
    };
    {
        let mode0 = Mode::Dc {
            gmin: 1e-12,
            source_scale: 1.0,
        };
        record(&mut result, 0.0, &x, &mode0);
    }

    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        let mode = Mode::Transient {
            t,
            dt: opts.dt,
            integrator: opts.integrator,
            history: &history,
        };
        x = newton_solve(
            nl,
            &x,
            &mode,
            opts.max_iter,
            opts.v_tol,
            2.0,
            "transient",
            t,
        )?;
        if step % stride == 0 || step == steps {
            record(&mut result, t, &x, &mode);
        }
        // Update history *after* recording so recorded currents use the
        // pre-step history (consistent companion model).
        let mode_absorb = Mode::Transient {
            t,
            dt: opts.dt,
            integrator: opts.integrator,
            history: &history,
        };
        let mut new_history = history.clone();
        new_history.absorb(nl, &x, &mode_absorb);
        history = new_history;
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn rc_charge_curve() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6); // tau = 1 ms
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let v_end = *res.voltage_trace(out).last().unwrap();
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_end - expect).abs() < 1e-3, "{v_end} vs {expect}");
    }

    #[test]
    fn rc_from_dc_operating_point_stays_flat() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(2.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        let mut opts = TransientOptions::new(1e-5, 5e-4);
        opts.use_initial_conditions = false;
        let res = run_transient(&nl, &opts).unwrap();
        for &v in &res.voltage_trace(out) {
            assert!((v - 2.0).abs() < 1e-6, "drifted to {v}");
        }
    }

    #[test]
    fn lc_tank_oscillates_at_resonance() {
        // 1 µH with 1 µF -> f0 = 1/(2π·1µ) ≈ 159.15 kHz
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let opts = TransientOptions::new(5e-9, 40e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let f = lcosc_num::ode::frequency_from_crossings(0.0, 5e-9, &trace).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-6);
        assert!((f / f0 - 1.0).abs() < 0.01, "f {f} vs {f0}");
    }

    #[test]
    fn trapezoidal_preserves_lc_amplitude_better_than_be() {
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
            nl.inductor(a, Netlist::GROUND, 1e-6);
            (nl, a)
        };
        let run = |integrator| {
            let (nl, a) = build();
            let mut opts = TransientOptions::new(2e-8, 60e-6);
            opts.integrator = integrator;
            let res = run_transient(&nl, &opts).unwrap();
            let trace = res.voltage_trace(a);
            trace[trace.len() / 2..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let amp_trap = run(Integrator::Trapezoidal);
        let amp_be = run(Integrator::BackwardEuler);
        assert!(amp_trap > 0.95, "trapezoidal amplitude {amp_trap}");
        assert!(amp_be < amp_trap, "BE should damp: {amp_be} vs {amp_trap}");
    }

    #[test]
    fn sine_source_passes_through() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(
            a,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e6,
                phase: 0.0,
            },
        );
        nl.resistor(a, Netlist::GROUND, 1e3);
        let opts = TransientOptions::new(1e-9, 2e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let peak = trace.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 1e-3);
    }

    #[test]
    fn record_stride_thins_output() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let mut opts = TransientOptions::new(1e-6, 1e-4);
        opts.record_stride = 10;
        let res = run_transient(&nl, &opts).unwrap();
        assert!(res.len() <= 12, "{} samples", res.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn inductor_current_ramp() {
        // V = L di/dt: 1 V across 1 mH ramps 1 A/ms.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let l = nl.inductor(a, Netlist::GROUND, 1e-3);
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let i_end = *res.current_trace(l).last().unwrap();
        assert!((i_end - 1.0).abs() < 2e-3, "i {i_end}");
    }

    #[test]
    fn voltage_at_and_ground_queries() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let res = run_transient(&nl, &TransientOptions::new(1e-6, 1e-5)).unwrap();
        assert_eq!(res.voltage_at(Netlist::GROUND, 0), 0.0);
        assert!((res.voltage_at(a, res.len() - 1) - 1.0).abs() < 1e-9);
        assert_eq!(res.voltage_trace(Netlist::GROUND).len(), res.len());
    }
}
