//! Transient analysis: fixed-step backward-Euler or trapezoidal integration
//! with a Newton solve at every time step.
//!
//! Solver paths:
//!
//! - the **dense fast path** reuses one Newton workspace (matrix, RHS, LU
//!   factors) for the whole run, and on fully linear decks
//!   ([`Netlist::is_linear`]) stamps and LU-factors the MNA matrix exactly
//!   once, forward/back-substituting per step. Bit-identical to the
//!   reference path by construction;
//! - the **sparse path** ([`SolverPath::Sparse`]) solves through a CSC
//!   sparse LU whose symbolic analysis (ordering + elimination pattern) is
//!   computed once per netlist structural digest and cached process-wide.
//!   Its elimination order differs from dense partial pivoting, so results
//!   agree with dense to solver tolerance, not bitwise — but the sparse
//!   path itself is a pure function of (pattern, values) and therefore
//!   bit-identical across runs and thread counts;
//! - the **reference path** ([`SolverPath::Reference`], also selectable via
//!   the environment variable `LCOSC_SOLVER=reference`) runs the
//!   straightforward allocating Newton solve on every step.
//!
//! [`SolverPath::Auto`] (the default) picks dense below
//! [`SPARSE_MIN_UNKNOWNS`] MNA unknowns and sparse at or above it (linear
//! decks only); `LCOSC_SOLVER=dense|sparse` forces either choice. See
//! `DESIGN.md` §9 and §13 and the differential suites in
//! `crates/circuit/tests/solver_differential.rs` and
//! `crates/circuit/tests/sparse_differential.rs`.

use std::sync::Arc;

use crate::analysis::dc::{solve_dc_with, DcOptions};
use crate::analysis::{newton_solve_in, NewtonWorkspace};
use crate::netlist::{ElementId, Netlist, NodeId};
use crate::stamp::{
    build_system, element_current, stamp_linear_matrix, stamp_linear_rhs, transient_stamp_pattern,
    AbsorbRule, History, Mode, SparseStamper,
};
use crate::{CircuitError, Result};
use lcosc_num::sparse::{SparseLu, SparseMatrix, SparseSymbolic};
use lcosc_num::{StepController, StepDecision};

pub use crate::stamp::Integrator;

/// Unknown count at or above which [`SolverPath::Auto`] routes linear decks
/// to the sparse solver. Below it the dense fast path wins (and keeps its
/// bit-identity guarantee vs. the reference path); above it sparse wins by
/// a growing margin — see the crossover table in `BENCH_PR8.json` and
/// README's performance section.
pub const SPARSE_MIN_UNKNOWNS: usize = 64;

/// Which transient solver implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverPath {
    /// Pick the fastest correct path: the dense cached-factorization /
    /// workspace-Newton solver below [`SPARSE_MIN_UNKNOWNS`] unknowns, the
    /// sparse solver at or above it (linear decks only — nonlinear decks
    /// stay dense, where partial pivoting is the safer default).
    /// Overridden by the environment variable `LCOSC_SOLVER` when set to
    /// `reference`, `dense` or `sparse`; unrecognized values are ignored.
    #[default]
    Auto,
    /// Force the dense fast path regardless of deck size.
    Dense,
    /// Force the sparse path regardless of deck size. Results agree with
    /// dense to solver tolerance (different elimination order), and are
    /// bit-identical across runs and thread counts.
    Sparse,
    /// The straightforward per-step Newton solve with per-step allocations.
    /// Kept as the differential-testing oracle; bit-identical to the dense
    /// fast path.
    Reference,
}

/// Time-stepping policy of a transient run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Stepping {
    /// Fixed `dt` steps — the bit-stable house default. Every recorded
    /// sample sits exactly on the `k·dt` grid and the batched campaign
    /// path is bit-identical to this.
    #[default]
    Fixed,
    /// Local-truncation-error–controlled adaptive stepping: each internal
    /// step is taken with both the configured integrator (trapezoidal by
    /// default) and backward Euler; the difference between the pair is the
    /// LTE estimate judged by [`lcosc_num::StepController`] (the same
    /// embedded-pair controller behind `rkf45_adaptive`). Accepted states
    /// are interpolated onto the uniform `opts.dt` output grid, so
    /// [`TransientResult`] keeps its fixed-path shape. A failing error
    /// test at `h_min` is a typed [`CircuitError::StepStall`], never a
    /// silent clamp.
    AdaptiveLte {
        /// Per-step LTE tolerance (infinity norm over node voltages).
        tol: f64,
        /// Minimum internal step (must be positive).
        h_min: f64,
        /// Maximum internal step.
        h_max: f64,
    },
}

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds (the output-grid spacing under
    /// [`Stepping::AdaptiveLte`]).
    pub dt: f64,
    /// End time in seconds (simulation runs from 0 to `t_end`).
    pub t_end: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// When `true`, start from element initial conditions instead of a DC
    /// operating point (SPICE "UIC").
    pub use_initial_conditions: bool,
    /// Record every `record_stride`-th step (must be nonzero).
    pub record_stride: usize,
    /// Newton budget per step.
    pub max_iter: usize,
    /// Newton voltage tolerance.
    pub v_tol: f64,
    /// Solver implementation to use.
    pub solver: SolverPath,
    /// Time-stepping policy (fixed grid by default).
    pub stepping: Stepping,
}

impl TransientOptions {
    /// Creates options for a run to `t_end` with step `dt`, trapezoidal
    /// integration, starting from initial conditions.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0` and `t_end > dt`.
    pub fn new(dt: f64, t_end: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        assert!(t_end > dt, "t_end must exceed dt");
        TransientOptions {
            dt,
            t_end,
            integrator: Integrator::Trapezoidal,
            use_initial_conditions: true,
            record_stride: 1,
            max_iter: 50,
            v_tol: 1e-9,
            solver: SolverPath::Auto,
            stepping: Stepping::Fixed,
        }
    }

    /// Switches the run to LTE-adaptive stepping with tolerance `tol`,
    /// allowing internal steps between `dt / 64` and `64 · dt`.
    pub fn with_adaptive_lte(mut self, tol: f64) -> Self {
        self.stepping = Stepping::AdaptiveLte {
            tol,
            h_min: self.dt / 64.0,
            h_max: self.dt * 64.0,
        };
        self
    }

    /// Checks the options for values that would panic or loop forever
    /// downstream (non-finite or non-positive `dt`/`t_end`, a zero
    /// `record_stride` or `max_iter`, a useless `v_tol`).
    ///
    /// Called by [`run_transient`]; exposed so callers constructing options
    /// field-by-field can fail early.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidInput`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.dt.is_finite() || self.dt <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient dt must be finite and positive",
            ));
        }
        if !self.t_end.is_finite() || self.t_end <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient t_end must be finite and positive",
            ));
        }
        if self.record_stride == 0 {
            return Err(CircuitError::InvalidInput(
                "transient record_stride must be nonzero",
            ));
        }
        if self.max_iter == 0 {
            return Err(CircuitError::InvalidInput(
                "transient max_iter must be nonzero",
            ));
        }
        if !self.v_tol.is_finite() || self.v_tol <= 0.0 {
            return Err(CircuitError::InvalidInput(
                "transient v_tol must be finite and positive",
            ));
        }
        if let Stepping::AdaptiveLte { tol, h_min, h_max } = self.stepping {
            if self.integrator == Integrator::BackwardEuler {
                return Err(CircuitError::InvalidInput(
                    "adaptive lte stepping needs the trapezoidal integrator (backward Euler is the embedded lower-order member)",
                ));
            }
            if !tol.is_finite() || tol <= 0.0 {
                return Err(CircuitError::InvalidInput(
                    "adaptive lte tol must be finite and positive",
                ));
            }
            if !h_min.is_finite() || h_min <= 0.0 {
                return Err(CircuitError::InvalidInput(
                    "adaptive h_min must be finite and positive",
                ));
            }
            if !h_max.is_finite() || h_max < h_min {
                return Err(CircuitError::InvalidInput(
                    "adaptive h_max must be finite and >= h_min",
                ));
            }
        }
        Ok(())
    }
}

/// Counters describing the work a transient solve performed. Deterministic
/// (no wall-clock): two runs of the same deck and options produce the same
/// stats, so they are safe to assert on in tests and to emit as trace
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Time steps integrated (excluding the recorded `t = 0` state).
    pub steps: u64,
    /// Total Newton iterations across all steps (for the linear fast path:
    /// update-replay iterations, which mirror what the reference Newton
    /// loop would have counted).
    pub newton_iterations: u64,
    /// LU factorizations performed.
    pub factorizations: u64,
    /// Steps solved by reusing a previously computed factorization.
    pub factor_reuses: u64,
    /// Heap allocations attributable to the stepping machinery (workspace
    /// buffers, result storage, per-step scratch), counted at their
    /// allocation sites.
    pub allocations: u64,
    /// The subset of [`SolverStats::allocations`] performed after the first
    /// time step completed. Zero on the fast path — the acceptance gate for
    /// "allocation-free stepping".
    pub post_warmup_allocations: u64,
    /// Whether the run used the cached-factorization linear fast path.
    pub used_linear_fast_path: bool,
    /// Whether the run solved through the sparse path.
    pub used_sparse_path: bool,
    /// Sparse symbolic analyses computed by this run (0 or 1: a cache miss
    /// on the netlist's structural digest).
    pub symbolic_analyses: u64,
    /// Sparse symbolic analyses reused from the process-wide cache (0 or 1:
    /// a cache hit on the netlist's structural digest).
    pub symbolic_reuses: u64,
    /// Number of lanes in the batched solve that produced this result, or
    /// zero when the deck was solved on its own (reference or per-job fast
    /// path). Lane membership does not affect any numeric output — batched
    /// lanes are bit-identical to per-job solves — so this is purely a
    /// work-accounting counter.
    pub batched_lanes: u64,
    /// Internal steps the adaptive LTE controller accepted (zero on the
    /// fixed-grid path, whose steps are unconditional).
    pub steps_accepted: u64,
    /// Internal steps the adaptive LTE controller rejected and retried.
    pub steps_rejected: u64,
    /// Envelope↔cycle fidelity hand-offs performed by a multi-rate run
    /// (zero for plain circuit-level solves; filled in by the closed-loop
    /// multi-rate simulation that owns the hand-off state machine).
    pub mode_switches: u64,
    /// Thousandths of the run's simulated time spent in envelope fidelity
    /// (0 = all cycle-accurate, 1000 = all envelope). An integer so the
    /// value can ride the byte-stable golden trace stream unchanged.
    pub envelope_permille: u64,
}

impl SolverStats {
    /// Fraction of simulated time spent in envelope fidelity, from
    /// [`SolverStats::envelope_permille`].
    pub fn envelope_fraction(&self) -> f64 {
        self.envelope_permille as f64 / 1000.0
    }
}

/// Allocation bookkeeping for [`SolverStats`]: counts allocations at their
/// sites and splits them into warm-up vs. steady-state.
struct AllocCounter {
    warm: bool,
    total: u64,
    post_warmup: u64,
}

impl AllocCounter {
    fn new() -> Self {
        AllocCounter {
            warm: false,
            total: 0,
            post_warmup: 0,
        }
    }

    /// Records `n` allocations just performed.
    fn note(&mut self, n: u64) {
        self.total += n;
        if self.warm {
            self.post_warmup += n;
        }
    }

    /// Marks the end of warm-up (first step complete).
    fn finish_warmup(&mut self) {
        self.warm = true;
    }
}

/// Recorded transient waveforms in contiguous row-major storage: sample `k`
/// occupies `voltages[k·(node_count−1) ..]` and `currents[k·element_count ..]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    node_count: usize,
    element_count: usize,
    /// Row-major node voltages; row `k` is the full node-voltage vector at
    /// `times[k]` (column 0 = node 1; ground is implicit 0).
    voltages: Vec<f64>,
    /// Row-major element currents; row `k` column `e` is element `e`'s
    /// current at `times[k]`.
    currents: Vec<f64>,
    stats: SolverStats,
}

impl TransientResult {
    /// Recorded sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Work counters of the solve that produced this result.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The full node-voltage row of sample `k` (index 0 = node 1; ground is
    /// not stored).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample.
    pub fn voltages_at(&self, k: usize) -> &[f64] {
        let nn = self.node_count - 1;
        &self.voltages[k * nn..(k + 1) * nn]
    }

    /// The full element-current row of sample `k`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample.
    pub fn currents_at(&self, k: usize) -> &[f64] {
        let ec = self.element_count;
        &self.currents[k * ec..(k + 1) * ec]
    }

    /// The entire row-major voltage storage (all samples back to back) —
    /// handy for bitwise comparisons between runs.
    pub fn voltages_flat(&self) -> &[f64] {
        &self.voltages
    }

    /// The entire row-major current storage (all samples back to back).
    pub fn currents_flat(&self) -> &[f64] {
        &self.currents
    }

    /// Voltage trace of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated netlist.
    pub fn voltage_trace(&self, n: NodeId) -> Vec<f64> {
        assert!(n.index() < self.node_count, "node {n} not in result");
        if n.is_ground() {
            return vec![0.0; self.times.len()];
        }
        let nn = self.node_count - 1;
        self.voltages
            .iter()
            .skip(n.index() - 1)
            .step_by(nn.max(1))
            .copied()
            .collect()
    }

    /// Voltage of a node at sample `k`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sample or foreign node.
    pub fn voltage_at(&self, n: NodeId, k: usize) -> f64 {
        assert!(n.index() < self.node_count, "node {n} not in result");
        assert!(k < self.times.len(), "sample {k} out of range");
        if n.is_ground() {
            0.0
        } else {
            self.voltages[k * (self.node_count - 1) + n.index() - 1]
        }
    }

    /// Current trace of one element.
    ///
    /// # Panics
    ///
    /// Panics if the element does not belong to the simulated netlist.
    pub fn current_trace(&self, e: ElementId) -> Vec<f64> {
        assert!(e.index() < self.element_count, "element not in result");
        self.currents
            .iter()
            .skip(e.index())
            .step_by(self.element_count.max(1))
            .copied()
            .collect()
    }

    /// Creates an empty result with pre-sized storage for the batch path.
    pub(crate) fn with_capacity(
        nl: &Netlist,
        samples: usize,
        stats: SolverStats,
    ) -> TransientResult {
        let nn = nl.node_count() - 1;
        TransientResult {
            times: Vec::with_capacity(samples),
            node_count: nl.node_count(),
            element_count: nl.elements().len(),
            voltages: Vec::with_capacity(samples * nn),
            currents: Vec::with_capacity(samples * nl.elements().len()),
            stats,
        }
    }

    /// Mutable access to the work counters (batch path bookkeeping).
    pub(crate) fn stats_mut(&mut self) -> &mut SolverStats {
        &mut self.stats
    }

    /// Appends one sample row. `branch` is the netlist's branch-index table,
    /// hoisted once per run so recording stays linear in element count.
    pub(crate) fn push_sample(
        &mut self,
        nl: &Netlist,
        branch: &[Option<usize>],
        t: f64,
        x: &[f64],
        mode: &Mode<'_>,
    ) {
        self.times.push(t);
        self.voltages.extend_from_slice(&x[..self.node_count - 1]);
        for k in 0..self.element_count {
            self.currents.push(element_current(nl, branch, k, x, mode));
        }
    }

    /// Appends one sample row from pre-computed per-node voltages and
    /// per-element currents (the batch path gathers these lanes-inner and
    /// hands over this lane's column).
    pub(crate) fn push_sample_iters(
        &mut self,
        t: f64,
        volts: impl Iterator<Item = f64>,
        currs: impl Iterator<Item = f64>,
    ) {
        self.times.push(t);
        self.voltages.extend(volts);
        self.currents.extend(currs);
    }
}

/// Number of samples `run_transient` records: `t = 0`, every `stride`-th
/// step, and the final step.
pub(crate) fn sample_count(steps: usize, stride: usize) -> usize {
    1 + steps / stride + usize::from(!steps.is_multiple_of(stride) && steps > 0)
}

/// Number of fixed-size steps a run from 0 to `t_end` takes:
/// `ceil(t_end / dt)`, so any fractional remainder — including one produced
/// purely by floating-point rounding, e.g. `t_end / dt` landing a ulp above
/// an integer — adds a final step past `t_end`.
///
/// This is the **single** definition of the step count: the solo transient
/// path and the batched campaign path both call it, so an FP boundary case
/// cannot give them different step counts (which would silently break their
/// bit-equivalence).
pub(crate) fn step_count(t_end: f64, dt: f64) -> usize {
    (t_end / dt).ceil() as usize
}

/// Runs a transient analysis.
///
/// # Errors
///
/// Propagates Newton convergence failures annotated with the failing time
/// point, DC failures when `use_initial_conditions` is `false`, and
/// [`CircuitError::InvalidInput`] for options rejected by
/// [`TransientOptions::validate`].
pub fn run_transient(nl: &Netlist, opts: &TransientOptions) -> Result<TransientResult> {
    opts.validate()?;
    if let Stepping::AdaptiveLte { tol, h_min, h_max } = opts.stepping {
        return run_transient_adaptive(nl, opts, tol, h_min, h_max);
    }
    let n = nl.unknown_count();
    let path = resolve_solver_path(opts.solver, nl);
    let reference = path == SolverPath::Reference;
    // `n > 0` keeps the degenerate empty deck off the factorization paths
    // (nothing to factor; Newton's early return handles it).
    let sparse = path == SolverPath::Sparse && n > 0;
    let linear_fast = !reference && !sparse && n > 0 && nl.is_linear();
    let sparse_linear = sparse && nl.is_linear();
    let nn = nl.node_count() - 1;
    let mut alloc = AllocCounter::new();

    let mut history = History::from_initial_conditions(nl);
    alloc.note(4); // the four history vectors

    // Starting state.
    let mut x = if opts.use_initial_conditions {
        vec![0.0; n]
    } else {
        let dc = solve_dc_with(nl, &DcOptions::default(), None)?;
        let x = dc.raw().to_vec();
        // Absorb the DC point into the reactive-element history so the first
        // step starts from steady state.
        history.absorb(nl, &x, AbsorbRule::Dc);
        x
    };
    alloc.note(1);

    let steps = step_count(opts.t_end, opts.dt);
    let stride = opts.record_stride;
    let samples = sample_count(steps, stride);
    let mut result = TransientResult {
        times: Vec::with_capacity(samples),
        node_count: nl.node_count(),
        element_count: nl.elements().len(),
        voltages: Vec::with_capacity(samples * nn),
        currents: Vec::with_capacity(samples * nl.elements().len()),
        stats: SolverStats {
            used_linear_fast_path: linear_fast,
            used_sparse_path: sparse,
            ..SolverStats::default()
        },
    };
    alloc.note(3); // times / voltages / currents storage

    // Branch-index table for current recording, hoisted once per run.
    let branch = nl.branch_indices();
    alloc.note(1);

    // Record t = 0 under DC conventions (reactive currents are zero).
    {
        let mode0 = Mode::Dc {
            gmin: 1e-12,
            source_scale: 1.0,
        };
        result.push_sample(nl, &branch, 0.0, &x, &mode0);
    }

    // Persistent workspace for the fast paths. The reference path ignores it
    // and allocates per step, like the historical solver did.
    let mut ws = if reference || sparse {
        None
    } else {
        alloc.note(4); // matrix + rhs + solution + LU storage
        Some(NewtonWorkspace::new(n))
    };
    // Sparse workspace: pattern-fixed matrix plus the cached (or freshly
    // computed) symbolic analysis for this netlist's structure.
    let mut sws = if sparse {
        let pattern = transient_stamp_pattern(nl);
        let a = SparseMatrix::from_pattern(n, &pattern)
            .map_err(|_| CircuitError::InvalidInput("sparse pattern construction failed"))?;
        let (sym, reused) = cached_symbolic(nl, &a)?;
        if reused {
            result.stats.symbolic_reuses += 1;
        } else {
            result.stats.symbolic_analyses += 1;
        }
        alloc.note(6); // pattern + matrix + LU values/work + rhs/solution
        Some(SparseWorkspace::new(a, sym))
    } else {
        None
    };
    let mut factored = false;

    for step in 1..=steps {
        let t = step as f64 * opts.dt;
        let mode = Mode::Transient {
            t,
            dt: opts.dt,
            integrator: opts.integrator,
            history: &history,
        };
        result.stats.steps += 1;

        if let Some(sws) = &mut sws {
            if sparse_linear {
                // Linear deck through the sparse solver: symbolic analysis
                // cached per structure, numeric factorization once per run,
                // substitution per step.
                if !factored {
                    let mut target = SparseStamper::new(&mut sws.a);
                    stamp_linear_matrix(nl, &mode, &mut target);
                    if target.missed {
                        return Err(CircuitError::InvalidInput(
                            "sparse pattern missed a linear stamp",
                        ));
                    }
                    if sws.lu.factor_into(&sws.a).is_err() {
                        return Err(CircuitError::Singular { at: t });
                    }
                    factored = true;
                    result.stats.factorizations += 1;
                } else {
                    result.stats.factor_reuses += 1;
                }
                stamp_linear_rhs(nl, &mode, &mut sws.b);
                if sws.lu.solve_with(&sws.b, &mut sws.xn, &mut sws.y).is_err() {
                    return Err(CircuitError::Singular { at: t });
                }
                result.stats.newton_iterations +=
                    apply_linear_update(&mut x, &sws.xn, nn, opts, t)?;
            } else {
                // Nonlinear deck forced onto the sparse path: full Newton
                // with a numeric refactorization per iteration; the symbolic
                // pattern is reused throughout.
                let iters =
                    newton_solve_sparse_in(nl, &mut x, &mode, opts.max_iter, opts.v_tol, t, sws)?;
                result.stats.newton_iterations += iters;
                result.stats.factorizations += iters;
            }
        } else {
            match &mut ws {
                None => {
                    // Reference: fresh buffers every step, full Newton.
                    let mut step_ws = NewtonWorkspace::new(n);
                    alloc.note(4);
                    let iters = newton_solve_in(
                        nl,
                        &mut x,
                        &mode,
                        opts.max_iter,
                        opts.v_tol,
                        2.0,
                        "transient",
                        t,
                        &mut step_ws,
                    )?;
                    result.stats.newton_iterations += iters;
                    result.stats.factorizations += iters;
                }
                Some(ws) if linear_fast => {
                    // Linear deck: the MNA matrix depends only on (deck, dt,
                    // integrator), so stamp + factor exactly once and reuse the
                    // factorization for every step's substitution.
                    if !factored {
                        stamp_linear_matrix(nl, &mode, &mut ws.a);
                        if ws.lu.factor_into(&ws.a).is_err() {
                            return Err(CircuitError::Singular { at: t });
                        }
                        factored = true;
                        result.stats.factorizations += 1;
                    } else {
                        result.stats.factor_reuses += 1;
                    }
                    stamp_linear_rhs(nl, &mode, &mut ws.b);
                    if ws.lu.solve_into(&ws.b, &mut ws.xn).is_err() {
                        return Err(CircuitError::Singular { at: t });
                    }
                    result.stats.newton_iterations +=
                        apply_linear_update(&mut x, &ws.xn, nn, opts, t)?;
                }
                Some(ws) => {
                    // Nonlinear deck: full Newton, but on persistent buffers.
                    let iters = newton_solve_in(
                        nl,
                        &mut x,
                        &mode,
                        opts.max_iter,
                        opts.v_tol,
                        2.0,
                        "transient",
                        t,
                        ws,
                    )?;
                    result.stats.newton_iterations += iters;
                    result.stats.factorizations += iters;
                }
            }
        }

        if step % stride == 0 || step == steps {
            result.push_sample(nl, &branch, t, &x, &mode);
        }
        // Update history *after* recording so recorded currents use the
        // pre-step history (consistent companion model).
        history.absorb(
            nl,
            &x,
            AbsorbRule::Transient {
                dt: opts.dt,
                integrator: opts.integrator,
            },
        );
        alloc.finish_warmup();
    }

    debug_assert_eq!(result.times.len(), samples, "sample_count mismatch");
    result.stats.allocations = alloc.total;
    result.stats.post_warmup_allocations = alloc.post_warmup;
    Ok(result)
}

/// The LTE-adaptive twin of the fixed-grid loop.
///
/// Each internal step is attempted with the configured (trapezoidal)
/// integrator and its backward-Euler shadow from the same state and
/// history; the infinity-norm difference over node voltages is the
/// local-truncation-error estimate fed to the shared
/// [`StepController`] (the TR/BE embedded pair, controller order 1).
/// Accepted states are linearly interpolated onto the uniform `opts.dt`
/// output grid, so the result has exactly the fixed path's sample times
/// and storage shape. Solves run on the dense workspace engine: linear
/// decks cache one factorization per (step size, integrator) pair —
/// a controller holding its step costs substitutions only — and
/// nonlinear decks run workspace Newton per trial.
fn run_transient_adaptive(
    nl: &Netlist,
    opts: &TransientOptions,
    tol: f64,
    h_min: f64,
    h_max: f64,
) -> Result<TransientResult> {
    let n = nl.unknown_count();
    let nn = nl.node_count() - 1;
    let linear = n > 0 && nl.is_linear();
    let mut alloc = AllocCounter::new();

    let mut history = History::from_initial_conditions(nl);
    alloc.note(4);
    let mut x = if opts.use_initial_conditions {
        vec![0.0; n]
    } else {
        let dc = solve_dc_with(nl, &DcOptions::default(), None)?;
        let x = dc.raw().to_vec();
        history.absorb(nl, &x, AbsorbRule::Dc);
        x
    };
    alloc.note(1);

    let steps = step_count(opts.t_end, opts.dt);
    let stride = opts.record_stride;
    let samples = sample_count(steps, stride);
    let mut result = TransientResult {
        times: Vec::with_capacity(samples),
        node_count: nl.node_count(),
        element_count: nl.elements().len(),
        voltages: Vec::with_capacity(samples * nn),
        currents: Vec::with_capacity(samples * nl.elements().len()),
        stats: SolverStats {
            used_linear_fast_path: linear,
            ..SolverStats::default()
        },
    };
    alloc.note(3);
    let branch = nl.branch_indices();
    alloc.note(1);
    {
        let mode0 = Mode::Dc {
            gmin: 1e-12,
            source_scale: 1.0,
        };
        result.push_sample(nl, &branch, 0.0, &x, &mode0);
    }

    let controller = StepController::new(tol, h_min, h_max, 1)
        .map_err(|_| CircuitError::InvalidInput("adaptive controller rejected its bounds"))?;
    // Two persistent workspaces: the trapezoidal member and its
    // backward-Euler shadow keep separate cached factorizations, so a
    // controller holding its step size refactors nothing.
    let mut ws_hi = NewtonWorkspace::new(n);
    let mut ws_lo = NewtonWorkspace::new(n);
    alloc.note(8);
    let mut x_hi = vec![0.0; n];
    let mut x_lo = vec![0.0; n];
    let mut x_rec = vec![0.0; n];
    alloc.note(3);
    let mut key_hi: Option<u64> = None;
    let mut key_lo: Option<u64> = None;

    // Integrate to the fixed path's grid end (`steps · dt`, which step_count
    // rounds past t_end), so every output grid point is covered.
    let t_final = steps as f64 * opts.dt;
    let mut t = 0.0f64;
    let mut h = controller.clamp(opts.dt);
    let mut next_grid = 1usize;

    // The stored reactive history at t = 0 is not necessarily consistent
    // with the post-step derivative (a source discontinuity leaves the
    // capacitor currents stale), which turns the TR/BE pair difference
    // into an O(h) artifact no step size can push below tolerance. Take
    // one backward-Euler start-up step at the minimum size to establish
    // a consistent history before the error-controlled pair loop begins.
    if t < t_final {
        let clamped = controller.h_min() >= t_final - t;
        let h_try = if clamped {
            t_final - t
        } else {
            controller.h_min()
        };
        let t_new = if clamped { t_final } else { t + h_try };
        x_lo.copy_from_slice(&x);
        adaptive_trial_step(
            nl,
            &mut x_lo,
            t_new,
            h_try,
            Integrator::BackwardEuler,
            &history,
            opts,
            linear,
            &mut ws_lo,
            &mut key_lo,
            &mut result.stats,
        )?;
        result.stats.steps += 1;
        result.stats.steps_accepted += 1;
        let mode = Mode::Transient {
            t: t_new,
            dt: h_try,
            integrator: Integrator::BackwardEuler,
            history: &history,
        };
        while next_grid <= steps {
            let g = next_grid as f64 * opts.dt;
            if g > t_new {
                break;
            }
            if next_grid.is_multiple_of(stride) || next_grid == steps {
                let w = ((g - t) / h_try).clamp(0.0, 1.0);
                for i in 0..n {
                    x_rec[i] = x[i] + w * (x_lo[i] - x[i]);
                }
                result.push_sample(nl, &branch, g, &x_rec, &mode);
            }
            next_grid += 1;
        }
        x.copy_from_slice(&x_lo);
        history.absorb(
            nl,
            &x,
            AbsorbRule::Transient {
                dt: h_try,
                integrator: Integrator::BackwardEuler,
            },
        );
        t = t_new;
        alloc.finish_warmup();
    }

    while t < t_final {
        // Land the final step exactly on the grid end.
        let clamped = h >= t_final - t;
        let h_try = if clamped { t_final - t } else { h };
        let t_new = if clamped { t_final } else { t + h };

        x_hi.copy_from_slice(&x);
        adaptive_trial_step(
            nl,
            &mut x_hi,
            t_new,
            h_try,
            opts.integrator,
            &history,
            opts,
            linear,
            &mut ws_hi,
            &mut key_hi,
            &mut result.stats,
        )?;
        x_lo.copy_from_slice(&x);
        adaptive_trial_step(
            nl,
            &mut x_lo,
            t_new,
            h_try,
            Integrator::BackwardEuler,
            &history,
            opts,
            linear,
            &mut ws_lo,
            &mut key_lo,
            &mut result.stats,
        )?;

        let mut err = 0.0f64;
        for i in 0..nn {
            err = err.max((x_hi[i] - x_lo[i]).abs());
        }

        match controller.decide(h_try, err) {
            StepDecision::Accept { h_next } => {
                result.stats.steps += 1;
                result.stats.steps_accepted += 1;
                // Record every uniform grid point this step crossed,
                // linearly interpolated between the step endpoints; the
                // recording mode mirrors the fixed path (pre-step history).
                let mode = Mode::Transient {
                    t: t_new,
                    dt: h_try,
                    integrator: opts.integrator,
                    history: &history,
                };
                while next_grid <= steps {
                    let g = next_grid as f64 * opts.dt;
                    if g > t_new {
                        break;
                    }
                    if next_grid.is_multiple_of(stride) || next_grid == steps {
                        let w = ((g - t) / h_try).clamp(0.0, 1.0);
                        for i in 0..n {
                            x_rec[i] = x[i] + w * (x_hi[i] - x[i]);
                        }
                        result.push_sample(nl, &branch, g, &x_rec, &mode);
                    }
                    next_grid += 1;
                }
                x.copy_from_slice(&x_hi);
                history.absorb(
                    nl,
                    &x,
                    AbsorbRule::Transient {
                        dt: h_try,
                        integrator: opts.integrator,
                    },
                );
                t = t_new;
                h = h_next;
            }
            StepDecision::Reject { h_next } => {
                result.stats.steps_rejected += 1;
                h = h_next;
            }
            StepDecision::Stall => {
                return Err(CircuitError::StepStall {
                    at: t,
                    h_min: controller.h_min(),
                });
            }
        }
        alloc.finish_warmup();
    }

    debug_assert_eq!(result.times.len(), samples, "sample_count mismatch");
    result.stats.allocations = alloc.total;
    result.stats.post_warmup_allocations = alloc.post_warmup;
    Ok(result)
}

/// One trial step of the adaptive pair: advances `x` by `h` to time `t`
/// with the given integrator against the shared pre-step history. Linear
/// decks reuse the workspace's factorization while `(h, integrator)` is
/// unchanged (`factored_h` carries the step-size bits that workspace last
/// factored for); nonlinear decks run workspace Newton.
#[allow(clippy::too_many_arguments)]
fn adaptive_trial_step(
    nl: &Netlist,
    x: &mut [f64],
    t: f64,
    h: f64,
    integrator: Integrator,
    history: &History,
    opts: &TransientOptions,
    linear: bool,
    ws: &mut NewtonWorkspace,
    factored_h: &mut Option<u64>,
    stats: &mut SolverStats,
) -> Result<()> {
    let mode = Mode::Transient {
        t,
        dt: h,
        integrator,
        history,
    };
    if linear {
        if *factored_h != Some(h.to_bits()) {
            stamp_linear_matrix(nl, &mode, &mut ws.a);
            if ws.lu.factor_into(&ws.a).is_err() {
                return Err(CircuitError::Singular { at: t });
            }
            *factored_h = Some(h.to_bits());
            stats.factorizations += 1;
        } else {
            stats.factor_reuses += 1;
        }
        stamp_linear_rhs(nl, &mode, &mut ws.b);
        if ws.lu.solve_into(&ws.b, &mut ws.xn).is_err() {
            return Err(CircuitError::Singular { at: t });
        }
        stats.newton_iterations += apply_linear_update(x, &ws.xn, nl.node_count() - 1, opts, t)?;
    } else {
        let iters = newton_solve_in(
            nl,
            x,
            &mode,
            opts.max_iter,
            opts.v_tol,
            2.0,
            "transient",
            t,
            ws,
        )?;
        stats.newton_iterations += iters;
        stats.factorizations += iters;
    }
    Ok(())
}

/// The solver path forced by the `LCOSC_SOLVER` environment variable, if
/// any. Recognized values: `reference`, `dense`, `sparse`. Anything else —
/// including the historical typo-guard cases — is ignored, leaving the
/// caller's configured path in charge.
pub(crate) fn solver_path_forced() -> Option<SolverPath> {
    let v = std::env::var_os("LCOSC_SOLVER")?;
    if v == "reference" {
        Some(SolverPath::Reference)
    } else if v == "dense" {
        Some(SolverPath::Dense)
    } else if v == "sparse" {
        Some(SolverPath::Sparse)
    } else {
        None
    }
}

/// Whether the `LCOSC_SOLVER=reference` escape hatch is active.
#[cfg(test)]
pub(crate) fn reference_path_forced() -> bool {
    matches!(solver_path_forced(), Some(SolverPath::Reference))
}

/// Resolves the effective solver path: the environment hatch wins over the
/// configured path, then [`SolverPath::Auto`] picks dense below
/// [`SPARSE_MIN_UNKNOWNS`] unknowns and sparse at or above it — linear
/// decks only. Nonlinear decks stay dense under `Auto`: an off-state device
/// can zero a conductance that the structure-only sparse pivot order relies
/// on, where dense partial pivoting recovers.
pub(crate) fn resolve_solver_path(configured: SolverPath, nl: &Netlist) -> SolverPath {
    let requested = solver_path_forced().unwrap_or(configured);
    match requested {
        SolverPath::Auto => {
            if nl.unknown_count() >= SPARSE_MIN_UNKNOWNS && nl.is_linear() {
                SolverPath::Sparse
            } else {
                SolverPath::Dense
            }
        }
        forced => forced,
    }
}

/// Process-wide symbolic-analysis cache keyed by the netlist's structural
/// digest. The symbolic result is a pure function of the structure, so a
/// cache hit is observationally identical to recomputing — whichever thread
/// populated the entry, factorization results are the same bits.
fn cached_symbolic(nl: &Netlist, a: &SparseMatrix) -> Result<(Arc<SparseSymbolic>, bool)> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<SparseSymbolic>>>> = OnceLock::new();
    let key = nl.structural_digest();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Ok(map) = cache.lock() {
        if let Some(sym) = map.get(&key) {
            // Digest collisions are astronomically unlikely; the dimension
            // check (and the pattern check inside `factor_into`) turn one
            // into a typed error instead of a wrong answer.
            if sym.dim() == a.dim() {
                return Ok((Arc::clone(sym), true));
            }
        }
    }
    let sym = Arc::new(SparseSymbolic::analyze(a).map_err(|_| CircuitError::Singular { at: 0.0 })?);
    if let Ok(mut map) = cache.lock() {
        map.insert(key, Arc::clone(&sym));
    }
    Ok((sym, false))
}

/// Persistent buffers for the sparse path: the pattern-fixed matrix, the
/// numeric factorization (holding the shared symbolic analysis), RHS,
/// solution and substitution scratch. Sized once; stepping is
/// allocation-free.
struct SparseWorkspace {
    a: SparseMatrix,
    lu: SparseLu,
    b: Vec<f64>,
    xn: Vec<f64>,
    y: Vec<f64>,
}

impl SparseWorkspace {
    fn new(a: SparseMatrix, sym: Arc<SparseSymbolic>) -> Self {
        let n = a.dim();
        SparseWorkspace {
            a,
            lu: SparseLu::new(sym),
            b: vec![0.0; n],
            xn: vec![0.0; n],
            y: vec![0.0; n],
        }
    }
}

/// The sparse twin of `newton_solve_in`: identical Newton iteration
/// (clamped node-voltage updates, branch currents free, same convergence
/// test), but restamping into the pattern-fixed sparse matrix and running a
/// numeric refactorization per iteration on the cached symbolic pattern.
fn newton_solve_sparse_in(
    nl: &Netlist,
    x: &mut [f64],
    mode: &Mode<'_>,
    max_iter: usize,
    v_tol: f64,
    at: f64,
    sws: &mut SparseWorkspace,
) -> Result<u64> {
    let nn = nl.node_count() - 1;
    if x.is_empty() {
        return Ok(0);
    }
    for iter in 1..=max_iter {
        let mut target = SparseStamper::new(&mut sws.a);
        build_system(nl, x, mode, &mut target, &mut sws.b);
        if target.missed {
            return Err(CircuitError::InvalidInput(
                "sparse pattern missed a companion stamp",
            ));
        }
        if sws.lu.factor_into(&sws.a).is_err() {
            return Err(CircuitError::Singular { at });
        }
        if sws.lu.solve_with(&sws.b, &mut sws.xn, &mut sws.y).is_err() {
            return Err(CircuitError::Singular { at });
        }
        let mut max_delta = 0.0f64;
        for (i, xi) in x.iter_mut().enumerate() {
            let mut delta = sws.xn[i] - *xi;
            if i < nn {
                // Limit node-voltage moves; branch currents are left free.
                delta = delta.clamp(-2.0, 2.0);
                max_delta = max_delta.max(delta.abs());
            }
            *xi += delta;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::NoConvergence {
                analysis: "transient",
                at,
            });
        }
        if max_delta < v_tol {
            return Ok(iter as u64);
        }
    }
    Err(CircuitError::NoConvergence {
        analysis: "transient",
        at,
    })
}

/// Replays the reference Newton update loop against the (iterate-
/// independent) linear solution `xn`, returning the iteration count.
///
/// On a linear deck the stamped system never reads `x`, so every reference
/// Newton iteration solves the identical system and obtains the identical
/// `xn`; only the clamped update `x[i] += clamp(xn[i] − x[i])` evolves.
/// Repeating exactly that update against the single cached solution
/// therefore reproduces the reference iterates — including their final
/// rounding — bit for bit.
pub(crate) fn apply_linear_update(
    x: &mut [f64],
    xn: &[f64],
    nn: usize,
    opts: &TransientOptions,
    t: f64,
) -> Result<u64> {
    for iter in 1..=opts.max_iter {
        let mut max_delta = 0.0f64;
        for i in 0..x.len() {
            let mut delta = xn[i] - x[i];
            if i < nn {
                // Limit node-voltage moves; branch currents are left free.
                delta = delta.clamp(-2.0, 2.0);
                max_delta = max_delta.max(delta.abs());
            }
            x[i] += delta;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::NoConvergence {
                analysis: "transient",
                at: t,
            });
        }
        if max_delta < opts.v_tol {
            return Ok(iter as u64);
        }
    }
    Err(CircuitError::NoConvergence {
        analysis: "transient",
        at: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn rc_charge_curve() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6); // tau = 1 ms
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let v_end = *res.voltage_trace(out).last().unwrap();
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_end - expect).abs() < 1e-3, "{v_end} vs {expect}");
    }

    #[test]
    fn rc_from_dc_operating_point_stays_flat() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(2.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        let mut opts = TransientOptions::new(1e-5, 5e-4);
        opts.use_initial_conditions = false;
        let res = run_transient(&nl, &opts).unwrap();
        for &v in &res.voltage_trace(out) {
            assert!((v - 2.0).abs() < 1e-6, "drifted to {v}");
        }
    }

    #[test]
    fn lc_tank_oscillates_at_resonance() {
        // 1 µH with 1 µF -> f0 = 1/(2π·1µ) ≈ 159.15 kHz
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let opts = TransientOptions::new(5e-9, 40e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let f = lcosc_num::ode::frequency_from_crossings(0.0, 5e-9, &trace).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-6);
        assert!((f / f0 - 1.0).abs() < 0.01, "f {f} vs {f0}");
    }

    #[test]
    fn trapezoidal_preserves_lc_amplitude_better_than_be() {
        let build = || {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
            nl.inductor(a, Netlist::GROUND, 1e-6);
            (nl, a)
        };
        let run = |integrator| {
            let (nl, a) = build();
            let mut opts = TransientOptions::new(2e-8, 60e-6);
            opts.integrator = integrator;
            let res = run_transient(&nl, &opts).unwrap();
            let trace = res.voltage_trace(a);
            trace[trace.len() / 2..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let amp_trap = run(Integrator::Trapezoidal);
        let amp_be = run(Integrator::BackwardEuler);
        assert!(amp_trap > 0.95, "trapezoidal amplitude {amp_trap}");
        assert!(amp_be < amp_trap, "BE should damp: {amp_be} vs {amp_trap}");
    }

    #[test]
    fn sine_source_passes_through() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(
            a,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e6,
                phase: 0.0,
            },
        );
        nl.resistor(a, Netlist::GROUND, 1e3);
        let opts = TransientOptions::new(1e-9, 2e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let trace = res.voltage_trace(a);
        let peak = trace.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 1e-3);
    }

    #[test]
    fn record_stride_thins_output() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let mut opts = TransientOptions::new(1e-6, 1e-4);
        opts.record_stride = 10;
        let res = run_transient(&nl, &opts).unwrap();
        assert!(res.len() <= 12, "{} samples", res.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn inductor_current_ramp() {
        // V = L di/dt: 1 V across 1 mH ramps 1 A/ms.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let l = nl.inductor(a, Netlist::GROUND, 1e-3);
        let opts = TransientOptions::new(1e-6, 1e-3);
        let res = run_transient(&nl, &opts).unwrap();
        let i_end = *res.current_trace(l).last().unwrap();
        assert!((i_end - 1.0).abs() < 2e-3, "i {i_end}");
    }

    #[test]
    fn voltage_at_and_ground_queries() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1.0);
        let res = run_transient(&nl, &TransientOptions::new(1e-6, 1e-5)).unwrap();
        assert_eq!(res.voltage_at(Netlist::GROUND, 0), 0.0);
        assert!((res.voltage_at(a, res.len() - 1) - 1.0).abs() < 1e-9);
        assert_eq!(res.voltage_trace(Netlist::GROUND).len(), res.len());
    }

    #[test]
    fn validate_rejects_degenerate_options() {
        let base = TransientOptions::new(1e-6, 1e-3);
        assert!(base.validate().is_ok());
        for bad in [
            TransientOptions { dt: 0.0, ..base },
            TransientOptions {
                dt: f64::NAN,
                ..base
            },
            TransientOptions {
                dt: f64::INFINITY,
                ..base
            },
            TransientOptions {
                t_end: -1.0,
                ..base
            },
            TransientOptions {
                t_end: f64::NAN,
                ..base
            },
            TransientOptions {
                record_stride: 0,
                ..base
            },
            TransientOptions {
                max_iter: 0,
                ..base
            },
            TransientOptions { v_tol: 0.0, ..base },
            TransientOptions {
                v_tol: f64::NAN,
                ..base
            },
        ] {
            let err = bad.validate().expect_err("should reject");
            assert!(matches!(err, CircuitError::InvalidInput(_)), "{err}");
            // run_transient surfaces the same typed error.
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.resistor(a, Netlist::GROUND, 1.0);
            assert_eq!(run_transient(&nl, &bad).expect_err("reject"), err);
        }
    }

    #[test]
    fn linear_fast_path_stats_show_single_factorization() {
        if reference_path_forced() {
            return; // hatch disables the path under test
        }
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let opts = TransientOptions::new(5e-9, 5e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(s.used_linear_fast_path);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.factor_reuses, s.steps - 1);
        assert_eq!(s.post_warmup_allocations, 0, "stepping must not allocate");
        assert!(s.newton_iterations >= s.steps);
    }

    #[test]
    fn reference_path_stats_show_per_step_factorization() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor_ic(a, Netlist::GROUND, 1e-6, 1.0);
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let mut opts = TransientOptions::new(5e-9, 5e-6);
        opts.solver = SolverPath::Reference;
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(!s.used_linear_fast_path);
        assert_eq!(s.factorizations, s.newton_iterations);
        assert_eq!(s.factor_reuses, 0);
        assert!(s.post_warmup_allocations > 0, "reference path allocates");
    }

    #[test]
    fn nonlinear_deck_uses_workspace_newton_without_allocating() {
        if reference_path_forced() {
            return; // hatch disables the path under test
        }
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.diode(
            out,
            Netlist::GROUND,
            lcosc_device::diode::DiodeModel::default(),
        );
        nl.capacitor(out, Netlist::GROUND, 1e-9);
        let opts = TransientOptions::new(1e-8, 1e-6);
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(!s.used_linear_fast_path);
        assert_eq!(s.factorizations, s.newton_iterations);
        assert_eq!(s.post_warmup_allocations, 0, "workspace must be reused");
    }

    #[test]
    fn flat_row_accessors_agree_with_traces() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        let res = run_transient(&nl, &TransientOptions::new(1e-6, 1e-4)).unwrap();
        let trace = res.voltage_trace(out);
        for (k, &traced) in trace.iter().enumerate() {
            assert_eq!(res.voltages_at(k)[out.index() - 1], traced);
            assert_eq!(res.voltages_at(k).len(), 2);
            assert_eq!(res.currents_at(k).len(), 3);
        }
        assert_eq!(trace.len(), res.len());
        assert_eq!(res.voltages_flat().len(), res.len() * 2);
        assert_eq!(res.currents_flat().len(), res.len() * 3);
    }

    #[test]
    fn sample_count_matches_recording_rule() {
        for steps in 0..40usize {
            for stride in 1..7usize {
                let expect = (1..=steps)
                    .filter(|s| s % stride == 0 || *s == steps)
                    .count()
                    + 1;
                assert_eq!(
                    sample_count(steps, stride),
                    expect,
                    "steps {steps} stride {stride}"
                );
            }
        }
    }

    #[test]
    fn step_count_pins_fp_boundary_semantics() {
        // Exact quotients stay exact.
        assert_eq!(step_count(1.0, 0.25), 4);
        assert_eq!(step_count(1e-6, 1e-9), 1000);
        // A quotient a hair above an integer rounds up to an extra step.
        let t_end = 0.25 * (4.0 + f64::EPSILON * 8.0);
        assert_eq!(step_count(t_end, 0.25), 5);
        // The classic inexact-decimal case: 0.3 / 0.1 is slightly below 3
        // in binary, so it must NOT round up to 4.
        assert_eq!(step_count(0.3, 0.1), 3);
        // Fractional remainders always add the final partial step.
        assert_eq!(step_count(1.05, 0.25), 5);
        // Degenerate but well-defined: zero duration takes zero steps.
        assert_eq!(step_count(0.0, 0.25), 0);
    }

    #[test]
    fn step_count_is_the_shared_solo_and_batch_definition() {
        // The solo path records `step_count` steps; pin the observable
        // count through a real run so a future divergence in either caller
        // is caught here.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.current_source(a, Netlist::GROUND, Waveform::Dc(1e-3));
        nl.resistor(a, Netlist::GROUND, 1e3);
        let res = run_transient(&nl, &TransientOptions::new(0.25e-9, 1.05e-9)).unwrap();
        assert_eq!(res.stats().steps, step_count(1.05e-9, 0.25e-9) as u64);
    }

    #[test]
    fn resolve_solver_path_auto_splits_on_size_and_linearity() {
        if solver_path_forced().is_some() {
            return;
        }
        let small = crate::workloads::rc_ladder(4);
        assert_eq!(
            resolve_solver_path(SolverPath::Auto, &small),
            SolverPath::Dense
        );
        let large = crate::workloads::rc_ladder(200);
        assert!(large.unknown_count() >= SPARSE_MIN_UNKNOWNS);
        assert_eq!(
            resolve_solver_path(SolverPath::Auto, &large),
            SolverPath::Sparse
        );
        // Nonlinear decks stay dense under Auto regardless of size.
        let mut nonlinear = crate::workloads::rc_ladder(200);
        let a = nonlinear.node("d");
        nonlinear.diode(
            a,
            Netlist::GROUND,
            lcosc_device::diode::DiodeModel::default(),
        );
        assert_eq!(
            resolve_solver_path(SolverPath::Auto, &nonlinear),
            SolverPath::Dense
        );
        // Explicit configuration passes through untouched.
        assert_eq!(
            resolve_solver_path(SolverPath::Sparse, &small),
            SolverPath::Sparse
        );
        assert_eq!(
            resolve_solver_path(SolverPath::Dense, &large),
            SolverPath::Dense
        );
    }

    #[test]
    fn adaptive_matches_fixed_grid_on_rc_charge() {
        let build = || {
            let mut nl = Netlist::new();
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
            nl.resistor(vin, out, 1e3);
            nl.capacitor(out, Netlist::GROUND, 1e-6); // tau = 1 ms
            (nl, out)
        };
        let (nl, out) = build();
        let fixed_opts = TransientOptions::new(1e-7, 1e-3);
        let fixed = run_transient(&nl, &fixed_opts).unwrap();
        let adaptive_opts = fixed_opts.with_adaptive_lte(1e-6);
        let adaptive = run_transient(&nl, &adaptive_opts).unwrap();
        // Identical output grid, bitwise.
        assert_eq!(fixed.times(), adaptive.times());
        assert_eq!(adaptive.len(), fixed.len());
        // The adaptive run tracks the analytic charge curve within the
        // accumulated LTE band, and stays inside the fixed path's
        // start-up-artifact envelope (the fixed trapezoidal run carries a
        // decaying O(dt) error from its inconsistent t = 0 history).
        let tau = 1e-3;
        for ((&t, f), a) in adaptive
            .times()
            .iter()
            .zip(fixed.voltage_trace(out).iter())
            .zip(adaptive.voltage_trace(out).iter())
        {
            let exact = 1.0 - (-t / tau).exp();
            assert!((a - exact).abs() < 5e-4, "adaptive {a} vs exact {exact}");
            assert!((f - a).abs() < 1e-3, "fixed {f} vs adaptive {a}");
        }
        // The controller must have grown the step well past dt on this
        // smooth trajectory: far fewer internal steps than grid points.
        let s = adaptive.stats();
        assert!(s.steps_accepted > 0);
        assert_eq!(s.steps, s.steps_accepted);
        assert!(
            s.steps_accepted < fixed.stats().steps / 4,
            "adaptive took {} steps vs fixed {}",
            s.steps_accepted,
            fixed.stats().steps
        );
        // Fixed-path runs leave the adaptive counters at zero.
        assert_eq!(fixed.stats().steps_accepted, 0);
        assert_eq!(fixed.stats().steps_rejected, 0);
    }

    #[test]
    fn adaptive_holds_step_without_refactoring() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1e3);
        // A purely resistive deck has zero LTE: the controller pins the
        // step at h_max immediately, and each member workspace factors once.
        let mut opts = TransientOptions::new(1e-6, 1e-4);
        opts.stepping = Stepping::AdaptiveLte {
            tol: 1e-9,
            h_min: 1e-6,
            h_max: 4e-6,
        };
        let res = run_transient(&nl, &opts).unwrap();
        let s = res.stats();
        assert!(s.used_linear_fast_path);
        // One factorization per (step size, integrator member) seen; the
        // growth phase 1µs→4µs passes through at most a few sizes.
        assert!(
            s.factorizations <= 8,
            "expected cached factors, saw {} factorizations",
            s.factorizations
        );
        assert!(s.factor_reuses > s.factorizations);
    }

    #[test]
    fn adaptive_nonlinear_deck_agrees_with_fixed() {
        let build = || {
            let mut nl = Netlist::new();
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
            nl.resistor(vin, out, 1e3);
            nl.diode(
                out,
                Netlist::GROUND,
                lcosc_device::diode::DiodeModel::default(),
            );
            nl.capacitor(out, Netlist::GROUND, 1e-9);
            (nl, out)
        };
        let (nl, out) = build();
        // Reference: a 10× finer fixed grid thinned back onto the adaptive
        // run's sample times (the coarse fixed grid's own start-up
        // trapezoidal artifact would dominate the comparison band).
        let mut fine_opts = TransientOptions::new(1e-9, 1e-6);
        fine_opts.record_stride = 10;
        let fixed = run_transient(&nl, &fine_opts).unwrap();
        let adaptive = run_transient(
            &nl,
            &TransientOptions::new(1e-8, 1e-6).with_adaptive_lte(1e-7),
        )
        .unwrap();
        assert_eq!(fixed.len(), adaptive.len());
        for (f, a) in fixed
            .voltage_trace(out)
            .iter()
            .zip(adaptive.voltage_trace(out).iter())
        {
            assert!((f - a).abs() < 1e-3, "fixed {f} vs adaptive {a}");
        }
        assert!(adaptive.stats().steps_accepted > 0);
    }

    #[test]
    fn adaptive_stall_is_a_typed_error() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-6);
        // An unreachable tolerance with no room to shrink: the controller
        // must stall with the typed error, not clamp-and-accept.
        let mut opts = TransientOptions::new(1e-6, 1e-3);
        opts.stepping = Stepping::AdaptiveLte {
            tol: 1e-300,
            h_min: 1e-6,
            h_max: 1e-6,
        };
        match run_transient(&nl, &opts) {
            Err(CircuitError::StepStall { at, h_min }) => {
                // The backward-Euler start-up step is always accepted, so
                // the stall lands after exactly one h_min-sized step.
                assert_eq!(at, 1e-6);
                assert_eq!(h_min, 1e-6);
            }
            other => panic!("expected StepStall, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_validation_rejects_degenerate_controllers() {
        let base = TransientOptions::new(1e-6, 1e-3);
        let with = |stepping| TransientOptions { stepping, ..base };
        for bad in [
            with(Stepping::AdaptiveLte {
                tol: 0.0,
                h_min: 1e-9,
                h_max: 1e-6,
            }),
            with(Stepping::AdaptiveLte {
                tol: 1e-6,
                h_min: 0.0,
                h_max: 1e-6,
            }),
            with(Stepping::AdaptiveLte {
                tol: 1e-6,
                h_min: 1e-6,
                h_max: 1e-9,
            }),
            with(Stepping::AdaptiveLte {
                tol: f64::NAN,
                h_min: 1e-9,
                h_max: 1e-6,
            }),
            TransientOptions {
                integrator: Integrator::BackwardEuler,
                ..base.with_adaptive_lte(1e-6)
            },
        ] {
            assert!(matches!(bad.validate(), Err(CircuitError::InvalidInput(_))));
        }
    }

    #[test]
    fn forced_sparse_runs_nonlinear_newton() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 100.0);
        nl.diode(
            out,
            Netlist::GROUND,
            lcosc_device::diode::DiodeModel::default(),
        );
        nl.capacitor(out, Netlist::GROUND, 1e-9);
        let mut opts = TransientOptions::new(1e-9, 50e-9);
        opts.solver = SolverPath::Sparse;
        let mut dense_opts = TransientOptions::new(1e-9, 50e-9);
        dense_opts.solver = SolverPath::Dense;
        if solver_path_forced().is_some() {
            return;
        }
        let sparse = run_transient(&nl, &opts).unwrap();
        let dense = run_transient(&nl, &dense_opts).unwrap();
        assert!(sparse.stats().used_sparse_path);
        assert!(!dense.stats().used_sparse_path);
        // Nonlinear sparse refactors every Newton iteration.
        assert_eq!(sparse.stats().factor_reuses, 0);
        assert!(sparse.stats().factorizations >= sparse.stats().steps);
        for (s, d) in sparse
            .voltages_flat()
            .iter()
            .zip(dense.voltages_flat().iter())
        {
            assert!((s - d).abs() < 1e-9, "sparse {s} vs dense {d}");
        }
    }
}
