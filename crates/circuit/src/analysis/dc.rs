//! DC operating-point analysis: Newton–Raphson with gmin stepping and
//! source stepping fallbacks.

use crate::analysis::newton_solve;
use crate::netlist::{ElementId, Netlist, NodeId};
use crate::stamp::{element_current, Mode};
use crate::Result;

/// Options controlling the DC solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Newton iteration budget per continuation step.
    pub max_iter: usize,
    /// Convergence tolerance on node-voltage updates, volts.
    pub v_tol: f64,
    /// Per-iteration node-voltage step limit, volts.
    pub v_step_limit: f64,
    /// Final gmin left in place (0 disables; keep small but non-zero for
    /// floating nodes such as an unsupplied Vdd rail).
    pub gmin_final: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iter: 200,
            v_tol: 1e-9,
            v_step_limit: 2.0,
            gmin_final: 1e-12,
        }
    }
}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    x: Vec<f64>,
    node_count: usize,
    currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage of a node relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved netlist.
    pub fn voltage(&self, n: NodeId) -> f64 {
        assert!(n.index() < self.node_count, "node {n} not in solution");
        if n.is_ground() {
            0.0
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Current through an element (see [`crate::netlist::Element`] docs for
    /// sign conventions; for a voltage source, positive current flows from
    /// the positive terminal through the source).
    ///
    /// # Panics
    ///
    /// Panics if the element does not belong to the solved netlist.
    pub fn current(&self, e: ElementId) -> f64 {
        self.currents[e.index()]
    }

    /// Raw unknown vector (node voltages then branch currents) — useful as
    /// a warm start for continuation.
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Solves the DC operating point with default options.
///
/// # Errors
///
/// Returns [`crate::CircuitError::NoConvergence`] when Newton, gmin
/// stepping *and* source stepping all fail, or
/// [`crate::CircuitError::Singular`] for a structurally singular netlist.
pub fn solve_dc(nl: &Netlist) -> Result<DcSolution> {
    solve_dc_with(nl, &DcOptions::default(), None)
}

/// Solves the DC operating point with explicit options and an optional warm
/// start (e.g. the previous point of a sweep).
///
/// # Errors
///
/// See [`solve_dc`].
pub fn solve_dc_with(
    nl: &Netlist,
    opts: &DcOptions,
    warm_start: Option<&[f64]>,
) -> Result<DcSolution> {
    let n = nl.unknown_count();
    let x0: Vec<f64> = match warm_start {
        Some(w) if w.len() == n => w.to_vec(),
        _ => vec![0.0; n],
    };

    let mode_final = Mode::Dc {
        gmin: opts.gmin_final,
        source_scale: 1.0,
    };

    // 1. Direct Newton from the warm start.
    let direct = newton_solve(
        nl,
        &x0,
        &mode_final,
        opts.max_iter,
        opts.v_tol,
        opts.v_step_limit,
        "dc",
        0.0,
    );
    let x = match direct {
        Ok(x) => x,
        Err(_) => {
            // 2. gmin stepping: relax then tighten.
            let mut x = x0.clone();
            let mut ok = true;
            for gmin in [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, opts.gmin_final.max(1e-14)] {
                let mode = Mode::Dc {
                    gmin,
                    source_scale: 1.0,
                };
                match newton_solve(
                    nl,
                    &x,
                    &mode,
                    opts.max_iter,
                    opts.v_tol,
                    opts.v_step_limit,
                    "dc",
                    0.0,
                ) {
                    Ok(xn) => x = xn,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                x
            } else {
                // 3. Source stepping at a mildly relaxed gmin.
                let mut x = x0.clone();
                for step in 1..=10 {
                    let scale = step as f64 / 10.0;
                    let mode = Mode::Dc {
                        gmin: opts.gmin_final.max(1e-12),
                        source_scale: scale,
                    };
                    x = newton_solve(
                        nl,
                        &x,
                        &mode,
                        opts.max_iter,
                        opts.v_tol,
                        opts.v_step_limit,
                        "dc",
                        scale,
                    )?;
                }
                x
            }
        }
    };

    let branch = nl.branch_indices();
    let currents = (0..nl.elements().len())
        .map(|k| element_current(nl, &branch, k, &x, &mode_final))
        .collect();
    Ok(DcSolution {
        x,
        node_count: nl.node_count(),
        currents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;
    use lcosc_device::diode::DiodeModel;
    use lcosc_device::mos::MosModel;

    #[test]
    fn voltage_divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(10.0));
        nl.resistor(vin, out, 1e3);
        nl.resistor(out, Netlist::GROUND, 3e3);
        let s = solve_dc(&nl).unwrap();
        assert!((s.voltage(out) - 7.5).abs() < 1e-6);
        assert_eq!(s.voltage(Netlist::GROUND), 0.0);
    }

    #[test]
    fn source_current_through_divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let v = nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(10.0));
        nl.resistor(vin, Netlist::GROUND, 2e3);
        let s = solve_dc(&nl).unwrap();
        // 5 mA flows out of the + terminal, i.e. -5 mA through the source.
        assert!((s.current(v) + 5e-3).abs() < 1e-8);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.current_source(a, Netlist::GROUND, Waveform::Dc(1e-3));
        nl.resistor(a, Netlist::GROUND, 1e3);
        let s = solve_dc(&nl).unwrap();
        assert!((s.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diode_drop_under_bias() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let d = nl.node("d");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(5.0));
        let r = nl.resistor(vin, d, 10e3);
        nl.diode(d, Netlist::GROUND, DiodeModel::default());
        let s = solve_dc(&nl).unwrap();
        let vd = s.voltage(d);
        assert!((0.4..0.8).contains(&vd), "diode drop {vd}");
        // KCL: resistor current equals diode current.
        let ir = s.current(r);
        assert!((ir - (5.0 - vd) / 10e3).abs() < 1e-9);
    }

    #[test]
    fn reverse_diode_blocks() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let d = nl.node("d");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(-5.0));
        nl.resistor(vin, d, 10e3);
        let diode = nl.diode(d, Netlist::GROUND, DiodeModel::default());
        let s = solve_dc(&nl).unwrap();
        assert!(s.current(diode).abs() < 1e-10);
        assert!((s.voltage(d) + 5.0).abs() < 1e-3);
    }

    #[test]
    fn nmos_common_source_pulls_down() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("gate");
        let drain = nl.node("drain");
        nl.voltage_source(vdd, Netlist::GROUND, Waveform::Dc(3.3));
        nl.voltage_source(gate, Netlist::GROUND, Waveform::Dc(3.3));
        nl.resistor(vdd, drain, 10e3);
        nl.mosfet(
            drain,
            gate,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::nmos_035um(),
        );
        let s = solve_dc(&nl).unwrap();
        assert!(
            s.voltage(drain) < 0.3,
            "on transistor should pull low: {}",
            s.voltage(drain)
        );
    }

    #[test]
    fn nmos_off_leaves_drain_high() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let drain = nl.node("drain");
        nl.voltage_source(vdd, Netlist::GROUND, Waveform::Dc(3.3));
        nl.resistor(vdd, drain, 10e3);
        nl.mosfet(
            drain,
            Netlist::GROUND,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::nmos_035um(),
        );
        let s = solve_dc(&nl).unwrap();
        assert!(s.voltage(drain) > 3.2);
    }

    #[test]
    fn cmos_inverter_transfer_endpoints() {
        let build = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.voltage_source(vdd, Netlist::GROUND, Waveform::Dc(3.3));
            nl.voltage_source(inp, Netlist::GROUND, Waveform::Dc(vin));
            nl.mosfet(
                out,
                inp,
                Netlist::GROUND,
                Netlist::GROUND,
                MosModel::nmos_035um(),
            );
            nl.mosfet(out, inp, vdd, vdd, MosModel::pmos_035um());
            (nl, out)
        };
        let (nl, out) = build(0.0);
        let s = solve_dc(&nl).unwrap();
        assert!(
            s.voltage(out) > 3.25,
            "low in -> high out: {}",
            s.voltage(out)
        );
        let (nl, out) = build(3.3);
        let s = solve_dc(&nl).unwrap();
        assert!(
            s.voltage(out) < 0.05,
            "high in -> low out: {}",
            s.voltage(out)
        );
    }

    #[test]
    fn vccs_acts_as_transconductor() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.1));
        nl.vccs(out, Netlist::GROUND, inp, Netlist::GROUND, 1e-3);
        nl.resistor(out, Netlist::GROUND, 10e3);
        let s = solve_dc(&nl).unwrap();
        // i = gm*vin = 0.1 mA leaves node out -> out voltage = -i*R = -1 V.
        assert!((s.voltage(out) + 1.0).abs() < 1e-6, "{}", s.voltage(out));
    }

    #[test]
    fn floating_node_settles_via_gmin() {
        let mut nl = Netlist::new();
        let float = nl.node("float");
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(a, Netlist::GROUND, 1e3);
        // "float" only connects through a reverse diode: gmin must keep the
        // matrix solvable.
        nl.diode(float, a, DiodeModel::default());
        let s = solve_dc(&nl).unwrap();
        assert!(s.voltage(float).is_finite());
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(2.0));
        let l = nl.inductor(a, b, 1e-6);
        nl.resistor(b, Netlist::GROUND, 1e3);
        let s = solve_dc(&nl).unwrap();
        assert!((s.voltage(b) - 2.0).abs() < 1e-6);
        assert!((s.current(l) - 2e-3).abs() < 1e-8);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(2.0));
        nl.capacitor(a, b, 1e-9);
        nl.resistor(b, Netlist::GROUND, 1e3);
        let s = solve_dc(&nl).unwrap();
        assert!(s.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let d = nl.node("d");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(5.0));
        nl.resistor(vin, d, 10e3);
        nl.diode(d, Netlist::GROUND, DiodeModel::default());
        let cold = solve_dc(&nl).unwrap();
        let warm = solve_dc_with(&nl, &DcOptions::default(), Some(cold.raw())).unwrap();
        assert!((cold.voltage(d) - warm.voltage(d)).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist_solves_trivially() {
        let nl = Netlist::new();
        let s = solve_dc(&nl).unwrap();
        assert_eq!(s.voltage(Netlist::GROUND), 0.0);
    }
}
