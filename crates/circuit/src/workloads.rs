//! Parametric workload generators for the decks the dense solver could not
//! touch: long RC ladders, coupled LC sensor-tank networks and multi-cell
//! pad-driver arrays.
//!
//! All three are fully linear, so [`crate::SolverPath::Auto`] routes them to
//! the sparse solver once they cross [`crate::SPARSE_MIN_UNKNOWNS`]
//! unknowns. Each generator produces an ordinary [`Netlist`], so the decks
//! round-trip through [`crate::netlist_to_json`] / deck JSON and run
//! through `lcosc-serve` like any hand-written deck.

use crate::netlist::{Netlist, Waveform};

/// An `sections`-section RC transmission-line ladder driven by a 1 MHz
/// sine: `vin — R — n1 — R — n2 — …`, each interior node loaded by a
/// capacitor to ground. MNA size: `sections + 1` node voltages plus one
/// source branch current.
///
/// # Panics
///
/// Panics if `sections == 0`.
pub fn rc_ladder(sections: usize) -> Netlist {
    assert!(sections > 0, "ladder needs at least one section");
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    nl.voltage_source(
        vin,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1e6,
            phase: 0.0,
        },
    );
    let mut prev = vin;
    for k in 0..sections {
        let n = nl.node(&format!("n{k}"));
        nl.resistor(prev, n, 100.0);
        nl.capacitor(n, Netlist::GROUND, 100e-12);
        prev = n;
    }
    nl
}

/// A network of `tanks` LC sensor tanks coupled to their neighbors through
/// resistors — the paper's redundant dual-tank scenario generalized to a
/// fleet. Tank `0` starts charged (the "excited sensor"); the rest ring up
/// through the coupling. MNA size: `tanks` node voltages plus `tanks`
/// inductor branch currents.
///
/// # Panics
///
/// Panics if `tanks == 0`.
pub fn coupled_tank_network(tanks: usize) -> Netlist {
    coupled_tank_network_scaled(tanks, 1.0)
}

/// [`coupled_tank_network`] with every reactive value multiplied by
/// `value_scale`: same structure (same structural digest), different
/// values — the shape campaign populations are made of.
///
/// # Panics
///
/// Panics if `tanks == 0`.
pub fn coupled_tank_network_scaled(tanks: usize, value_scale: f64) -> Netlist {
    assert!(tanks > 0, "network needs at least one tank");
    let mut nl = Netlist::new();
    let mut nodes = Vec::with_capacity(tanks);
    for k in 0..tanks {
        let n = nl.node(&format!("tank{k}"));
        // Paper-style tank values with a slight per-tank spread so the
        // network is not degenerate.
        let scale = value_scale * (1.0 + 0.01 * k as f64);
        let v0 = if k == 0 { 1.0 } else { 0.0 };
        nl.capacitor_ic(n, Netlist::GROUND, 2e-9 * scale, v0);
        nl.inductor(n, Netlist::GROUND, 25e-6 * scale);
        // Tank loss.
        nl.resistor(n, Netlist::GROUND, 50e3);
        nodes.push(n);
    }
    for k in 1..tanks {
        nl.resistor(nodes[k - 1], nodes[k], 10e3);
    }
    nl
}

/// A `cells`-cell pad-driver array: one shared supply rail feeding per-cell
/// drivers (a closed switch in series with the driver resistance) into the
/// pad capacitance, with a small coupling capacitor between neighboring
/// pads. Models the multi-cell driver arrays of the PLL-array literature;
/// fully linear (switches are resistive). MNA size: `2 * cells + 1` node
/// voltages plus one source branch current.
///
/// # Panics
///
/// Panics if `cells == 0`.
pub fn pad_driver_array(cells: usize) -> Netlist {
    assert!(cells > 0, "array needs at least one cell");
    let mut nl = Netlist::new();
    let rail = nl.node("rail");
    nl.voltage_source(rail, Netlist::GROUND, Waveform::Dc(3.3));
    let mut prev_pad = None;
    for k in 0..cells {
        let drv = nl.node(&format!("drv{k}"));
        let pad = nl.node(&format!("pad{k}"));
        // Rail feed, driver switch (alternate cells active) and series
        // output resistance into the pad load.
        nl.resistor(rail, drv, 10.0);
        nl.switch(drv, pad, k % 2 == 0);
        nl.resistor(pad, Netlist::GROUND, 1e6);
        nl.capacitor(pad, Netlist::GROUND, 5e-12);
        if let Some(prev) = prev_pad {
            nl.capacitor(prev, pad, 0.2e-12);
        }
        prev_pad = Some(pad);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::transient::{solver_path_forced, SPARSE_MIN_UNKNOWNS};
    use crate::netlist::NodeId;
    use crate::{netlist_from_json, netlist_to_json, run_transient, TransientOptions};

    #[test]
    fn generators_are_linear_and_sized_as_documented() {
        let ladder = rc_ladder(40);
        assert!(ladder.is_linear());
        assert_eq!(ladder.unknown_count(), 40 + 1 + 1);
        let tanks = coupled_tank_network(8);
        assert!(tanks.is_linear());
        assert_eq!(tanks.unknown_count(), 8 + 8);
        let pads = pad_driver_array(5);
        assert!(pads.is_linear());
        assert_eq!(pads.unknown_count(), 2 * 5 + 1 + 1);
    }

    #[test]
    fn big_workloads_cross_the_sparse_threshold() {
        assert!(rc_ladder(1000).unknown_count() >= SPARSE_MIN_UNKNOWNS);
        assert!(coupled_tank_network(64).unknown_count() >= SPARSE_MIN_UNKNOWNS);
        assert!(pad_driver_array(64).unknown_count() >= SPARSE_MIN_UNKNOWNS);
    }

    #[test]
    fn scaled_tank_network_keeps_the_structural_digest() {
        let a = coupled_tank_network_scaled(12, 0.8);
        let b = coupled_tank_network_scaled(12, 1.3);
        assert_eq!(a.structural_digest(), b.structural_digest());
        assert_ne!(a, b, "values must differ");
    }

    #[test]
    fn workloads_round_trip_through_deck_json() {
        for nl in [rc_ladder(12), coupled_tank_network(6), pad_driver_array(4)] {
            let json = netlist_to_json(&nl);
            let back = netlist_from_json(&json).expect("round-trip");
            assert_eq!(back.structural_digest(), nl.structural_digest());
            assert_eq!(back.unknown_count(), nl.unknown_count());
        }
    }

    #[test]
    fn small_workloads_solve_on_the_dense_path() {
        if solver_path_forced().is_some() {
            return;
        }
        let nl = coupled_tank_network(4);
        let res = run_transient(&nl, &TransientOptions::new(20e-9, 4e-6)).unwrap();
        let s = res.stats();
        assert!(!s.used_sparse_path);
        assert!(s.used_linear_fast_path);
        // The excited tank must actually ring.
        let v0 = res.voltage_trace(NodeId(1));
        assert!(v0.iter().any(|v| v.abs() > 0.1));
    }

    #[test]
    fn large_ladder_solves_on_the_sparse_path() {
        if solver_path_forced().is_some() {
            return;
        }
        let nl = rc_ladder(200);
        let res = run_transient(&nl, &TransientOptions::new(10e-9, 1e-6)).unwrap();
        let s = res.stats();
        assert!(s.used_sparse_path);
        assert!(!s.used_linear_fast_path);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.factor_reuses, s.steps - 1);
        assert_eq!(s.symbolic_analyses + s.symbolic_reuses, 1);
        assert_eq!(s.post_warmup_allocations, 0, "stepping must not allocate");
        // Second run of the same structure hits the symbolic cache.
        let res2 = run_transient(&nl, &TransientOptions::new(10e-9, 1e-6)).unwrap();
        assert_eq!(res2.stats().symbolic_reuses, 1);
        assert_eq!(res2.stats().symbolic_analyses, 0);
    }
}
