//! MNA stamping: turns a [`Netlist`] plus a linearization point into the
//! linear system `A·x = b` solved at each Newton iteration.
//!
//! Unknown ordering: node voltages for nodes `1..node_count` (ground is
//! eliminated), followed by one branch current per voltage source or
//! inductor in element order.

use crate::netlist::{Element, Netlist, NodeId};
use lcosc_num::linalg::Matrix;
use lcosc_num::sparse::SparseMatrix;

/// Minimum conductance added from every node to ground outside DC gmin
/// stepping. One shared constant keeps transient stamping (dense and
/// sparse) and the AC stamper numerically identical.
pub(crate) const GMIN: f64 = 1e-12;

/// Destination of MNA matrix stamps. Implemented by the dense [`Matrix`]
/// and by [`SparseStamper`], so one set of stamp formulas serves both
/// solver paths — the sparse stamper cannot drift from the dense one.
pub(crate) trait StampTarget {
    /// Zeroes every value, keeping the storage.
    fn clear(&mut self);
    /// Accumulates `v` into `(i, j)`.
    fn add(&mut self, i: usize, j: usize, v: f64);
}

impl StampTarget for Matrix {
    fn clear(&mut self) {
        Matrix::clear(self);
    }
    fn add(&mut self, i: usize, j: usize, v: f64) {
        Matrix::add(self, i, j, v);
    }
}

/// Adapter stamping into a [`SparseMatrix`] with a fixed pattern. A stamp
/// landing outside the pattern records `missed = true` instead of
/// panicking; callers check the flag after stamping and fall back or error
/// out, keeping the solver free of stamp-time panics.
pub(crate) struct SparseStamper<'a> {
    /// The pattern-fixed destination matrix.
    pub m: &'a mut SparseMatrix,
    /// Set when any stamp fell outside the pattern.
    pub missed: bool,
}

impl<'a> SparseStamper<'a> {
    /// Wraps `m` with a clean miss flag.
    pub fn new(m: &'a mut SparseMatrix) -> Self {
        SparseStamper { m, missed: false }
    }
}

impl StampTarget for SparseStamper<'_> {
    fn clear(&mut self) {
        self.m.clear();
    }
    fn add(&mut self, i: usize, j: usize, v: f64) {
        if !self.m.add(i, j, v) {
            self.missed = true;
        }
    }
}

/// Time-integration method for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Integrator {
    /// Backward Euler: robust, slightly lossy (numerical damping).
    #[default]
    BackwardEuler,
    /// Trapezoidal: second-order, energy-preserving for LC tanks.
    Trapezoidal,
}

/// Per-element history carried between transient time steps.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct History {
    /// Capacitor voltage v(a)−v(b) at the previous accepted step.
    pub cap_v: Vec<f64>,
    /// Capacitor current at the previous accepted step (trapezoidal only).
    pub cap_i: Vec<f64>,
    /// Inductor current at the previous accepted step.
    pub ind_i: Vec<f64>,
    /// Inductor voltage at the previous accepted step (trapezoidal only).
    pub ind_v: Vec<f64>,
}

impl History {
    /// Initializes history from the element initial conditions.
    pub fn from_initial_conditions(nl: &Netlist) -> Self {
        let n = nl.elements().len();
        let mut h = History {
            cap_v: vec![0.0; n],
            cap_i: vec![0.0; n],
            ind_i: vec![0.0; n],
            ind_v: vec![0.0; n],
        };
        for (k, e) in nl.elements().iter().enumerate() {
            match e {
                Element::Capacitor { v0, .. } => h.cap_v[k] = *v0,
                Element::Inductor { i0, .. } => h.ind_i[k] = *i0,
                _ => {}
            }
        }
        h
    }

    /// Updates history from a converged solution at the end of a step.
    ///
    /// Takes an [`AbsorbRule`] rather than a [`Mode`] so the update can run
    /// in place on the same history the step's `Mode` borrowed (a `Mode`
    /// holds `&History`, which would otherwise force a defensive clone of
    /// all four history vectors on every time step).
    pub fn absorb(&mut self, nl: &Netlist, x: &[f64], rule: AbsorbRule) {
        let branch = nl.branch_indices();
        let nn = nl.node_count() - 1;
        for (k, e) in nl.elements().iter().enumerate() {
            match e {
                Element::Capacitor { a, b, farads, .. } => {
                    let v = volt(x, *a) - volt(x, *b);
                    let i = match rule {
                        AbsorbRule::Transient {
                            dt,
                            integrator: Integrator::BackwardEuler,
                        } => farads / dt * (v - self.cap_v[k]),
                        AbsorbRule::Transient {
                            dt,
                            integrator: Integrator::Trapezoidal,
                        } => 2.0 * farads / dt * (v - self.cap_v[k]) - self.cap_i[k],
                        AbsorbRule::Dc => 0.0,
                    };
                    self.cap_v[k] = v;
                    self.cap_i[k] = i;
                }
                Element::Inductor { a, b, .. } => {
                    let j = branch[k].expect("inductor has a branch index");
                    self.ind_i[k] = x[nn + j];
                    self.ind_v[k] = volt(x, *a) - volt(x, *b);
                }
                _ => {}
            }
        }
    }
}

/// The history-update rule for one accepted solution. Unlike [`Mode`] it
/// carries no borrow of the history, so [`History::absorb`] can mutate the
/// history in place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum AbsorbRule {
    /// DC solution: reactive-element currents are zero.
    Dc,
    /// End of a transient step with the given companion model.
    Transient {
        /// Fixed step size in seconds.
        dt: f64,
        /// Integration method the step used.
        integrator: Integrator,
    },
}

/// Analysis mode passed to the stamper.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Mode<'a> {
    /// DC operating point; `gmin` is added from every node to ground and
    /// `source_scale` scales all independent sources (source stepping).
    Dc { gmin: f64, source_scale: f64 },
    /// One transient step ending at time `t` with step `dt`.
    Transient {
        t: f64,
        dt: f64,
        integrator: Integrator,
        history: &'a History,
    },
}

/// Voltage of a node under the MNA unknown ordering.
pub(crate) fn volt(x: &[f64], n: NodeId) -> f64 {
    if n.is_ground() {
        0.0
    } else {
        x[n.index() - 1]
    }
}

/// Builds the linearized MNA system `A·x_new = b` around the current
/// iterate `x`.
///
/// Generic over the [`StampTarget`] so the dense and sparse solver paths
/// share these stamp formulas verbatim; with `T = Matrix` the generated
/// code performs exactly the historical dense stamping.
pub(crate) fn build_system<T: StampTarget>(
    nl: &Netlist,
    x: &[f64],
    mode: &Mode<'_>,
    a: &mut T,
    b: &mut [f64],
) {
    a.clear();
    b.iter_mut().for_each(|v| *v = 0.0);
    let nn = nl.node_count() - 1;
    let branch = nl.branch_indices();

    // Row/column index of a node (None for ground).
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.index() - 1) };

    // Conductance stamp between two nodes.
    let stamp_g = |a: &mut T, na: NodeId, nb: NodeId, g: f64| {
        if let Some(i) = idx(na) {
            a.add(i, i, g);
            if let Some(j) = idx(nb) {
                a.add(i, j, -g);
            }
        }
        if let Some(i) = idx(nb) {
            a.add(i, i, g);
            if let Some(j) = idx(na) {
                a.add(i, j, -g);
            }
        }
    };
    // Current injection into a node.
    let inject = |b: &mut [f64], n: NodeId, i: f64| {
        if let Some(k) = idx(n) {
            b[k] += i;
        }
    };

    let (src_scale, t_now) = match mode {
        Mode::Dc { source_scale, .. } => (*source_scale, 0.0),
        Mode::Transient { t, .. } => (1.0, *t),
    };

    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms } => stamp_g(a, *na, *nb, 1.0 / ohms),
            Element::Switch {
                a: na,
                b: nb,
                closed,
                r_on,
                r_off,
            } => {
                let r = if *closed { *r_on } else { *r_off };
                stamp_g(a, *na, *nb, 1.0 / r);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => match mode {
                Mode::Dc { .. } => {} // open circuit
                Mode::Transient {
                    dt,
                    integrator,
                    history,
                    ..
                } => {
                    let (g, i_hist) = match integrator {
                        Integrator::BackwardEuler => {
                            let g = farads / dt;
                            (g, g * history.cap_v[k])
                        }
                        Integrator::Trapezoidal => {
                            let g = 2.0 * farads / dt;
                            (g, g * history.cap_v[k] + history.cap_i[k])
                        }
                    };
                    stamp_g(a, *na, *nb, g);
                    inject(b, *na, i_hist);
                    inject(b, *nb, -i_hist);
                }
            },
            Element::Inductor {
                a: na,
                b: nb,
                henries,
                ..
            } => {
                let j = nn + branch[k].expect("inductor branch");
                // Branch current columns: current j flows a -> b.
                if let Some(i) = idx(*na) {
                    a.add(i, j, 1.0);
                    a.add(j, i, 1.0);
                }
                if let Some(i) = idx(*nb) {
                    a.add(i, j, -1.0);
                    a.add(j, i, -1.0);
                }
                match mode {
                    Mode::Dc { .. } => {
                        // Short: v_a − v_b = 0, row already stamped; keep a
                        // tiny series resistance so parallel sources cannot
                        // make the matrix singular.
                        a.add(j, j, -1e-9);
                    }
                    Mode::Transient {
                        dt,
                        integrator,
                        history,
                        ..
                    } => match integrator {
                        Integrator::BackwardEuler => {
                            a.add(j, j, -henries / dt);
                            b[j] = -henries / dt * history.ind_i[k];
                        }
                        Integrator::Trapezoidal => {
                            a.add(j, j, -2.0 * henries / dt);
                            b[j] = -2.0 * henries / dt * history.ind_i[k] - history.ind_v[k];
                        }
                    },
                }
            }
            Element::VoltageSource { p, n, wave } => {
                let j = nn + branch[k].expect("vsource branch");
                if let Some(i) = idx(*p) {
                    a.add(i, j, 1.0);
                    a.add(j, i, 1.0);
                }
                if let Some(i) = idx(*n) {
                    a.add(i, j, -1.0);
                    a.add(j, i, -1.0);
                }
                b[j] = wave.eval(t_now) * src_scale;
            }
            Element::CurrentSource { p, n, wave } => {
                let i = wave.eval(t_now) * src_scale;
                inject(b, *p, i);
                inject(b, *n, -i);
            }
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                gm,
            } => {
                // i(out_p -> out_n) = gm (v_inp − v_inn): KCL at out_p gains
                // +gm·v_inp − gm·v_inn on the LHS.
                for (out, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                    if let Some(r) = idx(*out) {
                        if let Some(c) = idx(*in_p) {
                            a.add(r, c, sign * gm);
                        }
                        if let Some(c) = idx(*in_n) {
                            a.add(r, c, -sign * gm);
                        }
                    }
                }
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let v = volt(x, *anode) - volt(x, *cathode);
                let (g, ieq) = model.companion(v);
                stamp_g(a, *anode, *cathode, g);
                inject(b, *anode, -ieq);
                inject(b, *cathode, ieq);
            }
            Element::Mosfet {
                d,
                g: gate,
                s,
                b: bulk,
                model,
            } => {
                let vb = volt(x, *bulk);
                let vg = volt(x, *gate) - vb;
                let vd = volt(x, *d) - vb;
                let vs = volt(x, *s) - vb;
                let op = model.evaluate_4t(vg, vd, vs);
                let gmb = -(op.gm + op.gds + op.gms);
                // id ≈ id* + gm ΔVg + gds ΔVd + gms ΔVs + gmb ΔVb (absolute
                // node voltages).
                let ieq = op.id
                    - op.gm * volt(x, *gate)
                    - op.gds * volt(x, *d)
                    - op.gms * volt(x, *s)
                    - gmb * vb;
                for (node, sign) in [(*d, 1.0), (*s, -1.0)] {
                    if let Some(r) = idx(node) {
                        if let Some(c) = idx(*gate) {
                            a.add(r, c, sign * op.gm);
                        }
                        if let Some(c) = idx(*d) {
                            a.add(r, c, sign * op.gds);
                        }
                        if let Some(c) = idx(*s) {
                            a.add(r, c, sign * op.gms);
                        }
                        if let Some(c) = idx(*bulk) {
                            a.add(r, c, sign * gmb);
                        }
                        b[r] -= sign * ieq;
                    }
                }
            }
        }
    }

    // gmin to ground on every node (keeps floating subcircuits solvable and
    // implements gmin stepping in DC).
    let gmin = match mode {
        Mode::Dc { gmin, .. } => *gmin,
        Mode::Transient { .. } => GMIN,
    };
    for i in 0..nn {
        a.add(i, i, gmin);
    }
}

/// Stamps the matrix half of a **fully linear** netlist (every element's
/// `A` entries plus the trailing per-node gmin), without touching the RHS.
///
/// For a deck where [`Netlist::is_linear`] holds, this walks the elements
/// in the same order as [`build_system`] and performs the same stamps into
/// each matrix cell, so the produced matrix is bit-identical to the one
/// `build_system` would build — splitting per destination (matrix here,
/// RHS in [`stamp_linear_rhs`]) cannot change any single cell's
/// floating-point accumulation order. That equivalence is exactly what
/// breaks when nonlinear elements interleave with linear ones (their
/// companion stamps would land in a different order relative to the linear
/// stamps), which is why the transient fast path only caches this matrix
/// for linear decks.
///
/// The matrix does not depend on `t` or the history, only on the element
/// values and, through the companion conductances, on `(dt, integrator)` —
/// so one stamp+factorization serves a whole fixed-step transient.
///
/// # Panics
///
/// Debug-asserts that the netlist is linear.
pub(crate) fn stamp_linear_matrix<T: StampTarget>(nl: &Netlist, mode: &Mode<'_>, a: &mut T) {
    debug_assert!(nl.is_linear(), "linear stamp on a nonlinear deck");
    a.clear();
    let nn = nl.node_count() - 1;
    let branch = nl.branch_indices();
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.index() - 1) };
    let stamp_g = |a: &mut T, na: NodeId, nb: NodeId, g: f64| {
        if let Some(i) = idx(na) {
            a.add(i, i, g);
            if let Some(j) = idx(nb) {
                a.add(i, j, -g);
            }
        }
        if let Some(i) = idx(nb) {
            a.add(i, i, g);
            if let Some(j) = idx(na) {
                a.add(i, j, -g);
            }
        }
    };

    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms } => stamp_g(a, *na, *nb, 1.0 / ohms),
            Element::Switch {
                a: na,
                b: nb,
                closed,
                r_on,
                r_off,
            } => {
                let r = if *closed { *r_on } else { *r_off };
                stamp_g(a, *na, *nb, 1.0 / r);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => match mode {
                Mode::Dc { .. } => {}
                Mode::Transient { dt, integrator, .. } => {
                    let g = match integrator {
                        Integrator::BackwardEuler => farads / dt,
                        Integrator::Trapezoidal => 2.0 * farads / dt,
                    };
                    stamp_g(a, *na, *nb, g);
                }
            },
            Element::Inductor {
                a: na,
                b: nb,
                henries,
                ..
            } => {
                let j = nn + branch[k].expect("inductor branch");
                if let Some(i) = idx(*na) {
                    a.add(i, j, 1.0);
                    a.add(j, i, 1.0);
                }
                if let Some(i) = idx(*nb) {
                    a.add(i, j, -1.0);
                    a.add(j, i, -1.0);
                }
                match mode {
                    Mode::Dc { .. } => a.add(j, j, -1e-9),
                    Mode::Transient { dt, integrator, .. } => match integrator {
                        Integrator::BackwardEuler => a.add(j, j, -henries / dt),
                        Integrator::Trapezoidal => a.add(j, j, -2.0 * henries / dt),
                    },
                }
            }
            Element::VoltageSource { p, n, .. } => {
                let j = nn + branch[k].expect("vsource branch");
                if let Some(i) = idx(*p) {
                    a.add(i, j, 1.0);
                    a.add(j, i, 1.0);
                }
                if let Some(i) = idx(*n) {
                    a.add(i, j, -1.0);
                    a.add(j, i, -1.0);
                }
            }
            Element::CurrentSource { .. } => {}
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                gm,
            } => {
                for (out, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                    if let Some(r) = idx(*out) {
                        if let Some(c) = idx(*in_p) {
                            a.add(r, c, sign * gm);
                        }
                        if let Some(c) = idx(*in_n) {
                            a.add(r, c, -sign * gm);
                        }
                    }
                }
            }
            Element::Diode { .. } | Element::Mosfet { .. } => {
                debug_assert!(false, "nonlinear element in linear stamp");
            }
        }
    }

    let gmin = match mode {
        Mode::Dc { gmin, .. } => *gmin,
        Mode::Transient { .. } => GMIN,
    };
    for i in 0..nn {
        a.add(i, i, gmin);
    }
}

/// Stamps the RHS half of a **fully linear** netlist: source values at the
/// step's time point and the reactive-element history currents. The
/// companion to [`stamp_linear_matrix`]; together they reproduce
/// [`build_system`] bit-for-bit on linear decks. Unlike the matrix, the RHS
/// changes every step (it carries `t` and the history), so the fast path
/// restamps it per step while reusing the cached factorization.
pub(crate) fn stamp_linear_rhs(nl: &Netlist, mode: &Mode<'_>, b: &mut [f64]) {
    b.iter_mut().for_each(|v| *v = 0.0);
    let nn = nl.node_count() - 1;
    let branch = nl.branch_indices();
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.index() - 1) };
    let inject = |b: &mut [f64], n: NodeId, i: f64| {
        if let Some(k) = idx(n) {
            b[k] += i;
        }
    };
    let (src_scale, t_now) = match mode {
        Mode::Dc { source_scale, .. } => (*source_scale, 0.0),
        Mode::Transient { t, .. } => (1.0, *t),
    };

    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { .. } | Element::Switch { .. } | Element::Vccs { .. } => {}
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => {
                if let Mode::Transient {
                    dt,
                    integrator,
                    history,
                    ..
                } = mode
                {
                    let i_hist = match integrator {
                        Integrator::BackwardEuler => farads / dt * history.cap_v[k],
                        Integrator::Trapezoidal => {
                            2.0 * farads / dt * history.cap_v[k] + history.cap_i[k]
                        }
                    };
                    inject(b, *na, i_hist);
                    inject(b, *nb, -i_hist);
                }
            }
            Element::Inductor { henries, .. } => {
                if let Mode::Transient {
                    dt,
                    integrator,
                    history,
                    ..
                } = mode
                {
                    let j = nn + branch[k].expect("inductor branch");
                    b[j] = match integrator {
                        Integrator::BackwardEuler => -henries / dt * history.ind_i[k],
                        Integrator::Trapezoidal => {
                            -2.0 * henries / dt * history.ind_i[k] - history.ind_v[k]
                        }
                    };
                }
            }
            Element::VoltageSource { wave, .. } => {
                let j = nn + branch[k].expect("vsource branch");
                b[j] = wave.eval(t_now) * src_scale;
            }
            Element::CurrentSource { p, n, wave } => {
                let i = wave.eval(t_now) * src_scale;
                inject(b, *p, i);
                inject(b, *n, -i);
            }
            Element::Diode { .. } | Element::Mosfet { .. } => {
                debug_assert!(false, "nonlinear element in linear stamp");
            }
        }
    }
}

/// Structural occupancy of the DC MNA matrix: which `(row, column)` slots
/// receive a stamp, ignoring numeric values and the two numerical crutches
/// (the per-node `gmin` to ground and the tiny series resistance on DC
/// inductor branches).
///
/// A pattern without a perfect row/column matching is *structurally
/// singular*: no set of element values makes the matrix invertible, so the
/// solve can only succeed by leaning on `gmin`. `lcosc-check` uses this to
/// flag such netlists before any analysis runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampPattern {
    size: usize,
    rows: Vec<Vec<usize>>,
}

impl StampPattern {
    /// Number of MNA unknowns (rows and columns).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Occupied column indices of one row, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `row >= size()`.
    pub fn row(&self, row: usize) -> &[usize] {
        &self.rows[row]
    }

    /// Rows with no stamped entry at all (unknowns no equation touches).
    pub fn empty_rows(&self) -> Vec<usize> {
        (0..self.size)
            .filter(|&r| self.rows[r].is_empty())
            .collect()
    }

    /// Columns with no stamped entry at all (unknowns appearing nowhere).
    pub fn empty_columns(&self) -> Vec<usize> {
        let mut used = vec![false; self.size];
        for row in &self.rows {
            for &c in row {
                used[c] = true;
            }
        }
        (0..self.size).filter(|&c| !used[c]).collect()
    }

    /// Whether a perfect matching between rows and columns exists
    /// (Hall's condition via augmenting paths). `false` means the matrix is
    /// structurally singular for *every* assignment of element values.
    pub fn has_perfect_matching(&self) -> bool {
        let n = self.size;
        let mut col_of = vec![usize::MAX; n];
        // Augmenting path search from `row`; `seen` is per-outer-iteration.
        fn try_assign(
            rows: &[Vec<usize>],
            row: usize,
            seen: &mut [bool],
            col_of: &mut [usize],
        ) -> bool {
            for &c in &rows[row] {
                if !seen[c] {
                    seen[c] = true;
                    if col_of[c] == usize::MAX || try_assign(rows, col_of[c], seen, col_of) {
                        col_of[c] = row;
                        return true;
                    }
                }
            }
            false
        }
        for r in 0..n {
            let mut seen = vec![false; n];
            if !try_assign(&self.rows, r, &mut seen, &mut col_of) {
                return false;
            }
        }
        true
    }
}

/// Computes the [`StampPattern`] of a netlist's DC MNA system.
///
/// The pattern mirrors `build_system`'s DC mode exactly, except that the
/// numerical regularization terms (node `gmin`, the inductor branch's tiny
/// series resistance) are excluded — the whole point is to detect matrices
/// that are only invertible thanks to them.
pub fn dc_stamp_pattern(nl: &Netlist) -> StampPattern {
    let nn = nl.node_count() - 1;
    let size = nl.unknown_count();
    let branch = nl.branch_indices();
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); size];
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.index() - 1) };
    // Conductance-shaped two-terminal pattern.
    let pattern_g = |rows: &mut Vec<Vec<usize>>, na: NodeId, nb: NodeId| {
        if let Some(i) = idx(na) {
            rows[i].push(i);
            if let Some(j) = idx(nb) {
                rows[i].push(j);
            }
        }
        if let Some(i) = idx(nb) {
            rows[i].push(i);
            if let Some(j) = idx(na) {
                rows[i].push(j);
            }
        }
    };
    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, .. } | Element::Switch { a, b, .. } => {
                pattern_g(&mut rows, *a, *b);
            }
            Element::Capacitor { .. } | Element::CurrentSource { .. } => {} // no DC matrix entry
            Element::Inductor { a, b, .. } | Element::VoltageSource { p: a, n: b, .. } => {
                let j = nn + branch[k].expect("branch element has an index");
                if let Some(i) = idx(*a) {
                    rows[i].push(j);
                    rows[j].push(i);
                }
                if let Some(i) = idx(*b) {
                    rows[i].push(j);
                    rows[j].push(i);
                }
            }
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                ..
            } => {
                for out in [*out_p, *out_n] {
                    if let Some(r) = idx(out) {
                        for inp in [*in_p, *in_n] {
                            if let Some(c) = idx(inp) {
                                rows[r].push(c);
                            }
                        }
                    }
                }
            }
            Element::Diode { anode, cathode, .. } => pattern_g(&mut rows, *anode, *cathode),
            Element::Mosfet { d, g, s, b, .. } => {
                for node in [*d, *s] {
                    if let Some(r) = idx(node) {
                        for c_node in [*g, *d, *s, *b] {
                            if let Some(c) = idx(c_node) {
                                rows[r].push(c);
                            }
                        }
                    }
                }
            }
        }
    }
    for row in &mut rows {
        row.sort_unstable();
        row.dedup();
    }
    StampPattern { size, rows }
}

/// Structural slot list `(row, col)` of every matrix entry the transient
/// (and DC) stampers can touch, for building the sparse solver's fixed
/// pattern.
///
/// Unlike [`dc_stamp_pattern`] this is a **superset** pattern: it includes
/// the per-node `gmin` diagonals, the branch-diagonal companion slots of
/// inductors, capacitor companion conductances, and the full nonlinear
/// companion footprints (diode conductance, MOSFET d/s rows x g/d/s/b
/// columns), so one symbolic analysis serves every Newton iteration and
/// every time step of a transient run. Duplicates are fine — the sparse
/// pattern constructor merges them.
pub(crate) fn transient_stamp_pattern(nl: &Netlist) -> Vec<(usize, usize)> {
    let nn = nl.node_count() - 1;
    let branch = nl.branch_indices();
    let mut entries: Vec<(usize, usize)> = Vec::new();
    let idx = |n: NodeId| -> Option<usize> { (!n.is_ground()).then(|| n.index() - 1) };
    let pattern_g = |entries: &mut Vec<(usize, usize)>, na: NodeId, nb: NodeId| {
        if let Some(i) = idx(na) {
            entries.push((i, i));
            if let Some(j) = idx(nb) {
                entries.push((i, j));
            }
        }
        if let Some(i) = idx(nb) {
            entries.push((i, i));
            if let Some(j) = idx(na) {
                entries.push((i, j));
            }
        }
    };
    for (k, e) in nl.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, .. }
            | Element::Switch { a, b, .. }
            | Element::Capacitor { a, b, .. } => pattern_g(&mut entries, *a, *b),
            Element::CurrentSource { .. } => {}
            Element::Inductor { a, b, .. } => {
                let j = nn + branch[k].expect("inductor branch");
                // Companion slot: DC series regularization or -L/dt term.
                entries.push((j, j));
                for n in [*a, *b] {
                    if let Some(i) = idx(n) {
                        entries.push((i, j));
                        entries.push((j, i));
                    }
                }
            }
            Element::VoltageSource { p, n, .. } => {
                let j = nn + branch[k].expect("vsource branch");
                for node in [*p, *n] {
                    if let Some(i) = idx(node) {
                        entries.push((i, j));
                        entries.push((j, i));
                    }
                }
            }
            Element::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                ..
            } => {
                for out in [*out_p, *out_n] {
                    if let Some(r) = idx(out) {
                        for inp in [*in_p, *in_n] {
                            if let Some(c) = idx(inp) {
                                entries.push((r, c));
                            }
                        }
                    }
                }
            }
            Element::Diode { anode, cathode, .. } => pattern_g(&mut entries, *anode, *cathode),
            Element::Mosfet { d, g, s, b, .. } => {
                for node in [*d, *s] {
                    if let Some(r) = idx(node) {
                        for c_node in [*g, *d, *s, *b] {
                            if let Some(c) = idx(c_node) {
                                entries.push((r, c));
                            }
                        }
                    }
                }
            }
        }
    }
    // gmin to ground on every node voltage row.
    for i in 0..nn {
        entries.push((i, i));
    }
    entries
}

/// Current through an element given a converged solution `x`.
///
/// Sign conventions: positive current flows from the first terminal to the
/// second (for sources: from `p` through the element to `n`).
///
/// `branch` is the netlist's [`Netlist::branch_indices`] table, hoisted by
/// the caller: computing it here made every per-element call O(elements),
/// turning per-sample current recording quadratic in circuit size.
pub(crate) fn element_current(
    nl: &Netlist,
    branch: &[Option<usize>],
    k: usize,
    x: &[f64],
    mode: &Mode<'_>,
) -> f64 {
    let nn = nl.node_count() - 1;
    match &nl.elements()[k] {
        Element::Resistor { a, b, ohms } => (volt(x, *a) - volt(x, *b)) / ohms,
        Element::Switch {
            a,
            b,
            closed,
            r_on,
            r_off,
        } => (volt(x, *a) - volt(x, *b)) / if *closed { *r_on } else { *r_off },
        Element::Capacitor { a, b, farads, .. } => match mode {
            Mode::Dc { .. } => 0.0,
            Mode::Transient {
                dt,
                integrator,
                history,
                ..
            } => {
                let v = volt(x, *a) - volt(x, *b);
                match integrator {
                    Integrator::BackwardEuler => farads / dt * (v - history.cap_v[k]),
                    Integrator::Trapezoidal => {
                        2.0 * farads / dt * (v - history.cap_v[k]) - history.cap_i[k]
                    }
                }
            }
        },
        Element::Inductor { .. } | Element::VoltageSource { .. } => {
            x[nn + branch[k].expect("branch element")]
        }
        Element::CurrentSource { wave, .. } => match mode {
            Mode::Dc { source_scale, .. } => wave.dc_value() * source_scale,
            Mode::Transient { t, .. } => wave.eval(*t),
        },
        Element::Vccs { in_p, in_n, gm, .. } => gm * (volt(x, *in_p) - volt(x, *in_n)),
        Element::Diode {
            anode,
            cathode,
            model,
        } => model.current(volt(x, *anode) - volt(x, *cathode)),
        Element::Mosfet { d, g, s, b, model } => {
            let vb = volt(x, *b);
            model
                .evaluate_4t(volt(x, *g) - vb, volt(x, *d) - vb, volt(x, *s) - vb)
                .id
        }
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn divider_pattern_is_structurally_regular() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, 1e3);
        nl.resistor(out, Netlist::GROUND, 1e3);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.size(), 3); // 2 node voltages + 1 branch current
        assert!(p.empty_rows().is_empty());
        assert!(p.empty_columns().is_empty());
        assert!(p.has_perfect_matching());
    }

    #[test]
    fn capacitor_only_node_gives_empty_row() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor(a, Netlist::GROUND, 1e-9);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.empty_rows(), vec![0]);
        assert_eq!(p.empty_columns(), vec![0]);
        assert!(!p.has_perfect_matching());
    }

    #[test]
    fn current_source_into_capacitor_is_structurally_singular() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.current_source(a, Netlist::GROUND, Waveform::Dc(1e-3));
        nl.capacitor(a, Netlist::GROUND, 1e-9);
        let p = dc_stamp_pattern(&nl);
        assert!(!p.has_perfect_matching());
    }

    #[test]
    fn vccs_sense_only_node_breaks_matching() {
        // The sense node appears as a column (through the VCCS) but no
        // equation row touches it.
        let mut nl = Netlist::new();
        let out = nl.node("out");
        let sense = nl.node("sense");
        nl.resistor(out, Netlist::GROUND, 1e3);
        nl.vccs(out, Netlist::GROUND, sense, Netlist::GROUND, 1e-3);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.empty_rows(), vec![1]);
        assert!(!p.has_perfect_matching());
    }

    #[test]
    fn voltage_inductor_loop_is_structurally_singular() {
        // Both branch equations only touch the single node column: without
        // the solver's tiny series resistance the matrix cannot be regular.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.0));
        nl.inductor(a, Netlist::GROUND, 1e-6);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.size(), 3);
        assert!(!p.has_perfect_matching());
    }

    #[test]
    fn inductor_with_load_keeps_matching() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        nl.inductor(a, b, 1e-6);
        nl.resistor(b, Netlist::GROUND, 1e3);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.size(), 4);
        assert!(p.has_perfect_matching());
        assert!(p.empty_rows().is_empty());
    }

    #[test]
    fn row_accessor_is_sorted_and_deduped() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor(a, Netlist::GROUND, 1.0);
        nl.resistor(a, Netlist::GROUND, 2.0);
        let p = dc_stamp_pattern(&nl);
        assert_eq!(p.row(0), &[0]);
    }
}
