//! # lcosc-circuit — a small MNA circuit simulator
//!
//! Modified nodal analysis over a netlist of linear elements, independent
//! sources and the behavioral nonlinear devices from [`lcosc_device`]
//! (diode, EKV MOSFET). Three analyses are provided:
//!
//! - [`analysis::dc::solve_dc`] — Newton–Raphson operating point with gmin
//!   stepping and per-iteration voltage limiting,
//! - [`analysis::sweep::dc_sweep`] — a swept DC source with solution
//!   continuation (used for the paper's Fig 17/18 unsupplied-pad curves),
//! - [`analysis::transient::run_transient`] — backward-Euler or trapezoidal
//!   time stepping with Newton at every step.
//!
//! The simulator exists because the paper's §8 output-driver study is a
//! transistor-level DC problem that the behavioral oscillator model cannot
//! answer; see `DESIGN.md` for the substitution rationale.
//!
//! ## Example
//!
//! ```
//! use lcosc_circuit::netlist::{Netlist, Waveform};
//! use lcosc_circuit::analysis::dc::solve_dc;
//!
//! # fn main() -> Result<(), lcosc_circuit::CircuitError> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("vin");
//! let out = nl.node("out");
//! nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(10.0));
//! nl.resistor(vin, out, 1_000.0);
//! nl.resistor(out, Netlist::GROUND, 1_000.0);
//! let sol = solve_dc(&nl)?;
//! assert!((sol.voltage(out) - 5.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod deck;
pub mod netlist;
pub mod stamp;
pub mod workloads;

pub use analysis::ac::{ac_sweep, logspace, AcPoint};
pub use analysis::batch::run_transient_batch;
pub use analysis::dc::{solve_dc, solve_dc_with, DcOptions, DcSolution};
pub use analysis::sweep::{dc_sweep, SweepPoint};
pub use analysis::transient::{
    run_transient, Integrator, SolverPath, SolverStats, Stepping, TransientOptions,
    TransientResult, SPARSE_MIN_UNKNOWNS,
};
pub use deck::{netlist_from_json, netlist_to_json, DeckError};
pub use netlist::{
    element_terminals, Element, ElementId, Netlist, NodeId, Waveform, WaveformError,
};
pub use stamp::{dc_stamp_pattern, StampPattern};

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// Newton iteration failed to converge even with gmin/source stepping.
    NoConvergence {
        /// Analysis that failed ("dc", "sweep", "transient").
        analysis: &'static str,
        /// Detail such as the sweep value or time point.
        at: f64,
    },
    /// The MNA matrix was singular (floating subcircuit without gmin, ...).
    Singular {
        /// Detail such as the time point.
        at: f64,
    },
    /// The adaptive step controller could not satisfy its truncation-error
    /// tolerance even at the minimum permitted step size.
    StepStall {
        /// Time point at which the controller stalled.
        at: f64,
        /// The minimum step that still failed the error test.
        h_min: f64,
    },
    /// The netlist or analysis options were invalid.
    InvalidInput(&'static str),
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::NoConvergence { analysis, at } => {
                write!(f, "{analysis} analysis failed to converge at {at:.6e}")
            }
            CircuitError::Singular { at } => write!(f, "singular mna matrix at {at:.6e}"),
            CircuitError::StepStall { at, h_min } => write!(
                f,
                "adaptive step stalled at {at:.6e} (error test fails at the minimum step {h_min:.3e})"
            ),
            CircuitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CircuitError::NoConvergence {
            analysis: "dc",
            at: 0.0,
        };
        assert!(e.to_string().contains("dc"));
        let e = CircuitError::Singular { at: 1.0 };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
