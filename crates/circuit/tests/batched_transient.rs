//! Differential suite for the batched transient path: every lane of
//! [`run_transient_batch`] must be bit-identical to a per-job
//! [`run_transient`] of the same deck — waveforms, deterministic counters
//! and typed errors alike — across batch widths, integrators and every
//! linear element kind. Extends the PR4 fast-vs-reference harness to
//! batches; hatch-aware via `LCOSC_SOLVER=reference` (which collapses both
//! sides onto the reference path, keeping the comparisons meaningful).

use lcosc_circuit::{
    run_transient, run_transient_batch, CircuitError, Integrator, Netlist, TransientOptions,
    TransientResult, Waveform,
};

/// Bitwise slice equality (stricter than `==`: distinguishes signed zeros,
/// equates NaN payloads).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Whether `LCOSC_SOLVER=reference` is forcing every run onto the
/// reference path (the batch entry point then falls back per job).
fn hatch_forced() -> bool {
    std::env::var_os("LCOSC_SOLVER").is_some_and(|v| v == "reference")
}

/// Asserts one batched lane equals its per-job run: waveforms bitwise,
/// plus every deterministic counter. `allocations` is excluded by design
/// (batch storage is accounted at the batch level) and `batched_lanes`
/// differs by definition — everything else must match exactly.
fn assert_lane_identical(batched: &TransientResult, solo: &TransientResult, label: &str) {
    assert!(
        bits_equal(batched.times(), solo.times()),
        "{label}: times diverged"
    );
    assert!(
        bits_equal(batched.voltages_flat(), solo.voltages_flat()),
        "{label}: voltages diverged"
    );
    assert!(
        bits_equal(batched.currents_flat(), solo.currents_flat()),
        "{label}: currents diverged"
    );
    let (b, s) = (batched.stats(), solo.stats());
    assert_eq!(b.steps, s.steps, "{label}: steps");
    assert_eq!(
        b.newton_iterations, s.newton_iterations,
        "{label}: newton_iterations"
    );
    assert_eq!(
        b.factorizations, s.factorizations,
        "{label}: factorizations"
    );
    assert_eq!(b.factor_reuses, s.factor_reuses, "{label}: factor_reuses");
    assert_eq!(
        b.used_linear_fast_path, s.used_linear_fast_path,
        "{label}: fast-path flag"
    );
    if !hatch_forced() {
        assert_eq!(
            b.post_warmup_allocations, 0,
            "{label}: steady-state stepping must stay allocation-free"
        );
    }
}

/// Paper-shaped series tank with per-lane value jitter: same structure,
/// different element values and initial conditions.
fn tank_variant(i: usize) -> Netlist {
    let f = 1.0 + 0.03 * i as f64;
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, 2e-9 * f, 1.0 / f);
    nl.capacitor_ic(lc2, Netlist::GROUND, 2e-9 / f, -f);
    nl.inductor_ic(lc1, mid, 25e-6 * f, 1e-3 * i as f64);
    nl.resistor(mid, lc2, 15.0 * f);
    nl
}

/// A deck touching every linear element kind the batched stamper handles:
/// resistor, switch (both states), capacitor, inductor, sine voltage
/// source, pulsed current source and a VCCS.
fn full_linear_variant(i: usize) -> Netlist {
    let f = 1.0 + 0.05 * i as f64;
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    let mid = nl.node("mid");
    let out = nl.node("out");
    let sense = nl.node("sense");
    nl.voltage_source(
        vin,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.1 * f,
            amplitude: 1.0 * f,
            frequency: 1e6,
            phase: 0.3 * i as f64,
        },
    );
    nl.resistor(vin, mid, 15.0 * f);
    nl.inductor(mid, out, 25e-6 / f);
    nl.capacitor_ic(out, Netlist::GROUND, 1e-9 * f, 0.1);
    nl.switch(out, sense, i.is_multiple_of(2));
    nl.resistor(sense, Netlist::GROUND, 1e3 * f);
    nl.current_source(sense, Netlist::GROUND, Waveform::Dc(1e-4 * f));
    nl.vccs(mid, Netlist::GROUND, out, Netlist::GROUND, 1e-4 * f);
    nl
}

type RunResults = Vec<Result<TransientResult, CircuitError>>;

fn run_batch_and_solo(decks: &[Netlist], opts: &TransientOptions) -> (RunResults, RunResults) {
    let refs: Vec<&Netlist> = decks.iter().collect();
    let batched = run_transient_batch(&refs, opts);
    let solo: Vec<_> = decks.iter().map(|nl| run_transient(nl, opts)).collect();
    (batched, solo)
}

#[test]
fn tank_batches_are_bit_identical_per_lane_for_every_width() {
    for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        for width in [1usize, 2, 5, 8, 17] {
            let decks: Vec<Netlist> = (0..width).map(tank_variant).collect();
            let mut opts = TransientOptions::new(5e-9, 5e-6);
            opts.integrator = integrator;
            let (batched, solo) = run_batch_and_solo(&decks, &opts);
            for (lane, (b, s)) in batched.iter().zip(&solo).enumerate() {
                let label = format!("tank/{integrator:?}/w{width}/lane{lane}");
                let b = b.as_ref().expect("batched lane converges");
                let s = s.as_ref().expect("solo run converges");
                assert_lane_identical(b, s, &label);
                if !hatch_forced() {
                    assert_eq!(b.stats().batched_lanes, width as u64, "{label}");
                    assert_eq!(s.stats().batched_lanes, 0, "{label}");
                }
            }
        }
    }
}

#[test]
fn every_linear_element_kind_is_bit_identical_with_stride() {
    for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        let decks: Vec<Netlist> = (0..7).map(full_linear_variant).collect();
        let mut opts = TransientOptions::new(2e-9, 2e-6);
        opts.integrator = integrator;
        opts.record_stride = 7;
        let (batched, solo) = run_batch_and_solo(&decks, &opts);
        for (lane, (b, s)) in batched.iter().zip(&solo).enumerate() {
            assert_lane_identical(
                b.as_ref().expect("batched lane converges"),
                s.as_ref().expect("solo run converges"),
                &format!("full/{integrator:?}/lane{lane}"),
            );
        }
    }
}

#[test]
fn singular_lane_carries_the_per_job_error_without_corrupting_siblings() {
    // A 1e300 F capacitor overflows its companion conductance to infinity,
    // which the factor prescan rejects — per-job that surfaces as Singular
    // at the first step.
    let mut decks: Vec<Netlist> = (0..5).map(tank_variant).collect();
    let mut bad = Netlist::new();
    let lc1 = bad.node("lc1");
    let lc2 = bad.node("lc2");
    let mid = bad.node("mid");
    bad.capacitor_ic(lc1, Netlist::GROUND, 1e300, 1.0);
    bad.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    bad.inductor_ic(lc1, mid, 25e-6, 0.0);
    bad.resistor(mid, lc2, 15.0);
    decks[2] = bad;

    let opts = TransientOptions::new(5e-9, 2e-6);
    let (batched, solo) = run_batch_and_solo(&decks, &opts);
    for (lane, (b, s)) in batched.iter().zip(&solo).enumerate() {
        match (b, s) {
            (Ok(b), Ok(s)) => {
                assert_ne!(lane, 2);
                assert_lane_identical(b, s, &format!("sibling lane {lane}"));
            }
            (Err(b), Err(s)) => {
                assert_eq!(lane, 2, "only the engineered lane may fail");
                assert_eq!(b, s, "lane error must match the per-job error");
                assert_eq!(b, &CircuitError::Singular { at: opts.dt });
            }
            _ => panic!("lane {lane}: batched and per-job disagree on success"),
        }
    }
}

#[test]
fn diverging_lane_fails_per_lane_with_the_per_job_error() {
    // max_iter = 2 with a 10 V step: the ±2 V/iteration clamp cannot close
    // the gap, so the Newton replay reports NoConvergence at t = dt.
    // Sibling lanes at 0.5 V converge within the budget.
    let mk = |volts: f64| {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(volts));
        nl.resistor(vin, out, 1e3);
        nl.capacitor(out, Netlist::GROUND, 1e-9);
        nl
    };
    let decks = vec![mk(0.5), mk(10.0), mk(0.25)];
    let mut opts = TransientOptions::new(1e-8, 1e-6);
    opts.max_iter = 2;
    let (batched, solo) = run_batch_and_solo(&decks, &opts);
    for (lane, (b, s)) in batched.iter().zip(&solo).enumerate() {
        match (b, s) {
            (Ok(b), Ok(s)) => {
                assert_ne!(lane, 1);
                assert_lane_identical(b, s, &format!("converging lane {lane}"));
            }
            (Err(b), Err(s)) => {
                assert_eq!(lane, 1, "only the 10 V lane may diverge");
                assert_eq!(b, s, "lane error must match the per-job error");
                assert!(matches!(b, CircuitError::NoConvergence { .. }));
            }
            _ => panic!("lane {lane}: batched and per-job disagree on success"),
        }
    }
}

#[test]
fn mixed_structures_fall_back_to_per_job_results() {
    let mut rc = Netlist::new();
    let a = rc.node("a");
    rc.resistor(a, Netlist::GROUND, 1e3);
    rc.capacitor_ic(a, Netlist::GROUND, 1e-9, 1.0);
    let decks = vec![tank_variant(0), rc, tank_variant(1)];
    let opts = TransientOptions::new(5e-9, 1e-6);
    let (batched, solo) = run_batch_and_solo(&decks, &opts);
    for (lane, (b, s)) in batched.iter().zip(&solo).enumerate() {
        let b = b.as_ref().expect("fallback lane converges");
        let s = s.as_ref().expect("solo run converges");
        assert_lane_identical(b, s, &format!("fallback lane {lane}"));
        assert_eq!(
            b.stats().batched_lanes,
            0,
            "mixed structures must not claim batch membership"
        );
    }
}

#[test]
fn structural_digest_ignores_values_but_not_wiring() {
    let a = tank_variant(0);
    let b = tank_variant(9); // same wiring, different values/ICs
    assert_eq!(a.structural_digest(), b.structural_digest());

    let mut rewired = Netlist::new();
    let lc1 = rewired.node("lc1");
    let lc2 = rewired.node("lc2");
    let mid = rewired.node("mid");
    rewired.capacitor_ic(lc1, Netlist::GROUND, 2e-9, 1.0);
    rewired.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    rewired.inductor_ic(lc1, mid, 25e-6, 0.0);
    rewired.resistor(mid, lc1, 15.0); // resistor returns to lc1, not lc2
    assert_ne!(a.structural_digest(), rewired.structural_digest());

    // Swapping an element kind at the same terminals also changes it.
    let mut rekinded = Netlist::new();
    let lc1 = rekinded.node("lc1");
    let lc2 = rekinded.node("lc2");
    let mid = rekinded.node("mid");
    rekinded.capacitor_ic(lc1, Netlist::GROUND, 2e-9, 1.0);
    rekinded.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    rekinded.inductor_ic(lc1, mid, 25e-6, 0.0);
    rekinded.switch(mid, lc2, true);
    assert_ne!(a.structural_digest(), rekinded.structural_digest());
}

#[test]
fn empty_batch_and_empty_deck_degenerate_cleanly() {
    let opts = TransientOptions::new(1e-9, 1e-8);
    assert!(run_transient_batch(&[], &opts).is_empty());

    // An empty deck has no unknowns: the batch gate falls back per job,
    // matching whatever run_transient does with it.
    let empty = Netlist::new();
    let batched = run_transient_batch(&[&empty], &opts);
    let solo = run_transient(&empty, &opts);
    assert_eq!(batched.len(), 1);
    assert_eq!(batched[0].is_ok(), solo.is_ok());
}
