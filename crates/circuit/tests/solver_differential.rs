//! Differential suite pinning the transient fast path bit-identical to the
//! reference path across both integrators and across linear and nonlinear
//! decks, plus the solver-counter contracts the fast path guarantees.
//!
//! "Bit-identical" here is literal: every recorded time, node voltage and
//! element current must have the same `f64` bit pattern under both
//! [`SolverPath`] values. The fast path earns this by construction (same
//! per-cell stamp accumulation order, same LU arithmetic, same Newton
//! update replay), and this suite is the tripwire for any refactor that
//! would trade that away.

use lcosc_circuit::{
    run_transient, Integrator, Netlist, SolverPath, TransientOptions, TransientResult, Waveform,
};

/// Bitwise slice equality (stricter than `==`: distinguishes signed zeros,
/// equates NaN payloads).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Whether `LCOSC_SOLVER=reference` is forcing every run onto the
/// reference path, making fast-path stats assertions meaningless.
fn hatch_forced() -> bool {
    std::env::var_os("LCOSC_SOLVER").is_some_and(|v| v == "reference")
}

fn assert_bit_identical(fast: &TransientResult, reference: &TransientResult, label: &str) {
    assert!(
        bits_equal(fast.times(), reference.times()),
        "{label}: times diverged"
    );
    assert!(
        bits_equal(fast.voltages_flat(), reference.voltages_flat()),
        "{label}: voltages diverged"
    );
    assert!(
        bits_equal(fast.currents_flat(), reference.currents_flat()),
        "{label}: currents diverged"
    );
}

/// Paper-shaped series tank ring-down: linear, both caps precharged.
fn tank() -> Netlist {
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, 2e-9, 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    nl.inductor(lc1, mid, 25e-6);
    nl.resistor(mid, lc2, 15.0);
    nl
}

/// Driven RLC with a sine source: linear, exercises the per-step RHS
/// restamp (time-varying source) against the cached factorization.
fn driven_rlc() -> Netlist {
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    let mid = nl.node("mid");
    let out = nl.node("out");
    nl.voltage_source(
        vin,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1e6,
            phase: 0.0,
        },
    );
    nl.resistor(vin, mid, 15.0);
    nl.inductor(mid, out, 25e-6);
    nl.capacitor(out, Netlist::GROUND, 1e-9);
    nl
}

/// Diode-clamped divider: nonlinear, forces the Newton overlay path.
fn diode_deck() -> Netlist {
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    let out = nl.node("out");
    nl.voltage_source(
        vin,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.0,
            amplitude: 1.5,
            frequency: 5e5,
            phase: 0.0,
        },
    );
    nl.resistor(vin, out, 1e3);
    nl.diode(
        out,
        Netlist::GROUND,
        lcosc_device::diode::DiodeModel::default(),
    );
    nl.capacitor(out, Netlist::GROUND, 1e-9);
    nl
}

fn run_both(nl: &Netlist, opts: &TransientOptions) -> (TransientResult, TransientResult) {
    let fast = run_transient(nl, opts).expect("fast path converges");
    let mut ref_opts = *opts;
    ref_opts.solver = SolverPath::Reference;
    let reference = run_transient(nl, &ref_opts).expect("reference path converges");
    (fast, reference)
}

#[test]
fn linear_tank_is_bit_identical_under_both_integrators() {
    let nl = tank();
    for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        let mut opts = TransientOptions::new(5e-9, 20e-6);
        opts.integrator = integrator;
        let (fast, reference) = run_both(&nl, &opts);
        assert_bit_identical(&fast, &reference, &format!("tank/{integrator:?}"));
        assert!(fast.stats().used_linear_fast_path || hatch_forced());
        assert!(!reference.stats().used_linear_fast_path);
    }
}

#[test]
fn driven_linear_deck_is_bit_identical_with_stride_and_dc_start() {
    let nl = driven_rlc();
    for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        let mut opts = TransientOptions::new(2e-9, 4e-6);
        opts.integrator = integrator;
        opts.record_stride = 7;
        opts.use_initial_conditions = false;
        let (fast, reference) = run_both(&nl, &opts);
        assert_bit_identical(&fast, &reference, &format!("driven/{integrator:?}"));
    }
}

#[test]
fn nonlinear_deck_is_bit_identical_under_both_integrators() {
    let nl = diode_deck();
    for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        let mut opts = TransientOptions::new(1e-8, 4e-6);
        opts.integrator = integrator;
        let (fast, reference) = run_both(&nl, &opts);
        assert_bit_identical(&fast, &reference, &format!("diode/{integrator:?}"));
        assert!(
            !fast.stats().used_linear_fast_path,
            "diode deck is nonlinear"
        );
        assert_eq!(
            fast.stats().newton_iterations,
            reference.stats().newton_iterations
        );
    }
}

#[test]
fn linear_fast_path_counters_prove_single_factorization_and_no_allocs() {
    if hatch_forced() {
        return; // hatch disables the path under test
    }
    let nl = tank();
    let opts = TransientOptions::new(5e-9, 10e-6);
    let res = run_transient(&nl, &opts).expect("converges");
    let s = res.stats();
    assert!(s.used_linear_fast_path);
    assert_eq!(s.factorizations, 1, "one LU for the whole transient");
    assert_eq!(s.factor_reuses, s.steps - 1, "every later step reuses it");
    assert_eq!(
        s.post_warmup_allocations, 0,
        "Newton inner loop must be allocation-free after the first step"
    );
}

#[test]
fn nonlinear_fast_path_reuses_workspace() {
    if hatch_forced() {
        return; // hatch disables the path under test
    }
    let nl = diode_deck();
    let opts = TransientOptions::new(1e-8, 2e-6);
    let res = run_transient(&nl, &opts).expect("converges");
    let s = res.stats();
    assert!(!s.used_linear_fast_path);
    assert_eq!(s.factorizations, s.newton_iterations);
    assert_eq!(s.factor_reuses, 0);
    assert_eq!(
        s.post_warmup_allocations, 0,
        "workspace persists across steps"
    );
}

#[test]
fn reference_path_attributes_per_step_allocations() {
    let nl = tank();
    let mut opts = TransientOptions::new(5e-9, 2e-6);
    opts.solver = SolverPath::Reference;
    let res = run_transient(&nl, &opts).expect("converges");
    let s = res.stats();
    assert!(s.post_warmup_allocations > 0);
    assert_eq!(s.factor_reuses, 0);
}

#[test]
fn stats_are_deterministic_across_repeat_runs() {
    let nl = driven_rlc();
    let opts = TransientOptions::new(2e-9, 1e-6);
    let a = run_transient(&nl, &opts).expect("run a");
    let b = run_transient(&nl, &opts).expect("run b");
    assert_eq!(a.stats(), b.stats());
    assert_bit_identical(&a, &b, "repeat");
}
