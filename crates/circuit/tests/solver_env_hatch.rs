//! `LCOSC_SOLVER={reference,dense,sparse}` escape-hatch coverage.
//!
//! Lives in its own integration-test binary (= its own process) because it
//! mutates the process environment; sharing a binary with the fast-path
//! stats tests would race under the parallel test runner. All assertions
//! live in **one** `#[test]` for the same reason.

use lcosc_circuit::workloads::rc_ladder;
use lcosc_circuit::{run_transient, Netlist, SolverPath, TransientOptions};

fn tank() -> Netlist {
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, 2e-9, 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, 2e-9, -1.0);
    nl.inductor(lc1, mid, 25e-6);
    nl.resistor(mid, lc2, 15.0);
    nl
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn env_hatch_forces_reference_path_with_identical_results() {
    let nl = tank();
    let opts = TransientOptions::new(5e-9, 5e-6);
    assert_eq!(opts.solver, SolverPath::Auto);

    // Baseline with the hatch open: linear deck takes the fast path.
    std::env::remove_var("LCOSC_SOLVER");
    let fast = run_transient(&nl, &opts).expect("fast run");
    assert!(fast.stats().used_linear_fast_path);

    // Unrecognised values leave Auto selection alone.
    std::env::set_var("LCOSC_SOLVER", "turbo");
    let still_fast = run_transient(&nl, &opts).expect("unrecognised value run");
    assert!(still_fast.stats().used_linear_fast_path);

    // The hatch itself: force the reference path without touching code.
    std::env::set_var("LCOSC_SOLVER", "reference");
    let forced = run_transient(&nl, &opts).expect("forced reference run");
    assert!(!forced.stats().used_linear_fast_path);
    assert_eq!(forced.stats().factor_reuses, 0);

    // Forced-reference output is bit-identical to the fast path.
    assert!(bits_equal(fast.times(), forced.times()));
    assert!(bits_equal(fast.voltages_flat(), forced.voltages_flat()));
    assert!(bits_equal(fast.currents_flat(), forced.currents_flat()));

    // `sparse` forces the sparse path even on a tiny deck, and `dense`
    // forces the dense path even on a deck Auto would route sparse —
    // overriding `opts.solver` in both directions.
    let ladder = rc_ladder(200);
    std::env::set_var("LCOSC_SOLVER", "sparse");
    let forced_sparse = run_transient(&nl, &opts).expect("forced sparse run");
    assert!(forced_sparse.stats().used_sparse_path);

    std::env::set_var("LCOSC_SOLVER", "dense");
    let mut sparse_opts = TransientOptions::new(2e-9, 200e-9);
    sparse_opts.solver = SolverPath::Sparse;
    let overridden = run_transient(&ladder, &sparse_opts).expect("forced dense run");
    assert!(!overridden.stats().used_sparse_path);
    assert!(overridden.stats().used_linear_fast_path);

    // Forced-sparse on the tank agrees with the dense paths to tolerance
    // (different elimination order, so bit-identity is not promised).
    for (s, f) in forced_sparse
        .voltages_flat()
        .iter()
        .zip(fast.voltages_flat().iter())
    {
        assert!((s - f).abs() <= 1e-9 + 1e-6 * f.abs(), "{s} vs {f}");
    }

    std::env::remove_var("LCOSC_SOLVER");
}
