//! Differential suite for the sparse solver path.
//!
//! The sparse path does **not** promise bit-identity with the dense path —
//! its fill-reducing elimination order intentionally differs — so this
//! suite pins the two contracts it does make:
//!
//! 1. **Tolerance agreement with dense** on every deck both paths can
//!    solve: same structure, same physics, different rounding only.
//! 2. **Bit-exact determinism with itself**: the sparse factorization is a
//!    pure function of the cached symbolic pattern and the stamped values,
//!    so repeat runs (and therefore any thread count in a campaign) must
//!    reproduce identical bytes.
//!
//! Plus the [`SolverPath::Auto`] selection contract: below
//! [`SPARSE_MIN_UNKNOWNS`] a linear deck runs dense, at or above it the
//! run is byte-identical to forced-sparse.

use lcosc_circuit::workloads::{coupled_tank_network, pad_driver_array, rc_ladder};
use lcosc_circuit::{
    run_transient, Integrator, Netlist, SolverPath, TransientOptions, TransientResult,
    SPARSE_MIN_UNKNOWNS,
};

/// Bitwise slice equality (stricter than `==`).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Whether `LCOSC_SOLVER` is overriding path selection, which would make
/// the `opts.solver`-based forcing in this suite meaningless.
fn hatch_forced() -> bool {
    std::env::var_os("LCOSC_SOLVER").is_some()
}

fn assert_bits_identical(a: &TransientResult, b: &TransientResult, label: &str) {
    assert!(bits_equal(a.times(), b.times()), "{label}: times diverged");
    assert!(
        bits_equal(a.voltages_flat(), b.voltages_flat()),
        "{label}: voltages diverged"
    );
    assert!(
        bits_equal(a.currents_flat(), b.currents_flat()),
        "{label}: currents diverged"
    );
}

/// Dense and sparse share structure and physics but not rounding; compare
/// against the larger of an absolute floor and a relative band.
fn assert_close(a: &TransientResult, b: &TransientResult, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: sample counts differ");
    for (x, y) in a
        .voltages_flat()
        .iter()
        .chain(a.currents_flat().iter())
        .zip(b.voltages_flat().iter().chain(b.currents_flat().iter()))
    {
        let tol = 1e-9 + 1e-6 * x.abs().max(y.abs());
        assert!((x - y).abs() <= tol, "{label}: {x} vs {y}");
    }
}

fn run_with(nl: &Netlist, opts: &TransientOptions, path: SolverPath) -> TransientResult {
    let mut o = *opts;
    o.solver = path;
    run_transient(nl, &o).expect("transient run")
}

/// Every workload deck, with options sized for a quick but non-trivial run.
fn decks() -> Vec<(&'static str, Netlist, TransientOptions)> {
    vec![
        (
            "rc_ladder_120",
            rc_ladder(120),
            TransientOptions::new(2e-9, 400e-9),
        ),
        (
            "coupled_tanks_40",
            coupled_tank_network(40),
            TransientOptions::new(20e-9, 8e-6),
        ),
        (
            "pad_array_40",
            pad_driver_array(40),
            TransientOptions::new(10e-12, 2e-9),
        ),
    ]
}

#[test]
fn sparse_agrees_with_dense_within_tolerance_on_all_decks() {
    if hatch_forced() {
        return;
    }
    for (label, nl, opts) in decks() {
        for integrator in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
            let mut o = opts;
            o.integrator = integrator;
            let dense = run_with(&nl, &o, SolverPath::Dense);
            let sparse = run_with(&nl, &o, SolverPath::Sparse);
            assert!(sparse.stats().used_sparse_path, "{label}: path not taken");
            assert!(!dense.stats().used_sparse_path);
            assert_close(&sparse, &dense, label);
        }
    }
}

#[test]
fn sparse_results_are_bit_identical_across_repeat_runs() {
    if hatch_forced() {
        return;
    }
    for (label, nl, opts) in decks() {
        let first = run_with(&nl, &opts, SolverPath::Sparse);
        for _ in 0..2 {
            let again = run_with(&nl, &opts, SolverPath::Sparse);
            assert_bits_identical(&first, &again, label);
        }
    }
}

#[test]
fn auto_matches_forced_sparse_bit_for_bit_above_threshold() {
    if hatch_forced() {
        return;
    }
    let nl = rc_ladder(SPARSE_MIN_UNKNOWNS); // unknowns = sections + 2
    assert!(nl.unknown_count() >= SPARSE_MIN_UNKNOWNS);
    let opts = TransientOptions::new(2e-9, 200e-9);
    let auto = run_with(&nl, &opts, SolverPath::Auto);
    let forced = run_with(&nl, &opts, SolverPath::Sparse);
    assert!(auto.stats().used_sparse_path);
    assert_bits_identical(&auto, &forced, "auto-vs-forced-sparse");
}

#[test]
fn auto_stays_dense_below_threshold_and_matches_dense_exactly() {
    if hatch_forced() {
        return;
    }
    let nl = rc_ladder(8);
    assert!(nl.unknown_count() < SPARSE_MIN_UNKNOWNS);
    let opts = TransientOptions::new(2e-9, 200e-9);
    let auto = run_with(&nl, &opts, SolverPath::Auto);
    let dense = run_with(&nl, &opts, SolverPath::Dense);
    assert!(!auto.stats().used_sparse_path);
    assert_bits_identical(&auto, &dense, "auto-vs-forced-dense");
}

#[test]
fn sparse_counters_prove_symbolic_and_numeric_reuse() {
    if hatch_forced() {
        return;
    }
    let nl = coupled_tank_network(80);
    let opts = TransientOptions::new(20e-9, 4e-6);
    let res = run_with(&nl, &opts, SolverPath::Sparse);
    let s = res.stats();
    assert!(s.used_sparse_path);
    // Linear deck: one numeric factorization, every further step reuses it.
    assert_eq!(s.factorizations, 1);
    assert_eq!(s.factor_reuses, s.steps - 1);
    // Exactly one symbolic analysis or cache hit per run, never more.
    assert_eq!(s.symbolic_analyses + s.symbolic_reuses, 1);
    assert_eq!(s.post_warmup_allocations, 0, "stepping must not allocate");
    // Same structure again: the symbolic cache must serve it.
    let again = run_with(&nl, &opts, SolverPath::Sparse);
    assert_eq!(again.stats().symbolic_analyses, 0);
    assert_eq!(again.stats().symbolic_reuses, 1);
}
