//! Property-based tests on the MNA simulator: conservation laws and
//! solution invariants on randomized linear networks.

use lcosc_circuit::analysis::dc::solve_dc;
use lcosc_circuit::analysis::transient::{run_transient, TransientOptions};
use lcosc_circuit::netlist::{Netlist, Waveform};
use proptest::prelude::*;

proptest! {
    /// Voltage divider solves exactly for arbitrary positive resistors.
    #[test]
    fn divider_ratio_exact(r1 in 1.0f64..1e6, r2 in 1.0f64..1e6, v in -100.0f64..100.0) {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(v));
        nl.resistor(vin, out, r1);
        nl.resistor(out, Netlist::GROUND, r2);
        let s = solve_dc(&nl).expect("linear network");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((s.voltage(out) - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    /// KCL: currents into a three-resistor star node sum to zero.
    #[test]
    fn star_node_kcl(
        r in proptest::collection::vec(10.0f64..1e5, 3),
        v in proptest::collection::vec(-10.0f64..10.0, 3),
    ) {
        let mut nl = Netlist::new();
        let star = nl.node("star");
        let mut legs = Vec::new();
        for k in 0..3 {
            let src = nl.node("src");
            nl.voltage_source(src, Netlist::GROUND, Waveform::Dc(v[k]));
            legs.push(nl.resistor(src, star, r[k]));
        }
        let s = solve_dc(&nl).expect("linear network");
        let total: f64 = legs.iter().map(|&e| s.current(e)).sum();
        prop_assert!(total.abs() < 1e-9, "kcl residual {total}");
    }

    /// Superposition: response to two sources equals the sum of responses.
    #[test]
    fn superposition_holds(va in -10.0f64..10.0, vb in -10.0f64..10.0) {
        let build = |va: f64, vb: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            let out = nl.node("out");
            nl.voltage_source(a, Netlist::GROUND, Waveform::Dc(va));
            nl.voltage_source(b, Netlist::GROUND, Waveform::Dc(vb));
            nl.resistor(a, out, 1e3);
            nl.resistor(b, out, 2.2e3);
            nl.resistor(out, Netlist::GROUND, 4.7e3);
            let s = solve_dc(&nl).expect("linear network");
            s.voltage(out)
        };
        let both = build(va, vb);
        let sum = build(va, 0.0) + build(0.0, vb);
        prop_assert!((both - sum).abs() < 1e-9, "{both} vs {sum}");
    }

    /// An RC transient always relaxes monotonically toward the source.
    #[test]
    fn rc_step_is_monotone(r_k in 0.1f64..100.0, c_n in 0.1f64..100.0) {
        let r = r_k * 1e3;
        let c = c_n * 1e-9;
        let tau = r * c;
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(1.0));
        nl.resistor(vin, out, r);
        nl.capacitor(out, Netlist::GROUND, c);
        let opts = TransientOptions::new(tau / 50.0, 3.0 * tau);
        let res = run_transient(&nl, &opts).expect("stable network");
        let trace = res.voltage_trace(out);
        for w in trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9, "non-monotone {} -> {}", w[0], w[1]);
        }
        let last = *trace.last().expect("non-empty");
        prop_assert!((last - (1.0 - (-3.0f64).exp())).abs() < 0.02, "{last}");
    }

    /// Passivity: a resistive network never outputs more than the source
    /// magnitude anywhere.
    #[test]
    fn resistive_network_bounded_by_source(
        rs in proptest::collection::vec(10.0f64..1e5, 4),
        v in -50.0f64..50.0,
    ) {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let n1 = nl.node("n1");
        let n2 = nl.node("n2");
        nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(v));
        nl.resistor(vin, n1, rs[0]);
        nl.resistor(n1, n2, rs[1]);
        nl.resistor(n2, Netlist::GROUND, rs[2]);
        nl.resistor(n1, Netlist::GROUND, rs[3]);
        let s = solve_dc(&nl).expect("linear network");
        for node in [n1, n2] {
            let vn = s.voltage(node);
            prop_assert!(vn.abs() <= v.abs() + 1e-9, "node {vn} vs source {v}");
        }
    }

    /// `structural_digest` keys the sparse symbolic cache, so it must be
    /// invariant under element *values* while distinguishing element
    /// *structure*: a terminal permutation or an extra node must change it.
    #[test]
    fn structural_digest_ignores_values_but_sees_structure(
        r1 in 1.0f64..1e6,
        r2 in 1.0f64..1e6,
        c in 1e-12f64..1e-6,
        v in -10.0f64..10.0,
    ) {
        let build = |r1: f64, r2: f64, c: f64, v: f64, flip: bool, extra: bool| {
            let mut nl = Netlist::new();
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.voltage_source(vin, Netlist::GROUND, Waveform::Dc(v));
            if flip {
                nl.resistor(out, vin, r1);
            } else {
                nl.resistor(vin, out, r1);
            }
            nl.resistor(out, Netlist::GROUND, r2);
            nl.capacitor(out, Netlist::GROUND, c);
            if extra {
                let tail = nl.node("tail");
                nl.resistor(out, tail, r2);
            }
            nl.structural_digest()
        };
        let base = build(r1, r2, c, v, false, false);
        // Value-invariant: different values, same structure, same digest.
        prop_assert_eq!(base, build(r1 * 2.0 + 1.0, r2 / 3.0 + 1.0, c * 10.0, -v, false, false));
        // Terminal permutation changes the digest.
        prop_assert_ne!(base, build(r1, r2, c, v, true, false));
        // Node-count change changes the digest.
        prop_assert_ne!(base, build(r1, r2, c, v, false, true));
    }
}
