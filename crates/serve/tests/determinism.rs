//! The service's determinism contract: response payloads are
//! byte-identical across worker thread counts, cache states and
//! submission orders.

use lcosc_serve::{ServeConfig, ServeEngine};
use lcosc_trace::{MemorySink, Trace, TraceEvent};
use std::sync::Arc;
use std::time::Duration;

fn engine(threads: usize, cache_entries: usize) -> Arc<ServeEngine> {
    ServeEngine::start(&ServeConfig {
        threads,
        queue_depth: 64,
        cache_entries,
        deadline: Duration::from_secs(60),
        max_line_bytes: 1 << 20,
        trace: Trace::off(),
    })
}

/// A mixed request batch covering every cacheable kind.
fn request_batch() -> Vec<String> {
    let mut lines: Vec<String> = [
        r#"{"id":0,"kind":"scenario","fault":"open_coil"}"#,
        r#"{"id":1,"kind":"scenario","fault":"coil_short"}"#,
        r#"{"id":2,"kind":"scenario","fault":"pin_short_gnd","pin":0}"#,
        r#"{"id":3,"kind":"scenario","fault":"pin_short_vdd","pin":1}"#,
        r#"{"id":4,"kind":"scenario","fault":"missing_cap","pin":0}"#,
        r#"{"id":5,"kind":"scenario","fault":"rs_drift","factor":4.0}"#,
        r#"{"id":6,"kind":"scenario","fault":"supply_loss"}"#,
        r#"{"id":7,"kind":"scenario","fault":"driver_dead"}"#,
        r#"{"id":8,"kind":"campaign","campaign":"yield","dies":32,"seed":11,"window":0.1}"#,
        r#"{"id":9,"kind":"campaign","campaign":"yield","dies":32,"seed":12,"window":0.1}"#,
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    lines.push(
        r#"{"id":10,"kind":"transient","deck":{"elements":[
            {"kind":"vsource","p":"in","n":"gnd","wave":{"type":"dc","value":1.0}},
            {"kind":"resistor","a":"in","b":"out","ohms":1000.0},
            {"kind":"capacitor","a":"out","b":"gnd","farads":1e-6}
        ]},"dt":1e-5,"t_end":5e-3}"#
            .replace('\n', ""),
    );
    lines
}

fn run_batch(engine: &Arc<ServeEngine>, lines: &[String]) -> Vec<String> {
    // Submit everything first (pipelined across the pool), then resolve.
    let handles: Vec<_> = lines.iter().map(|l| engine.submit_line(l)).collect();
    handles
        .into_iter()
        .map(lcosc_serve::Response::wait)
        .collect()
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let lines = request_batch();
    let serial = engine(1, 256);
    let parallel = engine(4, 256);
    let a = run_batch(&serial, &lines);
    let b = run_batch(&parallel, &lines);
    for (line, (ra, rb)) in lines.iter().zip(a.iter().zip(&b)) {
        assert_eq!(ra, rb, "thread-count divergence for {line}");
        assert!(ra.contains("\"status\":\"ok\""), "{ra}");
    }
    serial.shutdown();
    parallel.shutdown();
}

#[test]
fn cold_and_warmed_cache_produce_identical_bytes() {
    let lines = request_batch();
    let warm = engine(2, 256);
    let cold = engine(2, 0); // cache disabled: every request computes
    let first = run_batch(&warm, &lines);
    let replay = run_batch(&warm, &lines); // all hits
    let uncached = run_batch(&cold, &lines);
    assert_eq!(first, replay, "cache replay changed bytes");
    assert_eq!(first, uncached, "cache path changed bytes");
    assert_eq!(warm.counters().cache_hits, lines.len() as u64);
    assert_eq!(cold.counters().cache_hits, 0);
    warm.shutdown();
    cold.shutdown();
}

#[test]
fn submission_order_does_not_change_any_response() {
    let lines = request_batch();
    let reversed: Vec<String> = lines.iter().rev().cloned().collect();
    let forward = engine(3, 256);
    let backward = engine(3, 256);
    let mut a = run_batch(&forward, &lines);
    let mut b = run_batch(&backward, &reversed);
    a.sort();
    b.sort();
    assert_eq!(a, b, "arrival order changed a response");
    forward.shutdown();
    backward.shutdown();
}

#[test]
fn golden_trace_events_carry_completion_indices_in_stream_order() {
    let sink = Arc::new(MemorySink::new());
    let engine = ServeEngine::start(&ServeConfig {
        threads: 1,
        queue_depth: 16,
        cache_entries: 16,
        deadline: Duration::from_secs(60),
        max_line_bytes: 1 << 20,
        trace: Trace::new(sink.clone()),
    });
    let lines = [
        r#"{"id":0,"kind":"scenario","fault":"open_coil"}"#,
        r#"{"id":1,"kind":"scenario","fault":"open_coil"}"#,
        r#"{"id":2,"kind":"stats"}"#,
    ];
    for line in lines {
        let response = engine.submit_line(line).wait();
        assert!(response.contains("\"status\":\"ok\""), "{response}");
    }
    let events = sink.snapshot();
    let golden: Vec<&TraceEvent> = events.iter().filter(|e| e.is_golden()).collect();
    let timing: Vec<&TraceEvent> = events.iter().filter(|e| !e.is_golden()).collect();
    assert_eq!(golden.len(), 3);
    assert_eq!(timing.len(), 3);
    let mut digests = Vec::new();
    for (expect, ev) in golden.iter().enumerate() {
        let TraceEvent::ServeRequest { index, digest, .. } = ev else {
            panic!("unexpected golden event {ev:?}");
        };
        assert_eq!(*index, expect as u64, "completion indices in stream order");
        digests.push(*digest);
    }
    // Requests 0 and 1 differ only in id: same content digest (the second
    // was the cache hit); the stats request digests as 0 (not cacheable).
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[2], 0);
    assert_eq!(engine.counters().cache_hits, 1);
    engine.shutdown();
}
