//! Golden equivalence of `"spice"` and `"deck"` transient requests.
//!
//! The desugar runs before canonicalization, so a `.sp` request and its
//! JSON-deck spelling must share one cache digest and one response byte
//! stream. These tests pin both halves: the canonical-key/digest identity
//! (no engine involved) and the live byte-identity through a real engine,
//! where the second spelling must be answered from the cache.

use lcosc_campaign::{digest_bytes, Json};
use lcosc_circuit::netlist_to_json;
use lcosc_serve::{canonical_key, desugar_spice, ServeConfig, ServeEngine};
use lcosc_spice::parse_spice;
use lcosc_trace::Trace;
use std::time::Duration;

/// The paper's LC tank as a `.sp` deck: damped ring-down from a charged
/// capacitor, exactly the fixture `tests/golden/spice` carries.
const TANK_SP: &str = "* paper tank ring-down\n\
    L1 tank 0 10u ic=0\n\
    C1 tank 0 2.2n ic=3.3\n\
    R1 tank 0 1k\n\
    .tran 1e-7 1e-5 uic\n\
    .end\n";

/// Builds the JSON-deck spelling of [`TANK_SP`] with the same id.
fn deck_request(id: &str) -> String {
    let deck = parse_spice(TANK_SP).expect("fixture parses");
    let opts = deck.tran_options().expect("fixture has .tran");
    Json::obj([
        ("id", Json::Str(id.to_string())),
        ("kind", Json::Str("transient".to_string())),
        ("deck", netlist_to_json(&deck.netlist)),
        ("dt", Json::Float(opts.dt)),
        ("t_end", Json::Float(opts.t_end)),
    ])
    .render()
}

/// Builds the `.sp` spelling with the same id.
fn spice_request(id: &str) -> String {
    Json::obj([
        ("id", Json::Str(id.to_string())),
        ("kind", Json::Str("transient".to_string())),
        ("spice", Json::Str(TANK_SP.to_string())),
    ])
    .render()
}

#[test]
fn spice_and_deck_requests_share_canonical_key_and_digest() {
    let spice = Json::parse(&spice_request("a")).expect("valid JSON");
    let deck = Json::parse(&deck_request("b")).expect("valid JSON");
    let desugared = desugar_spice(&spice).expect("desugar succeeds");
    let key_spice = canonical_key(&desugared);
    let key_deck = canonical_key(&deck);
    assert_eq!(key_spice, key_deck);
    assert_eq!(
        digest_bytes(key_spice.as_bytes()),
        digest_bytes(key_deck.as_bytes())
    );
}

#[test]
fn spice_request_is_answered_from_the_deck_requests_cache_slot() {
    let engine = ServeEngine::start(&ServeConfig {
        threads: 1,
        queue_depth: 8,
        cache_entries: 16,
        deadline: Duration::from_secs(30),
        max_line_bytes: 1 << 20,
        trace: Trace::off(),
    });
    let from_deck = engine.submit_line(&deck_request("x")).wait();
    assert!(
        from_deck.starts_with("{\"id\":\"x\",\"status\":\"ok\""),
        "{from_deck}"
    );
    let from_spice = engine.submit_line(&spice_request("y")).wait();
    // Byte-identical modulo the echoed id…
    assert_eq!(
        from_deck.replace("\"id\":\"x\"", "\"id\":\"y\""),
        from_spice
    );
    // …and served from the cache: same digest, no second computation.
    let counters = engine.counters();
    assert_eq!(counters.cache_misses, 1);
    assert_eq!(counters.cache_hits, 1);
    engine.shutdown();
}

#[test]
fn bad_spice_bodies_answer_bad_request_with_p_codes() {
    let engine = ServeEngine::start(&ServeConfig::default());
    let cases = [
        (
            "{\"id\":1,\"kind\":\"transient\",\"spice\":\"R1 a 0 12zz\\n\"}",
            "P003",
        ),
        (
            "{\"id\":2,\"kind\":\"transient\",\"spice\":\"R1 a 0 1k\\n\"}",
            ".tran",
        ),
        (
            "{\"id\":3,\"kind\":\"transient\",\"spice\":\"R1 a 0 1k\\n\",\"deck\":{}}",
            "both",
        ),
    ];
    for (line, needle) in cases {
        let response = engine.submit_line(line).wait();
        assert!(
            response.contains("\"status\":\"bad_request\""),
            "{line} -> {response}"
        );
        assert!(response.contains(needle), "{line} -> {response}");
    }
    engine.shutdown();
}
