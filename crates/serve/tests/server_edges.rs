//! Edge-path behavior of the service: deadline overruns, malformed input,
//! admission-control rejections and graceful shutdown.

use lcosc_serve::{serve_tcp, ServeConfig, ServeEngine};
use lcosc_trace::Trace;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn engine_with(threads: usize, queue_depth: usize, deadline: Duration) -> Arc<ServeEngine> {
    ServeEngine::start(&ServeConfig {
        threads,
        queue_depth,
        cache_entries: 64,
        deadline,
        max_line_bytes: 1 << 20,
        trace: Trace::off(),
    })
}

/// A transient request that needs far more compute than any test deadline:
/// two million nonlinear (diode) time steps.
fn slow_request(id: u32) -> String {
    format!(
        r#"{{"id":{id},"kind":"transient","deck":{{"elements":[
            {{"kind":"vsource","p":"in","n":"gnd","wave":{{"type":"sine","amplitude":1.0,"frequency":1e6}}}},
            {{"kind":"resistor","a":"in","b":"out","ohms":100.0}},
            {{"kind":"diode","anode":"out","cathode":"gnd"}}
        ]}},"dt":1e-9,"t_end":2e-3,"record_stride":1000000}}"#
    )
    .replace('\n', "")
}

#[test]
fn deadline_overrun_times_out_and_frees_the_worker_slot() {
    let engine = engine_with(1, 8, Duration::from_millis(50));
    let slow = engine.submit_line(&slow_request(1)).wait();
    assert!(slow.contains("\"status\":\"timeout\""), "{slow}");
    assert!(slow.contains("deadline exceeded"), "{slow}");
    // The single worker slot must be free again: a quick request
    // completes. A 10-step linear transient stays far under the 50 ms
    // deadline (a fault scenario no longer does: multi-rate guard
    // windows around the injection pay real cycle-fidelity work).
    let quick = engine
        .submit_line(
            r#"{"id":2,"kind":"transient","deck":{"elements":[{"kind":"vsource","p":"in","n":"gnd","wave":{"type":"dc","value":1.0}},{"kind":"resistor","a":"in","b":"gnd","ohms":50.0}]},"dt":1e-6,"t_end":1e-5}"#,
        )
        .wait();
    assert!(quick.contains("\"status\":\"ok\""), "{quick}");
    let counters = engine.counters();
    assert_eq!(counters.by_status[0], 1, "ok count");
    assert_eq!(counters.by_status[2], 1, "timeout count");
    engine.begin_drain();
}

#[test]
fn full_queue_rejects_with_overloaded_instead_of_buffering() {
    // One worker stuck on a slow job (generous deadline so it stays put),
    // a queue of depth 1: the first extra request queues, further ones
    // must be rejected immediately.
    let engine = engine_with(1, 1, Duration::from_secs(60));
    let _stuck = engine.submit_line(&slow_request(1));
    // Wait until the worker has dequeued the slow job, so queue occupancy
    // is deterministic for the assertions below.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let queued = engine.submit_line(&slow_request(2));
        let probe = engine.submit_line(&slow_request(3)).wait();
        if probe.contains("\"status\":\"overloaded\"") {
            assert!(probe.contains("\"id\":3"), "{probe}");
            drop(queued);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queue never saturated: {probe}"
        );
    }
    assert!(engine.counters().by_status[3] >= 1, "overloaded count");
    // Don't wait for the 60 s job: begin_drain refuses new work but the
    // abandoned compute threads die with the process.
    engine.begin_drain();
}

#[test]
fn malformed_line_answers_bad_request_and_keeps_the_connection_alive() {
    let engine = engine_with(2, 8, Duration::from_secs(30));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let accept_engine = Arc::clone(&engine);
    let accept = std::thread::spawn(move || serve_tcp(&accept_engine, &listener));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Garbage first: the server must answer and keep reading.
    writer.write_all(b"this is not json\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"status\":\"bad_request\""), "{line}");
    assert!(line.contains("invalid JSON"), "{line}");

    // Same connection still works for a valid request.
    line.clear();
    writer
        .write_all(b"{\"id\":7,\"kind\":\"scenario\",\"fault\":\"driver_dead\"}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("{\"id\":7,\"status\":\"ok\""), "{line}");

    // Shutdown via protocol stops the accept loop and drains the engine.
    line.clear();
    writer
        .write_all(b"{\"id\":8,\"kind\":\"shutdown\"}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"draining\":true"), "{line}");
    drop(writer);
    accept.join().expect("accept loop").expect("clean exit");
    engine.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work_and_refuses_new_requests() {
    let engine = engine_with(2, 8, Duration::from_secs(30));
    // Admit a batch of real jobs, then immediately begin draining.
    let in_flight: Vec<_> = [
        r#"{"id":0,"kind":"scenario","fault":"open_coil"}"#,
        r#"{"id":1,"kind":"scenario","fault":"coil_short"}"#,
        r#"{"id":2,"kind":"scenario","fault":"supply_loss"}"#,
    ]
    .iter()
    .map(|line| engine.submit_line(line))
    .collect();
    engine.begin_drain();

    let refused = engine
        .submit_line(r#"{"id":9,"kind":"scenario","fault":"driver_dead"}"#)
        .wait();
    assert!(
        refused.contains("\"status\":\"shutting_down\""),
        "{refused}"
    );

    // Every admitted job still delivers a real result.
    for (i, handle) in in_flight.into_iter().enumerate() {
        let response = handle.wait();
        assert!(
            response.starts_with(&format!("{{\"id\":{i},\"status\":\"ok\"")),
            "{response}"
        );
    }
    engine.shutdown();
    // Shutdown is idempotent; post-shutdown submissions are refused unless
    // they can be replayed from the cache (replay needs no worker).
    engine.shutdown();
    let uncached = engine
        .submit_line(r#"{"kind":"scenario","fault":"rs_drift","factor":2.0}"#)
        .wait();
    assert!(
        uncached.contains("\"status\":\"shutting_down\""),
        "{uncached}"
    );
    let replayed = engine
        .submit_line(r#"{"kind":"scenario","fault":"open_coil"}"#)
        .wait();
    assert!(replayed.contains("\"status\":\"ok\""), "{replayed}");
}

#[test]
fn oversized_line_answers_line_too_long_and_keeps_the_connection_alive() {
    let engine = ServeEngine::start(&ServeConfig {
        threads: 1,
        queue_depth: 8,
        cache_entries: 16,
        deadline: Duration::from_secs(30),
        max_line_bytes: 256,
        trace: Trace::off(),
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let accept_engine = Arc::clone(&engine);
    let accept = std::thread::spawn(move || serve_tcp(&accept_engine, &listener));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // A line well past the cap: the reader must not buffer it, must answer
    // with the typed error, and must stay in sync with the stream.
    let mut oversized = vec![b'x'; 4096];
    oversized.push(b'\n');
    writer.write_all(&oversized).expect("write oversized");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"status\":\"bad_request\""), "{line}");
    assert!(line.contains("line_too_long"), "{line}");
    assert!(line.contains("256"), "{line}");

    // The same connection still serves a normal request afterwards.
    line.clear();
    writer
        .write_all(b"{\"id\":1,\"kind\":\"stats\"}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("{\"id\":1,\"status\":\"ok\""), "{line}");
    // The rejection went through the normal counter path.
    assert!(line.contains("\"bad_request\":1"), "{line}");

    line.clear();
    writer
        .write_all(b"{\"id\":2,\"kind\":\"shutdown\"}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"draining\":true"), "{line}");
    drop(writer);
    accept.join().expect("accept loop").expect("clean exit");
    engine.shutdown();
}
