//! Content-addressed result cache.
//!
//! The cache maps `digest_bytes(canonical_request)` — see
//! [`crate::protocol::canonical_key`] — to the **rendered result payload**
//! of a successful response. Storing the payload (rather than the full
//! response line) is what keeps responses byte-identical whether they are
//! computed or replayed: the `"id"` differs per request, so the line is
//! re-assembled around the stored bytes on every hit.
//!
//! Collision safety: entries store the canonical preimage alongside the
//! payload, and a lookup whose preimage differs from the stored one is a
//! miss, never a wrong answer. Eviction is FIFO at a fixed capacity, so
//! the memory footprint is bounded by configuration.

use std::collections::HashMap;
use std::collections::VecDeque;

/// Fixed-capacity FIFO content-addressed store.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<u64, (String, String)>,
    order: VecDeque<u64>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the stored payload for `digest`, verifying the canonical
    /// preimage to rule out digest collisions.
    pub fn get(&self, digest: u64, canonical: &str) -> Option<&str> {
        self.map
            .get(&digest)
            .filter(|(key, _)| key == canonical)
            .map(|(_, payload)| payload.as_str())
    }

    /// Stores `payload` under `digest`, evicting the oldest entry when the
    /// cache is full. Re-inserting an existing digest refreshes the
    /// payload without growing the FIFO.
    pub fn insert(&mut self, digest: u64, canonical: &str, payload: String) {
        if self.capacity == 0 {
            return;
        }
        if self
            .map
            .insert(digest, (canonical.to_string(), payload))
            .is_some()
        {
            return;
        }
        self.order.push_back(digest);
        while self.map.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_campaign::digest_bytes;

    #[test]
    fn hit_requires_matching_preimage() {
        let mut c = ResultCache::new(4);
        let key = r#"{"kind":"stats"}"#;
        c.insert(digest_bytes(key.as_bytes()), key, "{\"x\":1}".to_string());
        assert_eq!(c.get(digest_bytes(key.as_bytes()), key), Some("{\"x\":1}"));
        // Same digest, different preimage (simulated collision) must miss.
        assert_eq!(
            c.get(digest_bytes(key.as_bytes()), "{\"other\":true}"),
            None
        );
        // Different digest misses outright.
        assert_eq!(c.get(1, key), None);
    }

    #[test]
    fn eviction_is_fifo_at_capacity() {
        let mut c = ResultCache::new(2);
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            c.insert(digest_bytes(key.as_bytes()), key, format!("p{i}"));
        }
        assert_eq!(c.len(), 2);
        // "a" (oldest) evicted; "b" and "c" remain.
        assert_eq!(c.get(digest_bytes(b"a"), "a"), None);
        assert_eq!(c.get(digest_bytes(b"b"), "b"), Some("p1"));
        assert_eq!(c.get(digest_bytes(b"c"), "c"), Some("p2"));
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(digest_bytes(b"k"), "k", "v1".to_string());
        c.insert(digest_bytes(b"k"), "k", "v2".to_string());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(digest_bytes(b"k"), "k"), Some("v2"));
        // The FIFO still has room for one more before evicting.
        c.insert(digest_bytes(b"m"), "m", "v3".to_string());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(digest_bytes(b"k"), "k", "v".to_string());
        assert!(c.is_empty());
        assert_eq!(c.get(digest_bytes(b"k"), "k"), None);
    }
}
