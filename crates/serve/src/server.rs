//! Transport front-ends: TCP loopback and stdin/stdout pipe mode.
//!
//! Both speak the same newline-delimited protocol and share one
//! [`ServeEngine`]. Per connection, a reader thread admits request lines
//! (so the engine can pipeline them across workers) and hands the
//! per-request [`Response`] handles to a writer in admission order —
//! responses on a connection therefore come back **in request order**
//! even when later requests finish first.

use crate::engine::{Response, ServeEngine};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Serves one established byte stream (the shared TCP / stdio core).
///
/// Reads request lines from `input` until EOF, writes one response line
/// per request to `output` in request order, then flushes and returns.
/// Empty lines are ignored (a convenience for hand-driven `nc` sessions).
pub fn serve_stream(engine: &Arc<ServeEngine>, input: impl Read, output: impl Write + Send) {
    let (handle_tx, handle_rx) = mpsc::channel::<Response>();
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut out = BufWriter::new(output);
            for response in handle_rx {
                let line = response.wait();
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    return;
                }
                // Flush per line: clients block on complete responses.
                if out.flush().is_err() {
                    return;
                }
            }
        });
        let max = engine.max_line_bytes();
        let mut reader = BufReader::new(input);
        while let Ok(Some(line)) = read_bounded_line(&mut reader, max) {
            let response = match line {
                BoundedLine::Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    engine.submit_line(&line)
                }
                // The over-long line was consumed (not buffered); answer
                // with the typed error and keep serving the connection.
                BoundedLine::TooLong => engine.reject_oversized_line(),
            };
            if handle_tx.send(response).is_err() {
                break;
            }
        }
        drop(handle_tx);
    });
}

/// One request line read under the length cap.
enum BoundedLine {
    /// A complete line of at most `max` bytes (newline stripped).
    Ok(String),
    /// The line exceeded the cap; its bytes were discarded up to the
    /// next newline so the stream stays in sync.
    TooLong,
}

/// Reads one newline-terminated line, buffering at most `max` bytes.
///
/// Unlike `BufRead::lines`, an over-long line cannot balloon memory: once
/// the cap is crossed the remaining bytes are consumed and dropped, and
/// the caller gets [`BoundedLine::TooLong`] instead of the contents.
/// Returns `Ok(None)` at EOF.
fn read_bounded_line(
    reader: &mut impl BufRead,
    max: usize,
) -> std::io::Result<Option<BoundedLine>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts.
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !overflowed {
            let line_bytes = if done { take - 1 } else { take };
            if buf.len() + line_bytes > max {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..line_bytes]);
            }
        }
        reader.consume(take);
        if done {
            break;
        }
    }
    if overflowed {
        return Ok(Some(BoundedLine::TooLong));
    }
    // CRLF tolerance, matching `BufRead::lines`.
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some(BoundedLine::Ok(
        String::from_utf8_lossy(&buf).into_owned(),
    )))
}

/// Accept loop for a TCP listener. Each connection gets its own serving
/// thread; the loop polls the engine's drain flag between accepts and
/// returns once a drain begins (existing connections finish naturally).
///
/// # Errors
///
/// Propagates the error of switching the listener to non-blocking mode
/// (needed to observe the drain flag while idle).
pub fn serve_tcp(engine: &Arc<ServeEngine>, listener: &TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if engine.is_draining() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = Arc::clone(engine);
                let spawned = thread::Builder::new()
                    .name("lcosc-serve-conn".to_string())
                    .spawn(move || serve_connection(&engine, stream));
                if let Err(e) = spawned {
                    eprintln!("lcosc-serve: failed to spawn connection thread: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(engine: &Arc<ServeEngine>, stream: TcpStream) {
    // The accept loop is non-blocking; the connection itself must block.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Small request/response lines + Nagle + delayed ACK cost ~40 ms per
    // round trip on loopback; this is a latency-bound line protocol.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    serve_stream(engine, stream, write_half);
}

/// Pipe mode: serve stdin → stdout until EOF, then drain the engine.
pub fn serve_stdio(engine: &Arc<ServeEngine>) {
    serve_stream(engine, std::io::stdin(), std::io::stdout());
    engine.shutdown();
}
