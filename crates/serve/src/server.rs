//! Transport front-ends: TCP loopback and stdin/stdout pipe mode.
//!
//! Both speak the same newline-delimited protocol and share one
//! [`ServeEngine`]. Per connection, a reader thread admits request lines
//! (so the engine can pipeline them across workers) and hands the
//! per-request [`Response`] handles to a writer in admission order —
//! responses on a connection therefore come back **in request order**
//! even when later requests finish first.

use crate::engine::{Response, ServeEngine};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Serves one established byte stream (the shared TCP / stdio core).
///
/// Reads request lines from `input` until EOF, writes one response line
/// per request to `output` in request order, then flushes and returns.
/// Empty lines are ignored (a convenience for hand-driven `nc` sessions).
pub fn serve_stream(engine: &Arc<ServeEngine>, input: impl Read, output: impl Write + Send) {
    let (handle_tx, handle_rx) = mpsc::channel::<Response>();
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut out = BufWriter::new(output);
            for response in handle_rx {
                let line = response.wait();
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    return;
                }
                // Flush per line: clients block on complete responses.
                if out.flush().is_err() {
                    return;
                }
            }
        });
        let reader = BufReader::new(input);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if handle_tx.send(engine.submit_line(&line)).is_err() {
                break;
            }
        }
        drop(handle_tx);
    });
}

/// Accept loop for a TCP listener. Each connection gets its own serving
/// thread; the loop polls the engine's drain flag between accepts and
/// returns once a drain begins (existing connections finish naturally).
///
/// # Errors
///
/// Propagates the error of switching the listener to non-blocking mode
/// (needed to observe the drain flag while idle).
pub fn serve_tcp(engine: &Arc<ServeEngine>, listener: &TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if engine.is_draining() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = Arc::clone(engine);
                let spawned = thread::Builder::new()
                    .name("lcosc-serve-conn".to_string())
                    .spawn(move || serve_connection(&engine, stream));
                if let Err(e) = spawned {
                    eprintln!("lcosc-serve: failed to spawn connection thread: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(engine: &Arc<ServeEngine>, stream: TcpStream) {
    // The accept loop is non-blocking; the connection itself must block.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Small request/response lines + Nagle + delayed ACK cost ~40 ms per
    // round trip on loopback; this is a latency-bound line protocol.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    serve_stream(engine, stream, write_half);
}

/// Pipe mode: serve stdin → stdout until EOF, then drain the engine.
pub fn serve_stdio(engine: &Arc<ServeEngine>) {
    serve_stream(engine, std::io::stdin(), std::io::stdout());
    engine.shutdown();
}
