//! # lcosc-serve — deterministic batch simulation service
//!
//! The workspace's simulation entry points (circuit-deck transients,
//! fault-injection scenarios, FMEA / yield campaigns) behind one
//! newline-delimited JSON protocol, served over TCP loopback or
//! stdin/stdout. Three properties distinguish it from a generic job
//! server:
//!
//! - **Byte-determinism** — the response payload for a request object is
//!   a pure function of that object: identical across worker thread
//!   counts, cache states and arrival orders. The `"id"` field is echoed
//!   verbatim and excluded from all determinism-relevant plumbing.
//! - **Content-addressed caching** — requests are canonicalized
//!   ([`protocol::canonical_key`]: drop `"id"`, sort keys, render
//!   compactly) and hashed with [`lcosc_campaign::digest_bytes`]; a hit
//!   replays the stored payload bytes without occupying a worker slot.
//! - **Bounded admission** — a fixed-depth queue rejects with
//!   `overloaded` instead of buffering without limit, per-request
//!   deadlines free stuck worker slots with `timeout`, and a graceful
//!   drain finishes in-flight work while refusing new requests with
//!   `shutting_down`.
//!
//! Per-request observability flows through `lcosc-trace`:
//! [`lcosc_trace::TraceEvent::ServeRequest`] (golden: kind, digest,
//! status, completion index) and
//! [`lcosc_trace::TraceEvent::ServeRequestTiming`] (quarantined:
//! wall-clock latency, queue depth).
//!
//! ```
//! use lcosc_serve::{ServeConfig, ServeEngine};
//!
//! let engine = ServeEngine::start(&ServeConfig::default());
//! let response = engine
//!     .submit_line(r#"{"id":1,"kind":"scenario","fault":"open_coil"}"#)
//!     .wait();
//! assert!(response.starts_with(r#"{"id":1,"status":"ok","result":"#));
//! engine.shutdown();
//! ```

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod work;

pub use cache::ResultCache;
pub use engine::{Response, ServeConfig, ServeCounters, ServeEngine};
pub use protocol::{
    canonical_key, desugar_spice, parse_request, response_line, Body, CampaignSpec, Preset, Request,
};
pub use server::{serve_stdio, serve_stream, serve_tcp};
pub use work::execute;
