//! `lcosc-serve` — the deterministic batch simulation service binary.
//!
//! ```text
//! lcosc-serve [--threads N] [--queue-depth M] [--cache-entries K]
//!             [--deadline-ms D] (--addr 127.0.0.1:PORT | --stdio)
//! ```
//!
//! One JSON request per line in, one JSON response per line out; see
//! `DESIGN.md` §10 for the protocol grammar.

use lcosc_serve::{serve_stdio, serve_tcp, ServeConfig, ServeEngine};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "lcosc-serve: deterministic batch simulation service

USAGE:
    lcosc-serve [OPTIONS] (--addr HOST:PORT | --stdio)

OPTIONS:
    --threads N        worker threads (default 2)
    --queue-depth M    bounded queue depth; full queue => overloaded (default 64)
    --cache-entries K  content-addressed result cache capacity (default 256)
    --deadline-ms D    per-request compute deadline in ms (default 30000)
    --max-line-bytes L request-line length cap; longer lines answer
                       line_too_long without buffering (default 1048576)
    --addr HOST:PORT   serve the NDJSON protocol over TCP (loopback use)
    --stdio            serve stdin -> stdout instead of TCP
    --help             print this help
";

struct Options {
    config: ServeConfig,
    addr: Option<String>,
    stdio: bool,
}

fn parse_options(args: impl Iterator<Item = String>) -> Result<Option<Options>, String> {
    let mut opts = Options {
        config: ServeConfig::default(),
        addr: None,
        stdio: false,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--threads" => {
                opts.config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--queue-depth" => {
                opts.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--cache-entries" => {
                opts.config.cache_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                opts.config.deadline = Duration::from_millis(ms);
            }
            "--max-line-bytes" => {
                opts.config.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-line-bytes: {e}"))?;
            }
            "--addr" => opts.addr = Some(value("--addr")?),
            "--stdio" => opts.stdio = true,
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if opts.stdio == opts.addr.is_some() {
        return Err("exactly one of --stdio or --addr must be given".to_string());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_options(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("lcosc-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let engine = ServeEngine::start(&opts.config);
    if opts.stdio {
        serve_stdio(&engine);
        return ExitCode::SUCCESS;
    }
    let addr = opts.addr.unwrap_or_default();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lcosc-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(local) => println!("lcosc-serve: listening on {local}"),
        Err(_) => println!("lcosc-serve: listening on {addr}"),
    }
    if let Err(e) = serve_tcp(&engine, &listener) {
        eprintln!("lcosc-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    engine.shutdown();
    ExitCode::SUCCESS
}
